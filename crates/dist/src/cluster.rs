//! The coordinator: cluster layout, worker lifecycle, remote execution,
//! and remote-resident tensors — rebuilt on the RPC layer so both
//! transports (in-process channels and real TCP sockets) run identical
//! protocol code.

use crate::error::DistError;
use crate::rpc::{RpcClient, RpcOptions};
use crate::transport::{spawn_in_process, spawn_tcp, Transport, WorkerControl};
use crate::worker::WorkerState;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tfe_device::{DeviceName, DeviceType};
use tfe_encode::Value;
use tfe_graph::serial::{attrs_to_value, tensor_from_value, tensor_to_value};
use tfe_ops::Attrs;
use tfe_runtime::{context, Tensor};

/// Result alias for coordinator-side operations.
pub type Result<T, E = DistError> = std::result::Result<T, E>;

/// Which byte transport a cluster's workers speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Worker threads fed by channels; frames still round-trip through
    /// their wire-byte encoding. The bitwise differential reference.
    InProcess,
    /// Worker threads serving real localhost TCP listeners.
    Tcp,
}

/// The cluster layout: job name → number of worker tasks.
///
/// ```
/// use tfe_dist::ClusterSpec;
/// let spec = ClusterSpec::new().with_job("training", 3).unwrap();
/// assert_eq!(spec.num_tasks("training"), 3);
/// assert!(spec.with_job("training", 1).is_err()); // duplicate job
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClusterSpec {
    jobs: Vec<(String, usize)>,
}

impl ClusterSpec {
    /// An empty spec.
    pub fn new() -> ClusterSpec {
        ClusterSpec::default()
    }

    /// Add a job with `tasks` worker tasks.
    ///
    /// # Errors
    /// [`DistError::DuplicateJob`] if `name` is already declared, and
    /// [`DistError::EmptyJob`] when `tasks` is zero.
    pub fn with_job(mut self, name: &str, tasks: usize) -> Result<ClusterSpec> {
        if self.jobs.iter().any(|(n, _)| n == name) {
            return Err(DistError::DuplicateJob(name.to_string()));
        }
        if tasks == 0 {
            return Err(DistError::EmptyJob(name.to_string()));
        }
        self.jobs.push((name.to_string(), tasks));
        Ok(self)
    }

    /// Number of tasks in `job` (0 when absent).
    pub fn num_tasks(&self, job: &str) -> usize {
        self.jobs.iter().find(|(n, _)| n == job).map(|(_, t)| *t).unwrap_or(0)
    }

    /// All (job, task) pairs, in declaration order.
    pub fn tasks(&self) -> Vec<(String, usize)> {
        self.jobs
            .iter()
            .flat_map(|(name, tasks)| (0..*tasks).map(move |t| (name.clone(), t)))
            .collect()
    }

    /// Resolve a device string against this spec: the device must parse,
    /// name a declared job, a task inside its range, and the worker's one
    /// contributed device (`CPU:0`).
    ///
    /// # Errors
    /// [`DistError::BadDevice`] for parse failures and non-CPU:0 devices,
    /// [`DistError::NoSuchWorker`] for unknown jobs and out-of-range tasks.
    pub fn resolve(&self, device: &str) -> Result<DeviceName> {
        let name = DeviceName::parse(device).map_err(DistError::BadDevice)?;
        if name.device_type != DeviceType::Cpu || name.index != 0 {
            return Err(DistError::BadDevice(format!(
                "workers contribute exactly one device (CPU:0); `{device}` names another"
            )));
        }
        let tasks = self.num_tasks(&name.job);
        if tasks == 0 {
            return Err(DistError::NoSuchWorker(format!(
                "job `{}` is not in the cluster",
                name.job
            )));
        }
        if name.task >= tasks {
            return Err(DistError::NoSuchWorker(format!(
                "job `{}` has {} task(s); task {} is out of range",
                name.job, tasks, name.task
            )));
        }
        Ok(name)
    }
}

/// An argument to a remote operation: a local value (shipped over the
/// wire) or a tensor already resident on the target worker.
#[derive(Debug, Clone)]
pub enum RemoteArg {
    /// Serialize and send this local tensor.
    Local(Tensor),
    /// Reference a tensor resident on a worker.
    Remote(RemoteTensor),
}

impl From<&Tensor> for RemoteArg {
    fn from(t: &Tensor) -> RemoteArg {
        RemoteArg::Local(t.clone())
    }
}

impl From<&RemoteTensor> for RemoteArg {
    fn from(t: &RemoteTensor) -> RemoteArg {
        RemoteArg::Remote(t.clone())
    }
}

struct WorkerEntry {
    client: Arc<RpcClient>,
    control: Mutex<WorkerControl>,
    addr: Option<SocketAddr>,
}

struct ClusterInner {
    workers: HashMap<(String, usize), WorkerEntry>,
    devices: Vec<DeviceName>,
    spec: ClusterSpec,
}

impl ClusterInner {
    fn entry(&self, device: &DeviceName) -> Result<&WorkerEntry> {
        self.workers
            .get(&(device.job.clone(), device.task))
            .ok_or_else(|| DistError::NoSuchWorker(device.to_string()))
    }
}

/// A running cluster: the coordinator's handle to its worker servers.
pub struct Cluster {
    inner: Arc<ClusterInner>,
}

/// A tensor resident on a remote device (§4.5: results "stay on the remote
/// device" until more ops consume them or the coordinator fetches them).
pub struct RemoteTensor {
    /// Where the tensor lives.
    pub device: DeviceName,
    /// Worker-local tensor id.
    pub id: u64,
    /// Element dtype.
    pub dtype: tfe_tensor::DType,
    /// Shape.
    pub dims: Vec<usize>,
    cluster: Arc<ClusterInner>,
    owned: Arc<AtomicU64>, // refcount-ish marker for Drop-based deletion
}

impl Clone for RemoteTensor {
    fn clone(&self) -> RemoteTensor {
        self.owned.fetch_add(1, Ordering::Relaxed);
        RemoteTensor {
            device: self.device.clone(),
            id: self.id,
            dtype: self.dtype,
            dims: self.dims.clone(),
            cluster: self.cluster.clone(),
            owned: self.owned.clone(),
        }
    }
}

impl Drop for RemoteTensor {
    fn drop(&mut self) {
        if self.owned.fetch_sub(1, Ordering::Relaxed) == 1 {
            // Last handle: free the worker-side buffer. Best-effort with a
            // short fuse — a dead worker must not stall drops.
            if let Ok(entry) = self.cluster.entry(&self.device) {
                let opts = RpcOptions {
                    deadline: Duration::from_millis(500),
                    attempt_timeout: Duration::from_millis(500),
                    retries: 0,
                    backoff: Duration::from_millis(1),
                };
                let _ = entry.client.call_with("delete", delete_body(self.id), true, &opts);
            }
        }
    }
}

impl std::fmt::Debug for RemoteTensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RemoteTensor(id={}, {:?}{:?} on {})",
            self.id, self.dtype, self.dims, self.device
        )
    }
}

impl RemoteTensor {
    /// Copy the value back to the coordinator (§4.5: "copy them to the
    /// central server, e.g. to use their value in an if statement").
    ///
    /// # Errors
    /// Typed [`DistError`] within the RPC deadline.
    pub fn fetch(&self) -> Result<Tensor> {
        // An RPC is a request entry point (nested fetches — e.g. the
        // coordinator relaying cross-worker args — inherit the ambient
        // request instead).
        let _root = tfe_profile::request_scope("dist", || format!("rpc:fetch:{}", self.id));
        let entry = self.cluster.entry(&self.device)?;
        let payload = entry.client.call("fetch", fetch_body(self.id), true)?;
        let data = tensor_from_value(&payload)
            .map_err(|e| DistError::Wire(crate::wire::WireError::Payload(e.to_string())))?;
        Ok(Tensor::from_data(data))
    }
}

fn fetch_body(id: u64) -> Value {
    Value::object([
        ("type".to_string(), Value::str("fetch")),
        ("id".to_string(), Value::Int(id as i64)),
    ])
}

fn delete_body(id: u64) -> Value {
    Value::object([
        ("type".to_string(), Value::str("delete")),
        ("id".to_string(), Value::Int(id as i64)),
    ])
}

fn encode_args(args: &[RemoteArg], target: &DeviceName) -> Result<Vec<Value>> {
    args.iter()
        .map(|a| match a {
            RemoteArg::Local(t) => {
                let data = t.value().map_err(DistError::from)?;
                Ok(Value::object([("inline".to_string(), tensor_to_value(&data))]))
            }
            RemoteArg::Remote(r) => {
                if &r.device != target {
                    // Cross-worker: fetch then re-ship (the coordinator
                    // relays, like TF's transparent copies in §4.4).
                    let t = r.fetch()?;
                    let data = t.value().map_err(DistError::from)?;
                    Ok(Value::object([("inline".to_string(), tensor_to_value(&data))]))
                } else {
                    Ok(Value::object([("resident".to_string(), Value::Int(r.id as i64))]))
                }
            }
        })
        .collect()
}

/// Parse the `{tensors: [{id, dtype, dims}]}` payload of an execute/call
/// response.
fn parse_metas(payload: &Value) -> Result<Vec<(u64, tfe_tensor::DType, Vec<usize>)>> {
    let bad = |msg: &str| DistError::Wire(crate::wire::WireError::Payload(msg.to_string()));
    payload
        .get("tensors")
        .and_then(Value::as_array)
        .ok_or_else(|| bad("response has no `tensors` array"))?
        .iter()
        .map(|m| {
            let id = m
                .get("id")
                .and_then(Value::as_i64)
                .filter(|id| *id >= 0)
                .ok_or_else(|| bad("tensor meta has no valid `id`"))?;
            let dtype = m
                .get("dtype")
                .and_then(Value::as_str)
                .and_then(tfe_tensor::DType::from_name)
                .ok_or_else(|| bad("tensor meta has no valid `dtype`"))?;
            let dims = m
                .get("dims")
                .and_then(Value::as_i64_array)
                .ok_or_else(|| bad("tensor meta has no valid `dims`"))?
                .into_iter()
                .map(|d| d as usize)
                .collect();
            Ok((id as u64, dtype, dims))
        })
        .collect()
}

impl Cluster {
    /// Bring up one in-process worker per task in the spec (the bitwise
    /// differential reference for the TCP transport).
    pub fn start(spec: &ClusterSpec) -> Cluster {
        Cluster::start_with(spec, TransportKind::InProcess, RpcOptions::default())
            .expect("in-process workers cannot fail to start")
    }

    /// Bring up one TCP worker per task, each serving a real localhost
    /// listener.
    ///
    /// # Errors
    /// Socket bind failures.
    pub fn start_tcp(spec: &ClusterSpec) -> Result<Cluster> {
        Cluster::start_with(spec, TransportKind::Tcp, RpcOptions::default())
    }

    /// Bring up a cluster with an explicit transport and RPC policy.
    ///
    /// # Errors
    /// Socket bind failures (TCP only).
    pub fn start_with(
        spec: &ClusterSpec,
        kind: TransportKind,
        opts: RpcOptions,
    ) -> Result<Cluster> {
        context::ensure_init();
        let mut workers = HashMap::new();
        let mut devices = Vec::new();
        for (job, task) in spec.tasks() {
            let label = format!("{job}/{task}");
            let state = Arc::new(WorkerState::new());
            let (transport, control): (Arc<dyn Transport>, WorkerControl) = match kind {
                TransportKind::InProcess => {
                    let (t, c) = spawn_in_process(&label, move |frame| state.handle_frame(&frame));
                    (Arc::new(t), c)
                }
                TransportKind::Tcp => {
                    let (t, c) = spawn_tcp(&label, move |frame| state.handle_frame(&frame))
                        .map_err(|e| DistError::Spec(format!("bind worker listener: {e}")))?;
                    (Arc::new(t), c)
                }
            };
            let addr = control.addr;
            let client = Arc::new(RpcClient::new(transport, label, opts.clone()));
            workers.insert(
                (job.clone(), task),
                WorkerEntry { client, control: Mutex::new(control), addr },
            );
            devices.push(DeviceName { job, task, device_type: DeviceType::Cpu, index: 0 });
        }
        Ok(Cluster { inner: Arc::new(ClusterInner { workers, devices, spec: spec.clone() }) })
    }

    /// All remote devices contributed by the workers (each task adds its
    /// local CPU to the pool, §4.5).
    pub fn list_devices(&self) -> Vec<DeviceName> {
        self.inner.devices.clone()
    }

    /// The transport this cluster's workers speak.
    pub fn transport_kind(&self) -> &'static str {
        self.inner
            .workers
            .values()
            .next()
            .map(|e| e.client.transport_kind())
            .unwrap_or("in_process")
    }

    /// The bound listener address of a worker (TCP clusters only).
    ///
    /// # Errors
    /// Unknown devices.
    pub fn worker_addr(&self, device: &str) -> Result<Option<SocketAddr>> {
        let target = self.inner.spec.resolve(device)?;
        Ok(self.inner.entry(&target)?.addr)
    }

    fn run(&self, target: &DeviceName, op: &str, body: Value) -> Result<Vec<RemoteTensor>> {
        let entry = self.inner.entry(target)?;
        let payload = entry.client.call(op, body, false)?;
        Ok(parse_metas(&payload)?
            .into_iter()
            .map(|(id, dtype, dims)| RemoteTensor {
                device: target.clone(),
                id,
                dtype,
                dims,
                cluster: self.inner.clone(),
                owned: Arc::new(AtomicU64::new(1)),
            })
            .collect())
    }

    /// Execute one primitive op on the named remote device; outputs stay
    /// remote.
    ///
    /// # Errors
    /// Unknown devices, wire/transport failures, or kernel errors on the
    /// worker — all typed, all within the RPC deadline.
    pub fn execute(
        &self,
        device: &str,
        op: &str,
        args: &[RemoteArg],
        attrs: Attrs,
    ) -> Result<Vec<RemoteTensor>> {
        let _root = tfe_profile::request_scope("dist", || format!("rpc:execute:{op}@{device}"));
        let target = self.inner.spec.resolve(device)?;
        let inputs = encode_args(args, &target)?;
        let body = Value::object([
            ("type".to_string(), Value::str("execute_op")),
            ("op".to_string(), Value::str(op)),
            ("attrs".to_string(), attrs_to_value(&attrs)),
            ("inputs".to_string(), Value::Array(inputs)),
        ]);
        self.run(&target, &format!("execute:{op}"), body)
    }

    /// Execute a whole graph function (by library name) on a remote device
    /// — §4.5: "execute operations or whole graph functions on remote
    /// devices through the worker servers".
    ///
    /// # Errors
    /// Unknown devices/functions or worker failures, all typed.
    pub fn call_function(
        &self,
        device: &str,
        name: &str,
        args: &[RemoteArg],
    ) -> Result<Vec<RemoteTensor>> {
        let _root = tfe_profile::request_scope("dist", || format!("rpc:call:{name}@{device}"));
        let target = self.inner.spec.resolve(device)?;
        let inputs = encode_args(args, &target)?;
        let body = Value::object([
            ("type".to_string(), Value::str("call_function")),
            ("name".to_string(), Value::str(name)),
            ("inputs".to_string(), Value::Array(inputs)),
        ]);
        self.run(&target, &format!("call:{name}"), body)
    }

    /// Liveness probe: a round-trip that exercises the full wire path.
    ///
    /// # Errors
    /// Typed transport failures within the RPC deadline.
    pub fn ping(&self, device: &str) -> Result<()> {
        let target = self.inner.spec.resolve(device)?;
        let body = Value::object([("type".to_string(), Value::str("ping"))]);
        self.inner.entry(&target)?.client.call("ping", body, true)?;
        Ok(())
    }

    /// Abruptly kill one worker (chaos testing): its server stops without
    /// draining, so in-flight and subsequent RPCs to it surface typed
    /// [`DistError::Timeout`] / [`DistError::ConnectionLost`] — the worker
    /// stays in the cluster map precisely so those RPCs fail loudly rather
    /// than with `NoSuchWorker`.
    ///
    /// # Errors
    /// Unknown devices.
    pub fn kill_worker(&self, device: &str) -> Result<()> {
        let target = self.inner.spec.resolve(device)?;
        self.inner.entry(&target)?.control.lock().kill();
        Ok(())
    }

    /// Shut down all workers gracefully and join their threads.
    pub fn shutdown(&self) {
        let opts = RpcOptions {
            deadline: Duration::from_secs(2),
            attempt_timeout: Duration::from_secs(2),
            retries: 0,
            backoff: Duration::from_millis(1),
        };
        for entry in self.inner.workers.values() {
            let body = Value::object([("type".to_string(), Value::str("shutdown"))]);
            let _ = entry.client.call_with("shutdown", body, false, &opts);
        }
        for entry in self.inner.workers.values() {
            entry.control.lock().kill();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cluster({} {} workers)", self.inner.devices.len(), self.transport_kind())
    }
}
