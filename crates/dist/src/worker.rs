//! Worker-side request handling: decode a protocol body, run it against
//! the worker's resident-tensor table, encode the reply.
//!
//! ## Protocol bodies
//!
//! Requests are JSON objects dispatched on `"type"`:
//!
//! | type            | fields                              | `ok` payload |
//! |-----------------|-------------------------------------|--------------|
//! | `execute_op`    | `op`, `attrs`, `inputs`             | `{tensors: [{id, dtype, dims}]}` |
//! | `call_function` | `name`, `inputs`                    | `{tensors: [{id, dtype, dims}]}` |
//! | `fetch`         | `id`                                | serialized tensor |
//! | `delete`        | `id`                                | `null` |
//! | `ping`          |                                     | `"pong"` |
//! | `shutdown`      |                                     | `null` (and the worker exits) |
//!
//! `inputs` entries are `{"inline": <tensor>}` (shipped over the wire) or
//! `{"resident": <id>}` (already living on this worker). Responses are
//! `{"ok": ...}` or `{"err": "detail"}` — a malformed request is a typed
//! remote fault, never a worker crash.

use crate::rpc::{err_body, ok_body};
use crate::wire::Frame;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tfe_encode::Value;
use tfe_graph::serial::{attrs_from_value, tensor_from_value, tensor_to_value};
use tfe_runtime::{context, ExecMode};
use tfe_tensor::TensorData;

/// Shared mutable state of one worker: the resident-tensor table.
///
/// TCP workers serve each connection from its own thread, so the table is
/// behind a lock; the in-process worker is single-threaded but reuses the
/// same state type so both transports exercise identical handler code.
pub struct WorkerState {
    resident: Mutex<HashMap<u64, Arc<TensorData>>>,
    next_id: AtomicU64,
}

impl WorkerState {
    /// Fresh state with an empty resident table.
    pub fn new() -> WorkerState {
        context::ensure_init();
        WorkerState { resident: Mutex::new(HashMap::new()), next_id: AtomicU64::new(1) }
    }

    /// Handle one request frame; returns the reply frame and whether the
    /// worker should shut down after sending it.
    pub fn handle_frame(&self, frame: &Frame) -> (Frame, bool) {
        let _trace = tfe_profile::adopt_remote(frame.trace, "rpc");
        let (body, shutdown) = match self.dispatch(&frame.body) {
            Ok((payload, shutdown)) => (ok_body(payload), shutdown),
            Err(msg) => (err_body(&msg), false),
        };
        (Frame::new(frame.call_id, frame.trace, body), shutdown)
    }

    fn dispatch(&self, body: &Value) -> Result<(Value, bool), String> {
        let ty = body
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| "request has no `type` field".to_string())?;
        match ty {
            "execute_op" => {
                let op = body
                    .get("op")
                    .and_then(Value::as_str)
                    .ok_or_else(|| "execute_op: missing `op`".to_string())?;
                let attrs = attrs_from_value(
                    body.get("attrs").ok_or_else(|| "execute_op: missing `attrs`".to_string())?,
                )
                .map_err(|e| e.to_string())?;
                let inputs = self.decode_inputs(body)?;
                let out = tfe_runtime::kernels::run_kernel(op, &attrs, &inputs)
                    .map_err(|e| e.to_string())?;
                Ok((self.adopt(out.into_iter().map(Arc::new)), false))
            }
            "call_function" => {
                let name = body
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| "call_function: missing `name`".to_string())?;
                let f = context::library()
                    .get(name)
                    .ok_or_else(|| format!("function `{name}` not in library"))?;
                if f.num_captures > 0 {
                    return Err(format!(
                        "function `{name}` closes over {} captured value(s); workers only \
                         execute capture-free functions",
                        f.num_captures
                    ));
                }
                let inputs = self.decode_inputs(body)?;
                let device = context::device_manager().host_cpu();
                let out = tfe_runtime::executor::run_function(
                    &f,
                    &inputs,
                    &device,
                    ExecMode::SerialPlanned,
                )
                .map_err(|e| e.to_string())?;
                Ok((self.adopt(out.into_iter()), false))
            }
            "fetch" => {
                let id = req_id(body, "fetch")?;
                let data = self
                    .resident
                    .lock()
                    .get(&id)
                    .cloned()
                    .ok_or_else(|| format!("tensor {id} is not resident on this worker"))?;
                Ok((tensor_to_value(&data), false))
            }
            "delete" => {
                let id = req_id(body, "delete")?;
                self.resident.lock().remove(&id);
                Ok((Value::Null, false))
            }
            "ping" => Ok((Value::str("pong"), false)),
            "shutdown" => Ok((Value::Null, true)),
            other => Err(format!("unknown request type `{other}`")),
        }
    }

    fn decode_inputs(&self, body: &Value) -> Result<Vec<Arc<TensorData>>, String> {
        let inputs = body
            .get("inputs")
            .and_then(Value::as_array)
            .ok_or_else(|| "request: missing `inputs` array".to_string())?;
        inputs
            .iter()
            .map(|arg| {
                if let Some(inline) = arg.get("inline") {
                    tensor_from_value(inline).map(Arc::new).map_err(|e| e.to_string())
                } else if let Some(id) = arg.get("resident").and_then(Value::as_i64) {
                    self.resident
                        .lock()
                        .get(&(id as u64))
                        .cloned()
                        .ok_or_else(|| format!("tensor {id} is not resident on this worker"))
                } else {
                    Err("input is neither `inline` nor `resident`".to_string())
                }
            })
            .collect()
    }

    /// Store outputs in the resident table and describe them for the
    /// coordinator.
    fn adopt(&self, tensors: impl Iterator<Item = Arc<TensorData>>) -> Value {
        let mut resident = self.resident.lock();
        let metas: Vec<Value> = tensors
            .map(|t| {
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                let meta = Value::object([
                    ("id".to_string(), Value::Int(id as i64)),
                    ("dtype".to_string(), Value::str(t.dtype().name())),
                    (
                        "dims".to_string(),
                        Value::Array(
                            t.shape().dims().iter().map(|&d| Value::Int(d as i64)).collect(),
                        ),
                    ),
                ]);
                resident.insert(id, t);
                meta
            })
            .collect();
        Value::object([("tensors".to_string(), Value::Array(metas))])
    }
}

impl Default for WorkerState {
    fn default() -> WorkerState {
        WorkerState::new()
    }
}

fn req_id(body: &Value, what: &str) -> Result<u64, String> {
    body.get("id")
        .and_then(Value::as_i64)
        .filter(|id| *id >= 0)
        .map(|id| id as u64)
        .ok_or_else(|| format!("{what}: missing or negative `id`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_ops::Attrs;
    use tfe_runtime::api;

    fn exec_body(op: &str, inputs: Vec<Value>) -> Value {
        Value::object([
            ("type".to_string(), Value::str("execute_op")),
            ("op".to_string(), Value::str(op)),
            ("attrs".to_string(), tfe_graph::serial::attrs_to_value(&Attrs::new())),
            ("inputs".to_string(), Value::Array(inputs)),
        ])
    }

    fn inline(t: &tfe_runtime::Tensor) -> Value {
        Value::object([("inline".to_string(), tensor_to_value(&t.value().unwrap()))])
    }

    #[test]
    fn execute_fetch_delete_round_trip() {
        let state = WorkerState::new();
        let a = api::constant(vec![1.0f32, 2.0], [2]).unwrap();
        let body = exec_body("square", vec![inline(&a)]);
        let (reply, shutdown) = state.handle_frame(&Frame::new(7, None, body));
        assert!(!shutdown);
        assert_eq!(reply.call_id, 7);
        let ok = reply.body.get("ok").expect("ok reply");
        let metas = ok.get("tensors").and_then(Value::as_array).unwrap();
        assert_eq!(metas.len(), 1);
        let id = metas[0].get("id").and_then(Value::as_i64).unwrap();
        assert_eq!(
            metas[0].get("dtype").and_then(Value::as_str),
            Some(tfe_tensor::DType::F32.name())
        );

        let fetch = Value::object([
            ("type".to_string(), Value::str("fetch")),
            ("id".to_string(), Value::Int(id)),
        ]);
        let (reply, _) = state.handle_frame(&Frame::new(8, None, fetch.clone()));
        let t = tensor_from_value(reply.body.get("ok").unwrap()).unwrap();
        assert_eq!(t.to_f64_vec(), vec![1.0, 4.0]);

        let del = Value::object([
            ("type".to_string(), Value::str("delete")),
            ("id".to_string(), Value::Int(id)),
        ]);
        let (reply, _) = state.handle_frame(&Frame::new(9, None, del));
        assert!(reply.body.get("ok").is_some());
        // Fetch after delete is a typed remote fault.
        let (reply, _) = state.handle_frame(&Frame::new(10, None, fetch));
        assert!(reply.body.get("err").is_some());
    }

    #[test]
    fn malformed_requests_are_faults_not_panics() {
        let state = WorkerState::new();
        for body in [
            Value::Null,
            Value::object([("type".to_string(), Value::str("warp"))]),
            Value::object([("type".to_string(), Value::str("execute_op"))]),
            Value::object([
                ("type".to_string(), Value::str("fetch")),
                ("id".to_string(), Value::Int(-3)),
            ]),
        ] {
            let (reply, shutdown) = state.handle_frame(&Frame::new(1, None, body));
            assert!(!shutdown);
            assert!(reply.body.get("err").is_some());
        }
    }

    #[test]
    fn shutdown_flag() {
        let state = WorkerState::new();
        let body = Value::object([("type".to_string(), Value::str("shutdown"))]);
        let (reply, shutdown) = state.handle_frame(&Frame::new(1, None, body));
        assert!(shutdown);
        assert!(reply.body.get("ok").is_some());
    }
}
