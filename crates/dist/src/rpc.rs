//! The RPC layer: a request/response state machine over a [`Transport`],
//! with per-call deadlines, bounded retries with exponential backoff, and
//! typed failures. Every call resolves to `Ok` or a [`DistError`] within
//! `deadline` (plus bounded backoff sleeps) — never a hang.
//!
//! ## Retry policy
//!
//! - **Connect failures** are always retried (the request was never sent,
//!   so retrying cannot double-execute), up to `retries` times with
//!   doubling backoff, while the overall deadline allows.
//! - **Timeouts and lost connections after a send** are retried only for
//!   *idempotent* requests (`fetch`, `delete`, `ping`): an `execute_op` or
//!   `call_function` whose response was lost may already have run on the
//!   worker, and silently re-executing a stateful op would corrupt state.
//!   Non-idempotent requests surface the typed error instead.

use crate::error::DistError;
use crate::transport::{Transport, TransportError};
use crate::wire::Frame;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tfe_encode::Value;

/// Tunables for one worker connection.
#[derive(Debug, Clone)]
pub struct RpcOptions {
    /// Overall per-call deadline (covers all attempts and backoff).
    pub deadline: Duration,
    /// Per-attempt timeout; a retryable attempt gives up this early so a
    /// later attempt still fits inside `deadline`.
    pub attempt_timeout: Duration,
    /// Maximum number of *re*-attempts after the first (0 = no retries).
    pub retries: u32,
    /// Initial backoff between attempts; doubles each retry.
    pub backoff: Duration,
}

impl Default for RpcOptions {
    fn default() -> RpcOptions {
        RpcOptions {
            deadline: Duration::from_secs(10),
            attempt_timeout: Duration::from_secs(3),
            retries: 2,
            backoff: Duration::from_millis(20),
        }
    }
}

impl RpcOptions {
    /// Short-fuse options for tests and chaos probes.
    pub fn with_deadline(deadline: Duration) -> RpcOptions {
        RpcOptions {
            deadline,
            attempt_timeout: deadline.div_f64(2.0).max(Duration::from_millis(50)),
            ..RpcOptions::default()
        }
    }
}

/// A client for one worker: owns the transport and the retry/deadline
/// state machine.
pub struct RpcClient {
    transport: Arc<dyn Transport>,
    opts: RpcOptions,
    worker: String,
    next_call: AtomicU64,
}

/// Build a `{"err": msg}` response body.
pub(crate) fn err_body(msg: &str) -> Value {
    Value::object([("err".to_string(), Value::str(msg))])
}

/// Build a `{"ok": payload}` response body.
pub(crate) fn ok_body(payload: Value) -> Value {
    Value::object([("ok".to_string(), payload)])
}

impl RpcClient {
    /// Wrap a transport to `worker` (a `job/task` label).
    pub fn new(transport: Arc<dyn Transport>, worker: String, opts: RpcOptions) -> RpcClient {
        RpcClient { transport, opts, worker, next_call: AtomicU64::new(1) }
    }

    /// The `job/task` label this client talks to.
    pub fn worker(&self) -> &str {
        &self.worker
    }

    /// The transport kind (`"in_process"` / `"tcp"`).
    pub fn transport_kind(&self) -> &'static str {
        self.transport.kind()
    }

    /// One RPC: send `body`, await the matching response, unwrap `ok`/`err`.
    ///
    /// `op` labels the call in errors and metrics (e.g. `execute:add`).
    /// `idempotent` gates retries after a send (see module docs).
    ///
    /// # Errors
    /// Typed [`DistError`] within the configured deadline.
    pub fn call(&self, op: &str, body: Value, idempotent: bool) -> Result<Value, DistError> {
        self.call_with(op, body, idempotent, &self.opts)
    }

    /// Like [`RpcClient::call`] but with one-off options — used for
    /// best-effort cleanup (`delete` on drop) that must not block long.
    pub fn call_with(
        &self,
        op: &str,
        body: Value,
        idempotent: bool,
        opts: &RpcOptions,
    ) -> Result<Value, DistError> {
        let started = Instant::now();
        let overall = started + opts.deadline;
        let trace = Frame::current_trace();
        let mut backoff = opts.backoff;
        let mut attempt = 0u32;
        loop {
            let call_id = self.next_call.fetch_add(1, Ordering::Relaxed);
            let frame = Frame::new(call_id, trace, body.clone());
            let attempt_deadline = overall.min(Instant::now() + opts.attempt_timeout);
            let result = self.transport.round_trip(&frame, attempt_deadline);
            match result {
                Ok(reply) => {
                    if reply.call_id != call_id && reply.call_id != 0 {
                        return Err(DistError::Wire(crate::wire::WireError::Payload(format!(
                            "response call id {} does not match request {}",
                            reply.call_id, call_id
                        ))));
                    }
                    self.observe(op, started, attempt);
                    if let Some(err) = reply.body.get("err").and_then(Value::as_str) {
                        return Err(DistError::RemoteFault {
                            worker: self.worker.clone(),
                            detail: err.to_string(),
                        });
                    }
                    return reply.body.get("ok").cloned().ok_or_else(|| {
                        DistError::Wire(crate::wire::WireError::Payload(
                            "response body has neither `ok` nor `err`".to_string(),
                        ))
                    });
                }
                Err(e) => {
                    let retryable = match &e {
                        TransportError::Connect(_) => true,
                        TransportError::Timeout | TransportError::ConnectionLost(_) => idempotent,
                        TransportError::Wire(_) => false,
                    };
                    let out_of_time = Instant::now() + backoff >= overall;
                    if !retryable || attempt >= opts.retries || out_of_time {
                        return Err(self.typed_error(op, e, started));
                    }
                    self.count("tfe_dist_rpc_retries_total", "RPC attempts retried per worker");
                    std::thread::sleep(backoff);
                    backoff *= 2;
                    attempt += 1;
                }
            }
        }
    }

    fn typed_error(&self, op: &str, e: TransportError, started: Instant) -> DistError {
        match e {
            TransportError::Timeout => {
                self.count("tfe_dist_rpc_timeouts_total", "RPCs that hit their deadline");
                DistError::Timeout {
                    worker: self.worker.clone(),
                    op: op.to_string(),
                    after: started.elapsed(),
                }
            }
            TransportError::Connect(detail) | TransportError::ConnectionLost(detail) => {
                self.count("tfe_dist_rpc_failures_total", "RPCs that lost their connection");
                DistError::ConnectionLost {
                    worker: self.worker.clone(),
                    op: op.to_string(),
                    detail,
                }
            }
            TransportError::Wire(w) => DistError::Wire(w),
        }
    }

    fn count(&self, name: &'static str, help: &'static str) {
        tfe_metrics::counter_vec(name, help, "worker").with(&self.worker).inc();
    }

    /// Per-worker RPC telemetry: one count plus one round-trip latency
    /// sample per completed request, so a slow or chatty worker stands out.
    fn observe(&self, op: &str, started: Instant, attempts: u32) {
        let _ = op;
        let _ = attempts;
        tfe_metrics::counter_vec(
            "tfe_dist_rpcs_total",
            "Completed coordinator-to-worker RPCs",
            "worker",
        )
        .with(&self.worker)
        .inc();
        tfe_metrics::histogram_vec(
            "tfe_dist_rpc_ns",
            "Round-trip nanoseconds for coordinator-to-worker RPCs",
            "worker",
            tfe_metrics::DEFAULT_NS_BUCKETS,
        )
        .with(&self.worker)
        .observe(started.elapsed().as_nanos() as u64);
    }
}
