//! Length-prefixed wire frames over the hand-rolled `tfe-encode` format.
//!
//! Every coordinator↔worker exchange is one [`Frame`] each way. The binary
//! layout is a fixed 34-byte header followed by a UTF-8 JSON payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"TFEW"
//!      4     1  version (currently 1)
//!      5     1  flags   (bit 0: trace ids present)
//!      6     8  call id (little-endian u64)
//!     14     8  trace id  (LE u64; zero unless flag bit 0)
//!     22     8  span id   (LE u64; zero unless flag bit 0)
//!     30     4  payload length (LE u32, bounded by MAX_FRAME_LEN)
//!     34   len  payload: tfe-encode JSON
//! ```
//!
//! The trace ids carry the coordinator's `(trace_id, span_id)` so workers
//! can continue the request's causal arc via `tfe_profile::adopt_remote`
//! (DESIGN.md §16). Decoding is hardened: checked length reads everywhere,
//! a max-frame-size guard before any allocation, and typed [`WireError`]s
//! instead of panics — `tests/wire_hardening.rs` fuzzes every one-byte
//! mutation and truncation of valid frames against this decoder.

use std::io::{Read, Write};
use std::time::Instant;
use tfe_encode::Value;

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"TFEW";

/// Current wire protocol version.
pub const VERSION: u8 = 1;

/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 34;

/// Upper bound on the JSON payload of one frame (guards the decoder's
/// allocation against a corrupt or hostile length field).
pub const MAX_FRAME_LEN: usize = 64 << 20;

const FLAG_TRACE: u8 = 1;

/// One request or response on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Correlates a response with its request; chosen by the caller.
    pub call_id: u64,
    /// The sender's `(trace_id, span_id)`, if a request scope is active —
    /// the receiver rebuilds the causal chain with `adopt_remote`.
    pub trace: Option<(u64, u64)>,
    /// The JSON body (protocol-level request or response).
    pub body: Value,
}

/// Typed frame decode/transfer failures — the decoder never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte named a protocol this build does not speak.
    UnsupportedVersion(u8),
    /// The input ended before the declared structure was complete.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The length field exceeded [`MAX_FRAME_LEN`].
    Oversized {
        /// Declared payload length.
        len: usize,
        /// The enforced bound.
        max: usize,
    },
    /// Bytes remained after a complete frame (buffer decode only).
    Trailing {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// The payload was not valid UTF-8 JSON.
    Payload(String),
    /// A socket read/write hit its timeout.
    TimedOut,
    /// The peer hung up (EOF, reset, broken pipe).
    Disconnected(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: payload {len} bytes exceeds max {max}")
            }
            WireError::Trailing { extra } => write!(f, "{extra} trailing bytes after frame"),
            WireError::Payload(msg) => write!(f, "bad frame payload: {msg}"),
            WireError::TimedOut => write!(f, "wire read/write timed out"),
            WireError::Disconnected(msg) => write!(f, "peer disconnected: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

fn io_err(e: std::io::Error) -> WireError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => WireError::TimedOut,
        std::io::ErrorKind::UnexpectedEof => WireError::Disconnected("eof".to_string()),
        _ => WireError::Disconnected(e.to_string()),
    }
}

impl Frame {
    /// Build a request/response frame.
    pub fn new(call_id: u64, trace: Option<(u64, u64)>, body: Value) -> Frame {
        Frame { call_id, trace, body }
    }

    /// Serialize to header + JSON payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.body.to_json().into_bytes();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(if self.trace.is_some() { FLAG_TRACE } else { 0 });
        out.extend_from_slice(&self.call_id.to_le_bytes());
        let (t, s) = self.trace.unwrap_or((0, 0));
        out.extend_from_slice(&t.to_le_bytes());
        out.extend_from_slice(&s.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decode a frame from a complete buffer; trailing bytes are an error.
    ///
    /// # Errors
    /// Any [`WireError`]; never panics, whatever the input.
    pub fn decode(bytes: &[u8]) -> Result<Frame, WireError> {
        let (frame, used) = Frame::decode_prefix(bytes)?;
        if used != bytes.len() {
            return Err(WireError::Trailing { extra: bytes.len() - used });
        }
        Ok(frame)
    }

    /// Decode one frame from the front of `bytes`, returning the frame and
    /// the number of bytes consumed.
    ///
    /// # Errors
    /// Any [`WireError`]; never panics, whatever the input.
    pub fn decode_prefix(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
        if bytes.len() < HEADER_LEN {
            return Err(WireError::Truncated { needed: HEADER_LEN, got: bytes.len() });
        }
        let header: [u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().expect("length checked");
        let len = parse_header(&header)?;
        let total = HEADER_LEN + len;
        if bytes.len() < total {
            return Err(WireError::Truncated { needed: total, got: bytes.len() });
        }
        let frame = assemble(&header, &bytes[HEADER_LEN..total])?;
        Ok((frame, total))
    }

    /// The `(trace_id, span_id)` to stamp on an outgoing frame: the current
    /// thread's request context, if any.
    pub fn current_trace() -> Option<(u64, u64)> {
        tfe_profile::current_context().map(|c| (c.trace_id, c.span_id))
    }
}

/// Validate the fixed header and return the declared payload length.
fn parse_header(header: &[u8; HEADER_LEN]) -> Result<usize, WireError> {
    if header[..4] != MAGIC {
        return Err(WireError::BadMagic(header[..4].try_into().expect("length checked")));
    }
    if header[4] != VERSION {
        return Err(WireError::UnsupportedVersion(header[4]));
    }
    let len = u32::from_le_bytes(header[30..34].try_into().expect("length checked")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized { len, max: MAX_FRAME_LEN });
    }
    Ok(len)
}

fn assemble(header: &[u8; HEADER_LEN], payload: &[u8]) -> Result<Frame, WireError> {
    let flags = header[5];
    let call_id = u64::from_le_bytes(header[6..14].try_into().expect("length checked"));
    let trace = if flags & FLAG_TRACE != 0 {
        Some((
            u64::from_le_bytes(header[14..22].try_into().expect("length checked")),
            u64::from_le_bytes(header[22..30].try_into().expect("length checked")),
        ))
    } else {
        None
    };
    let text = std::str::from_utf8(payload)
        .map_err(|e| WireError::Payload(format!("invalid utf-8: {e}")))?;
    let body = Value::parse(text).map_err(|e| WireError::Payload(e.to_string()))?;
    Ok(Frame { call_id, trace, body })
}

/// Write one frame to a stream.
///
/// # Errors
/// [`WireError::TimedOut`] / [`WireError::Disconnected`] from the sink.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    let bytes = frame.encode();
    w.write_all(&bytes).map_err(io_err)?;
    w.flush().map_err(io_err)?;
    Ok(())
}

/// Read one complete frame from a stream with checked length reads.
///
/// `idle_probe`: when `true`, a timeout on the *first* byte returns
/// `Ok(None)` ("no request yet") instead of an error — worker serve loops
/// use this to poll for shutdown between requests. A timeout after any
/// byte has arrived is always [`WireError::TimedOut`] (a torn frame), and
/// EOF is always [`WireError::Disconnected`].
///
/// On success returns the frame plus the total number of wire bytes it
/// occupied (header + payload).
///
/// # Errors
/// Any [`WireError`]; never panics.
pub fn read_frame(
    r: &mut impl Read,
    idle_probe: bool,
) -> Result<Option<(Frame, usize)>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) => return Err(WireError::Disconnected("eof".to_string())),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if filled == 0 && idle_probe {
                    return Ok(None);
                }
                return Err(WireError::TimedOut);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err(e)),
        }
    }
    let len = parse_header(&header)?;
    let mut payload = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(WireError::Disconnected("eof mid-payload".to_string())),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err(e)),
        }
    }
    assemble(&header, &payload).map(|f| Some((f, HEADER_LEN + len)))
}

/// Remaining time before `deadline`, or `None` if it already passed.
pub(crate) fn remaining(deadline: Instant) -> Option<std::time::Duration> {
    let now = Instant::now();
    if now >= deadline {
        None
    } else {
        Some(deadline - now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::new(
            42,
            Some((7, 9)),
            Value::object([
                ("type".to_string(), Value::str("ping")),
                ("n".to_string(), Value::Int(3)),
            ]),
        )
    }

    #[test]
    fn round_trip() {
        let f = sample();
        let bytes = f.encode();
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
        // Without trace ids.
        let g = Frame::new(1, None, Value::Null);
        assert_eq!(Frame::decode(&g.encode()).unwrap(), g);
    }

    #[test]
    fn typed_errors_not_panics() {
        assert!(matches!(Frame::decode(b""), Err(WireError::Truncated { .. })));
        assert!(matches!(Frame::decode(b"XXXX"), Err(WireError::Truncated { .. })));
        let mut bytes = sample().encode();
        bytes[0] = b'Z';
        assert!(matches!(Frame::decode(&bytes), Err(WireError::BadMagic(_))));
        let mut bytes = sample().encode();
        bytes[4] = 99;
        assert!(matches!(Frame::decode(&bytes), Err(WireError::UnsupportedVersion(99))));
    }

    #[test]
    fn oversized_guard_before_allocation() {
        let mut bytes = sample().encode();
        let huge = (MAX_FRAME_LEN as u32 + 1).to_le_bytes();
        bytes[30..34].copy_from_slice(&huge);
        assert!(matches!(Frame::decode(&bytes), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(matches!(Frame::decode(&bytes), Err(WireError::Trailing { extra: 1 })));
    }

    #[test]
    fn stream_read_matches_buffer_decode() {
        let f = sample();
        let bytes = f.encode();
        let total = bytes.len();
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor, false).unwrap(), Some((f, total)));
    }
}
