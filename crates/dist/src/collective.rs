//! Collectives for data-parallel training: parameter-server and ring
//! all-reduce gradient means, coordinator-driven over the RPC layer.
//!
//! ## Determinism policy (DESIGN.md §17)
//!
//! Floating-point addition is not associative, so "the" mean of N shard
//! gradients depends on combine order. Each collective therefore *defines*
//! a deterministic order, and ships a local reference emulation
//! ([`ps_reference_mean`], [`ring_reference_mean`]) that executes the same
//! kernel sequence in the same order on the coordinator. Distributed
//! results are required (and tested) to match their reference **bitwise**
//! — this pins down both wire fidelity (floats survive serialization
//! exactly) and combine-order discipline.
//!
//! - **Parameter server**: `(((g0 + g1) + g2) + …) / n`, worker order.
//! - **Ring**: the tensor is split along axis 0 into `n` contiguous chunk
//!   ranges; chunk `k` is reduced on worker `k` in ring order
//!   `k, k+1, …` (mod `n`, left-associated), divided by `n`, then
//!   all-gathered by concatenation in chunk order. Tensors with fewer
//!   than `n` leading rows (including scalars) fall back to a single
//!   chunk reduced on worker 0 and broadcast.

use crate::cluster::{Cluster, RemoteArg, RemoteTensor, Result};
use crate::error::DistError;
use std::sync::Arc;
use tfe_ops::Attrs;
use tfe_runtime::kernels::run_kernel;
use tfe_runtime::Tensor;
use tfe_tensor::{DType, TensorData};

fn scalar(dtype: DType, v: f64) -> TensorData {
    TensorData::from_f64_vec(dtype, vec![v], Vec::<usize>::new())
}

fn one_output(outs: Vec<RemoteTensor>, op: &str) -> Result<RemoteTensor> {
    outs.into_iter()
        .next()
        .ok_or_else(|| DistError::Spec(format!("collective op `{op}` returned no outputs")))
}

fn validate(shards: &[RemoteTensor]) -> Result<()> {
    let first = shards
        .first()
        .ok_or_else(|| DistError::Spec("collective needs at least one shard".to_string()))?;
    for s in &shards[1..] {
        if s.dtype != first.dtype || s.dims != first.dims {
            return Err(DistError::Spec(format!(
                "collective shards disagree: {:?}{:?} vs {:?}{:?}",
                first.dtype, first.dims, s.dtype, s.dims
            )));
        }
    }
    Ok(())
}

/// Split `rows` into `n` contiguous ranges, sized as evenly as possible
/// (the first `rows % n` ranges get one extra row).
fn chunk_ranges(rows: usize, n: usize) -> Vec<(usize, usize)> {
    let base = rows / n;
    let extra = rows % n;
    let mut start = 0;
    (0..n)
        .map(|k| {
            let len = base + usize::from(k < extra);
            let r = (start, len);
            start += len;
            r
        })
        .collect()
}

fn slice_attrs(dims: &[usize], start: usize, len: usize) -> Attrs {
    let mut begin = vec![0i64; dims.len()];
    let mut size: Vec<i64> = dims.iter().map(|&d| d as i64).collect();
    begin[0] = start as i64;
    size[0] = len as i64;
    Attrs::new().with("begin", begin).with("size", size)
}

/// Parameter-server mean: relay every shard to `ps_device`, sum in worker
/// order, divide by the shard count. The result stays resident on the
/// parameter server.
///
/// # Errors
/// Empty/mismatched shards, or any typed RPC failure.
pub fn ps_all_reduce_mean(
    cluster: &Cluster,
    ps_device: &str,
    shards: &[RemoteTensor],
) -> Result<RemoteTensor> {
    validate(shards)?;
    let n = shards.len();
    let mut acc = RemoteArg::from(&shards[0]);
    for s in &shards[1..] {
        let out = cluster.execute(ps_device, "add", &[acc, RemoteArg::from(s)], Attrs::new())?;
        acc = RemoteArg::Remote(one_output(out, "add")?);
    }
    let divisor = Tensor::from_data(scalar(shards[0].dtype, n as f64));
    let out = cluster.execute(ps_device, "div", &[acc, RemoteArg::from(&divisor)], Attrs::new())?;
    one_output(out, "div")
}

/// Local bit-reference for [`ps_all_reduce_mean`]: the same kernels in the
/// same order, run on the coordinator.
///
/// # Errors
/// Empty shards or kernel failures.
pub fn ps_reference_mean(shards: &[Arc<TensorData>]) -> Result<TensorData> {
    let first =
        shards.first().ok_or_else(|| DistError::Spec("reference needs shards".to_string()))?;
    let n = shards.len();
    let mut acc = first.clone();
    for s in &shards[1..] {
        let out = run_kernel("add", &Attrs::new(), &[acc, s.clone()])?;
        acc = Arc::new(out.into_iter().next().expect("add yields one output"));
    }
    let divisor = Arc::new(scalar(first.dtype(), n as f64));
    let out = run_kernel("div", &Attrs::new(), &[acc, divisor])?;
    Ok(out.into_iter().next().expect("div yields one output"))
}

/// Ring all-reduce mean over one same-shaped shard per worker. Returns the
/// reduced mean resident on *every* worker (in shard order).
///
/// See the module docs for the chunking and combine-order contract.
///
/// # Errors
/// Empty/mismatched shards, or any typed RPC failure.
pub fn ring_all_reduce_mean(
    cluster: &Cluster,
    shards: &[RemoteTensor],
) -> Result<Vec<RemoteTensor>> {
    validate(shards)?;
    let n = shards.len();
    let dims = shards[0].dims.clone();
    let dtype = shards[0].dtype;
    let devices: Vec<String> = shards.iter().map(|s| s.device.to_string()).collect();
    let divisor = Tensor::from_data(scalar(dtype, n as f64));

    let ranges = if !dims.is_empty() && dims[0] >= n { chunk_ranges(dims[0], n) } else { vec![] };

    if ranges.is_empty() {
        // Fallback: one chunk, reduced on worker 0, broadcast to all.
        let mut acc = RemoteArg::from(&shards[0]);
        for s in &shards[1..] {
            let out =
                cluster.execute(&devices[0], "add", &[acc, RemoteArg::from(s)], Attrs::new())?;
            acc = RemoteArg::Remote(one_output(out, "add")?);
        }
        let mean = one_output(
            cluster.execute(&devices[0], "div", &[acc, RemoteArg::from(&divisor)], Attrs::new())?,
            "div",
        )?;
        return devices
            .iter()
            .map(|dev| {
                let out = if dims.is_empty() {
                    // Scalars cannot concat; materialize via `x + 0`.
                    let zero = Tensor::from_data(scalar(dtype, 0.0));
                    cluster.execute(
                        dev,
                        "add",
                        &[RemoteArg::from(&mean), RemoteArg::from(&zero)],
                        Attrs::new(),
                    )?
                } else {
                    cluster.execute(
                        dev,
                        "concat",
                        &[RemoteArg::from(&mean)],
                        Attrs::new().with("axis", 0i64),
                    )?
                };
                one_output(out, "broadcast")
            })
            .collect();
    }

    // Reduce-scatter: chunk k is summed on worker k in ring order.
    let mut chunk_means = Vec::with_capacity(n);
    for (k, &(start, len)) in ranges.iter().enumerate() {
        let owner = &devices[k];
        let out = cluster.execute(
            owner,
            "slice",
            &[RemoteArg::from(&shards[k])],
            slice_attrs(&dims, start, len),
        )?;
        let mut acc = RemoteArg::Remote(one_output(out, "slice")?);
        for j in 1..n {
            let w = (k + j) % n;
            let piece = one_output(
                cluster.execute(
                    &devices[w],
                    "slice",
                    &[RemoteArg::from(&shards[w])],
                    slice_attrs(&dims, start, len),
                )?,
                "slice",
            )?;
            let out =
                cluster.execute(owner, "add", &[acc, RemoteArg::from(&piece)], Attrs::new())?;
            acc = RemoteArg::Remote(one_output(out, "add")?);
        }
        let mean = one_output(
            cluster.execute(owner, "div", &[acc, RemoteArg::from(&divisor)], Attrs::new())?,
            "div",
        )?;
        chunk_means.push(mean);
    }

    // All-gather: every worker concatenates the reduced chunks in order.
    devices
        .iter()
        .map(|dev| {
            let args: Vec<RemoteArg> = chunk_means.iter().map(RemoteArg::from).collect();
            one_output(
                cluster.execute(dev, "concat", &args, Attrs::new().with("axis", 0i64))?,
                "concat",
            )
        })
        .collect()
}

/// Local bit-reference for [`ring_all_reduce_mean`]: identical chunking,
/// combine order, and kernel sequence on the coordinator. Returns the one
/// tensor every worker would hold.
///
/// # Errors
/// Empty shards or kernel failures.
pub fn ring_reference_mean(shards: &[Arc<TensorData>]) -> Result<TensorData> {
    let first =
        shards.first().ok_or_else(|| DistError::Spec("reference needs shards".to_string()))?;
    let n = shards.len();
    let dims: Vec<usize> = first.shape().dims().to_vec();
    let dtype = first.dtype();
    let divisor = Arc::new(scalar(dtype, n as f64));
    let one = |out: Vec<TensorData>| Arc::new(out.into_iter().next().expect("one output"));

    let ranges = if !dims.is_empty() && dims[0] >= n { chunk_ranges(dims[0], n) } else { vec![] };

    if ranges.is_empty() {
        let mut acc = first.clone();
        for s in &shards[1..] {
            acc = one(run_kernel("add", &Attrs::new(), &[acc, s.clone()])?);
        }
        let mean = one(run_kernel("div", &Attrs::new(), &[acc, divisor])?);
        let out = if dims.is_empty() {
            let zero = Arc::new(scalar(dtype, 0.0));
            run_kernel("add", &Attrs::new(), &[mean, zero])?
        } else {
            run_kernel("concat", &Attrs::new().with("axis", 0i64), &[mean])?
        };
        return Ok(out.into_iter().next().expect("one output"));
    }

    let mut chunk_means = Vec::with_capacity(n);
    for (k, &(start, len)) in ranges.iter().enumerate() {
        let mut acc =
            one(run_kernel("slice", &slice_attrs(&dims, start, len), &[shards[k].clone()])?);
        for j in 1..n {
            let w = (k + j) % n;
            let piece =
                one(run_kernel("slice", &slice_attrs(&dims, start, len), &[shards[w].clone()])?);
            acc = one(run_kernel("add", &Attrs::new(), &[acc, piece])?);
        }
        chunk_means.push(one(run_kernel("div", &Attrs::new(), &[acc, divisor.clone()])?));
    }
    let out = run_kernel("concat", &Attrs::new().with("axis", 0i64), &chunk_means)?;
    Ok(out.into_iter().next().expect("one output"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_evenly() {
        assert_eq!(chunk_ranges(6, 2), vec![(0, 3), (3, 3)]);
        assert_eq!(chunk_ranges(7, 3), vec![(0, 3), (3, 2), (5, 2)]);
        assert_eq!(chunk_ranges(2, 2), vec![(0, 1), (1, 1)]);
        let ranges = chunk_ranges(11, 4);
        assert_eq!(ranges.iter().map(|(_, l)| l).sum::<usize>(), 11);
        assert_eq!(ranges[0].0, 0);
    }
}
