//! Typed distribution errors. Every RPC path resolves to one of these
//! within its deadline — never a hang.

use crate::wire::WireError;
use std::time::Duration;
use tfe_runtime::RuntimeError;

/// A distribution-layer failure.
#[derive(Debug)]
pub enum DistError {
    /// The per-call deadline expired before a response arrived (including
    /// any retries the policy allowed).
    Timeout {
        /// `job/task` label of the worker.
        worker: String,
        /// The request that timed out (e.g. `execute:add`).
        op: String,
        /// The deadline that was enforced.
        after: Duration,
    },
    /// The transport failed: connect refused after bounded retries, or the
    /// peer hung up mid-exchange (worker death).
    ConnectionLost {
        /// `job/task` label of the worker.
        worker: String,
        /// The request in flight.
        op: String,
        /// Underlying transport detail.
        detail: String,
    },
    /// The worker received and executed the request but reported a
    /// failure (kernel error, unknown function, missing resident tensor).
    RemoteFault {
        /// `job/task` label of the worker.
        worker: String,
        /// The worker's error description.
        detail: String,
    },
    /// A frame failed to encode/decode.
    Wire(WireError),
    /// `ClusterSpec::with_job` was given a job name it already holds.
    DuplicateJob(String),
    /// A job with zero tasks is not a job.
    EmptyJob(String),
    /// No worker in the cluster matches the device name.
    NoSuchWorker(String),
    /// The device string did not parse or names a non-CPU device.
    BadDevice(String),
    /// A coordinator-side runtime failure (serializing args, local math).
    Runtime(Box<RuntimeError>),
    /// Invalid collective/sharding configuration (mismatched shard counts,
    /// batch not divisible by worker count, ...).
    Spec(String),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Timeout { worker, op, after } => {
                write!(f, "rpc `{op}` to worker {worker} timed out after {after:?}")
            }
            DistError::ConnectionLost { worker, op, detail } => {
                write!(f, "connection to worker {worker} lost during `{op}`: {detail}")
            }
            DistError::RemoteFault { worker, detail } => {
                write!(f, "worker {worker} reported: {detail}")
            }
            DistError::Wire(e) => write!(f, "wire error: {e}"),
            DistError::DuplicateJob(job) => write!(f, "duplicate job `{job}` in cluster spec"),
            DistError::EmptyJob(job) => write!(f, "job `{job}` declares zero tasks"),
            DistError::NoSuchWorker(dev) => write!(f, "no worker serves device `{dev}`"),
            DistError::BadDevice(msg) => write!(f, "bad device name: {msg}"),
            DistError::Runtime(e) => write!(f, "{e}"),
            DistError::Spec(msg) => write!(f, "invalid distribution spec: {msg}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<WireError> for DistError {
    fn from(e: WireError) -> DistError {
        DistError::Wire(e)
    }
}

impl From<RuntimeError> for DistError {
    fn from(e: RuntimeError) -> DistError {
        DistError::Runtime(Box::new(e))
    }
}

impl From<DistError> for RuntimeError {
    fn from(e: DistError) -> RuntimeError {
        match e {
            DistError::Runtime(inner) => *inner,
            DistError::BadDevice(msg) | DistError::NoSuchWorker(msg) => RuntimeError::Device(msg),
            other => RuntimeError::Internal(format!("dist: {other}")),
        }
    }
}
