//! The byte-transport layer: one trait, two implementations.
//!
//! [`Transport`] is a synchronous request/response exchange of
//! [`Frame`]s under an absolute deadline. The two implementations are
//! deliberately symmetric so the in-process path remains the bitwise
//! differential reference for the TCP path:
//!
//! - [`InProcessTransport`] — the worker is a thread fed by a channel.
//!   Frames are still *encoded to wire bytes and decoded back* on both
//!   hops, so the only thing TCP adds is the socket itself.
//! - [`TcpTransport`] — the worker is a thread serving a real
//!   `TcpListener` on localhost; the coordinator keeps one reusable
//!   connection per worker and reconnects (under the RPC layer's retry
//!   policy) after failures.
//!
//! Worker servers poll a kill flag between requests, so
//! [`WorkerControl::kill`] simulates abrupt worker death: in-flight and
//! subsequent RPCs surface typed transport errors within their deadline.

use crate::wire::{read_frame, remaining, write_frame, Frame, WireError};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often servers poll the kill flag while idle.
const POLL: Duration = Duration::from_millis(25);

/// A transport-level failure, mapped to [`crate::DistError`] by the RPC
/// layer.
#[derive(Debug)]
pub enum TransportError {
    /// Establishing the connection failed; the request was never sent, so
    /// a retry is always safe.
    Connect(String),
    /// The deadline expired while waiting to send or receive.
    Timeout,
    /// The peer vanished mid-exchange (EOF, reset, dead channel).
    ConnectionLost(String),
    /// The response failed to decode.
    Wire(WireError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Connect(msg) => write!(f, "connect failed: {msg}"),
            TransportError::Timeout => write!(f, "transport deadline expired"),
            TransportError::ConnectionLost(msg) => write!(f, "connection lost: {msg}"),
            TransportError::Wire(e) => write!(f, "{e}"),
        }
    }
}

/// One request/response exchange with a worker.
pub trait Transport: Send + Sync {
    /// Send `frame` and wait for the matching response, bounded by the
    /// absolute `deadline`.
    ///
    /// # Errors
    /// Typed [`TransportError`]; implementations never block past the
    /// deadline.
    fn round_trip(&self, frame: &Frame, deadline: Instant) -> Result<Frame, TransportError>;

    /// `"in_process"` or `"tcp"` — used in metrics labels and Debug.
    fn kind(&self) -> &'static str;
}

/// Handle to a running worker server (either transport).
pub struct WorkerControl {
    kill: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
    /// The bound localhost address (TCP workers only).
    pub addr: Option<SocketAddr>,
}

impl WorkerControl {
    /// Abrupt death: stop serving without draining. In-flight requests are
    /// abandoned (TCP connections reset; channel responses never sent) so
    /// the coordinator's next RPC observes `ConnectionLost` or `Timeout`
    /// within its deadline. Used by shutdown and by chaos tests.
    pub fn kill(&mut self) {
        self.kill.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }

    /// Whether the server has been killed.
    pub fn is_killed(&self) -> bool {
        self.kill.load(Ordering::SeqCst)
    }
}

fn count_bytes(worker: &str, sent: usize, received: usize) {
    tfe_metrics::counter_vec(
        "tfe_dist_bytes_sent_total",
        "Wire bytes sent from the coordinator to each worker",
        "worker",
    )
    .with(worker)
    .add(sent as u64);
    tfe_metrics::counter_vec(
        "tfe_dist_bytes_received_total",
        "Wire bytes received by the coordinator from each worker",
        "worker",
    )
    .with(worker)
    .add(received as u64);
}

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

type ByteCall = (Vec<u8>, Sender<Vec<u8>>);

/// Channel transport to a worker thread in this process. Frames still
/// round-trip through their wire-byte encoding, so this path exercises
/// everything the TCP path does except the socket.
pub struct InProcessTransport {
    tx: Sender<ByteCall>,
    worker: String,
}

impl Transport for InProcessTransport {
    fn round_trip(&self, frame: &Frame, deadline: Instant) -> Result<Frame, TransportError> {
        let bytes = frame.encode();
        let sent = bytes.len();
        let (resp_tx, resp_rx) = unbounded();
        self.tx
            .send((bytes, resp_tx))
            .map_err(|_| TransportError::ConnectionLost("worker channel closed".to_string()))?;
        let timeout = remaining(deadline).ok_or(TransportError::Timeout)?;
        let resp = match resp_rx.recv_timeout(timeout) {
            Ok(bytes) => bytes,
            Err(RecvTimeoutError::Timeout) => return Err(TransportError::Timeout),
            Err(RecvTimeoutError::Disconnected) => {
                return Err(TransportError::ConnectionLost(
                    "worker died before responding".to_string(),
                ))
            }
        };
        count_bytes(&self.worker, sent, resp.len());
        Frame::decode(&resp).map_err(TransportError::Wire)
    }

    fn kind(&self) -> &'static str {
        "in_process"
    }
}

/// Spawn an in-process worker serving `handler` over a channel of wire
/// bytes. `handler` returns `(response_frame, shutdown)`.
pub(crate) fn spawn_in_process(
    name: &str,
    mut handler: impl FnMut(Frame) -> (Frame, bool) + Send + 'static,
) -> (InProcessTransport, WorkerControl) {
    let (tx, rx): (Sender<ByteCall>, Receiver<ByteCall>) = unbounded();
    let kill = Arc::new(AtomicBool::new(false));
    let kill_srv = kill.clone();
    let join = std::thread::Builder::new()
        .name(format!("tfe-worker-{name}"))
        .spawn(move || loop {
            if kill_srv.load(Ordering::SeqCst) {
                break;
            }
            let (bytes, resp_tx) = match rx.recv_timeout(POLL) {
                Ok(call) => call,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            };
            match Frame::decode(&bytes) {
                Ok(frame) => {
                    let (reply, shutdown) = handler(frame);
                    if kill_srv.load(Ordering::SeqCst) && !shutdown {
                        // Killed mid-request: abandon the response so the
                        // caller sees a transport failure, not a last gasp.
                        break;
                    }
                    let _ = resp_tx.send(reply.encode());
                    if shutdown {
                        kill_srv.store(true, Ordering::SeqCst);
                        break;
                    }
                }
                Err(e) => {
                    let reply = Frame::new(0, None, crate::rpc::err_body(&format!("wire: {e}")));
                    let _ = resp_tx.send(reply.encode());
                }
            }
        })
        .expect("spawn in-process worker");
    (
        InProcessTransport { tx, worker: name.to_string() },
        WorkerControl { kill, join: Some(join), addr: None },
    )
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

/// Socket transport to a worker serving a localhost listener. One
/// connection is kept and reused across calls; any failure poisons it so
/// the next call reconnects from scratch.
pub struct TcpTransport {
    addr: SocketAddr,
    stream: Mutex<Option<TcpStream>>,
    worker: String,
}

impl TcpTransport {
    /// Transport to a worker at `addr` (labelled `worker` in metrics).
    pub fn new(addr: SocketAddr, worker: String) -> TcpTransport {
        TcpTransport { addr, stream: Mutex::new(None), worker }
    }
}

impl Transport for TcpTransport {
    fn round_trip(&self, frame: &Frame, deadline: Instant) -> Result<Frame, TransportError> {
        let mut slot = self.stream.lock();
        if slot.is_none() {
            let timeout = remaining(deadline).ok_or(TransportError::Timeout)?;
            let stream = TcpStream::connect_timeout(&self.addr, timeout)
                .map_err(|e| TransportError::Connect(e.to_string()))?;
            stream.set_nodelay(true).ok();
            *slot = Some(stream);
        }
        let stream = slot.as_mut().expect("connected above");
        let result = exchange(stream, frame, deadline, &self.worker);
        if result.is_err() {
            // Poison the cached connection: a timed-out response may still
            // arrive later and would desynchronize call ids.
            *slot = None;
        }
        result
    }

    fn kind(&self) -> &'static str {
        "tcp"
    }
}

fn exchange(
    stream: &mut TcpStream,
    frame: &Frame,
    deadline: Instant,
    worker: &str,
) -> Result<Frame, TransportError> {
    let map_wire = |e: WireError| match e {
        WireError::TimedOut => TransportError::Timeout,
        WireError::Disconnected(msg) => TransportError::ConnectionLost(msg),
        other => TransportError::Wire(other),
    };
    let timeout = remaining(deadline).ok_or(TransportError::Timeout)?;
    stream.set_write_timeout(Some(timeout)).ok();
    let bytes = frame.encode();
    use std::io::Write;
    stream.write_all(&bytes).map_err(|e| {
        if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) {
            TransportError::Timeout
        } else {
            TransportError::ConnectionLost(e.to_string())
        }
    })?;
    let timeout = remaining(deadline).ok_or(TransportError::Timeout)?;
    stream.set_read_timeout(Some(timeout)).ok();
    let (reply, reply_bytes) = read_frame(stream, false)
        .map_err(map_wire)?
        .ok_or_else(|| TransportError::ConnectionLost("eof".to_string()))?;
    count_bytes(worker, bytes.len(), reply_bytes);
    Ok(reply)
}

/// Spawn a TCP worker: bind `127.0.0.1:0`, serve connections until killed
/// or a shutdown request arrives. Each connection gets its own thread;
/// state is shared behind the handler's own synchronization.
pub(crate) fn spawn_tcp(
    name: &str,
    handler: impl Fn(Frame) -> (Frame, bool) + Send + Sync + 'static,
) -> std::io::Result<(TcpTransport, WorkerControl)> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let kill = Arc::new(AtomicBool::new(false));
    let kill_srv = kill.clone();
    let handler = Arc::new(handler);
    let name_owned = name.to_string();
    let join = std::thread::Builder::new()
        .name(format!("tfe-worker-{name}"))
        .spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            loop {
                if kill_srv.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let kill_conn = kill_srv.clone();
                        let handler = handler.clone();
                        let label = format!("tfe-worker-{name_owned}-conn");
                        let h = std::thread::Builder::new()
                            .name(label)
                            .spawn(move || serve_connection(stream, &kill_conn, &*handler))
                            .expect("spawn worker connection");
                        conns.push(h);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL);
                    }
                    Err(_) => break,
                }
            }
            // Listener drops here: new connects are refused. Join the
            // connection threads; they poll the same kill flag.
            for h in conns {
                let _ = h.join();
            }
        })
        .expect("spawn tcp worker");
    Ok((
        TcpTransport::new(addr, name.to_string()),
        WorkerControl { kill, join: Some(join), addr: Some(addr) },
    ))
}

fn serve_connection(
    stream: TcpStream,
    kill: &AtomicBool,
    handler: &(dyn Fn(Frame) -> (Frame, bool) + Send + Sync),
) {
    let mut stream = stream;
    stream.set_read_timeout(Some(POLL)).ok();
    stream.set_nodelay(true).ok();
    loop {
        if kill.load(Ordering::SeqCst) {
            return; // drop the stream mid-whatever: abrupt death
        }
        match read_frame(&mut stream, true) {
            Ok(None) => continue, // idle poll tick: no request yet
            Ok(Some((frame, _))) => {
                let (reply, shutdown) = handler(frame);
                if kill.load(Ordering::SeqCst) && !shutdown {
                    return;
                }
                stream.set_write_timeout(Some(Duration::from_secs(5))).ok();
                if write_frame(&mut stream, &reply).is_err() {
                    return;
                }
                if shutdown {
                    kill.store(true, Ordering::SeqCst);
                    return;
                }
            }
            Err(WireError::TimedOut) => return, // torn frame: give up on conn
            Err(_) => return,                   // disconnect or garbage
        }
    }
}
