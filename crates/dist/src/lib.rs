//! # tfe-dist
//!
//! Distributed execution substrate (§4.5 of the TensorFlow Eager paper):
//! a single central coordinator plus worker servers, each contributing its
//! devices to the pool. Remote devices are addressed by application-level
//! names (`/job:training/task:2/device:CPU:0`); tensors produced on a
//! remote device *stay* on that device, and the coordinator can either run
//! more operations on them or fetch them.
//!
//! ## Layering (DESIGN.md §17)
//!
//! ```text
//! collective  ring / parameter-server gradient means + bit references
//! cluster     ClusterSpec, Cluster, RemoteTensor, arg relay
//! rpc         request/response, deadlines, bounded retries, typed errors
//! transport   Transport trait: in-process channels | real TCP sockets
//! wire        length-prefixed frames over the tfe-encode JSON format
//! ```
//!
//! Both transports run the same protocol bytes end to end — the in-process
//! path encodes/decodes every frame exactly like the TCP path and serves
//! as its bitwise differential reference (`tests/dist_differential.rs`).
//!
//! ## Substitution (DESIGN.md §3)
//!
//! The paper's workers are gRPC servers on remote hosts. Here each worker
//! is a thread in this process — behind a channel, or behind a real
//! localhost `TcpListener` with length-prefixed frames — and every tensor
//! crossing the coordinator↔worker boundary is serialized through the same
//! JSON format the on-disk artifacts use. The mechanism (name resolution,
//! remote-resident tensors, explicit fetch, whole-graph-function dispatch,
//! deadline-bounded RPCs with typed failures) is preserved; only the
//! process boundary differs. Graph functions are resolved by *name*
//! against the shared in-process function library, standing in for
//! shipping the serialized function to the worker once.

#![warn(missing_docs)]

pub mod cluster;
pub mod collective;
pub mod error;
pub mod rpc;
pub mod transport;
pub mod wire;
pub mod worker;

pub use cluster::{Cluster, ClusterSpec, RemoteArg, RemoteTensor, Result, TransportKind};
pub use collective::{
    ps_all_reduce_mean, ps_reference_mean, ring_all_reduce_mean, ring_reference_mean,
};
pub use error::DistError;
pub use rpc::{RpcClient, RpcOptions};
pub use transport::{InProcessTransport, TcpTransport, Transport, TransportError};
pub use wire::{Frame, WireError, MAX_FRAME_LEN};
pub use worker::WorkerState;

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_core::{function1, Arg};
    use tfe_ops::Attrs;
    use tfe_runtime::api;
    use tfe_tensor::DType;

    #[test]
    fn cluster_spec_tasks() {
        let spec = ClusterSpec::new().with_job("training", 2).unwrap().with_job("ps", 1).unwrap();
        assert_eq!(spec.num_tasks("training"), 2);
        assert_eq!(spec.num_tasks("nope"), 0);
        assert_eq!(spec.tasks().len(), 3);
    }

    #[test]
    fn remote_op_and_fetch() {
        let cluster = Cluster::start(&ClusterSpec::new().with_job("w", 1).unwrap());
        assert_eq!(cluster.list_devices().len(), 1);
        let a = api::constant(vec![1.0f32, 2.0], [2]).unwrap();
        let b = api::constant(vec![10.0f32, 20.0], [2]).unwrap();
        let out = cluster
            .execute(
                "/job:w/task:0/device:CPU:0",
                "add",
                &[RemoteArg::from(&a), RemoteArg::from(&b)],
                Attrs::new(),
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dims, vec![2]);
        let fetched = out[0].fetch().unwrap();
        assert_eq!(fetched.to_f64_vec().unwrap(), vec![11.0, 22.0]);
        cluster.shutdown();
    }

    #[test]
    fn tensors_stay_remote_between_ops() {
        let cluster = Cluster::start(&ClusterSpec::new().with_job("w", 1).unwrap());
        let dev = "/job:w/task:0/device:CPU:0";
        let a = api::scalar(3.0f64);
        let r1 = cluster.execute(dev, "square", &[RemoteArg::from(&a)], Attrs::new()).unwrap();
        // Feed the resident tensor into another remote op without fetching.
        let r2 = cluster
            .execute(dev, "add", &[RemoteArg::from(&r1[0]), RemoteArg::from(&r1[0])], Attrs::new())
            .unwrap();
        assert_eq!(r2[0].fetch().unwrap().scalar_f64().unwrap(), 18.0);
        cluster.shutdown();
    }

    #[test]
    fn remote_graph_function_call() {
        let cluster = Cluster::start(&ClusterSpec::new().with_job("w", 1).unwrap());
        let f = function1("remote_fn", |x| api::relu(&api::neg(x)?));
        let conc = f.concrete_for(&[Arg::from(&api::zeros(DType::F32, [3]))]).unwrap();
        let x = api::constant(vec![1.0f32, -2.0, 3.0], [3]).unwrap();
        let out = cluster
            .call_function(
                "/job:w/task:0/device:CPU:0",
                &conc.function.name,
                &[RemoteArg::from(&x)],
            )
            .unwrap();
        assert_eq!(out[0].fetch().unwrap().to_f64_vec().unwrap(), vec![0.0, 2.0, 0.0]);
        cluster.shutdown();
    }

    #[test]
    fn cross_worker_relay() {
        let cluster = Cluster::start(&ClusterSpec::new().with_job("w", 2).unwrap());
        let d0 = "/job:w/task:0/device:CPU:0";
        let d1 = "/job:w/task:1/device:CPU:0";
        let a = api::scalar(5.0f32);
        let r0 = cluster.execute(d0, "square", &[RemoteArg::from(&a)], Attrs::new()).unwrap();
        // Using a task-0 tensor on task 1 relays through the coordinator.
        let r1 = cluster
            .execute(d1, "add", &[RemoteArg::from(&r0[0]), RemoteArg::from(&a)], Attrs::new())
            .unwrap();
        assert_eq!(r1[0].fetch().unwrap().scalar_f64().unwrap(), 30.0);
        cluster.shutdown();
    }

    #[test]
    fn errors_propagate_from_worker() {
        let cluster = Cluster::start(&ClusterSpec::new().with_job("w", 1).unwrap());
        let dev = "/job:w/task:0/device:CPU:0";
        let a = api::scalar(1.0f32);
        let b = api::scalar(1i32);
        // dtype mismatch detected on the worker: a typed remote fault.
        assert!(matches!(
            cluster.execute(dev, "add", &[RemoteArg::from(&a), RemoteArg::from(&b)], Attrs::new()),
            Err(DistError::RemoteFault { .. })
        ));
        // Unknown job.
        assert!(matches!(
            cluster.execute("/job:nope/task:0/device:CPU:0", "add", &[], Attrs::new()),
            Err(DistError::NoSuchWorker(_))
        ));
        // Unknown function.
        assert!(matches!(
            cluster.call_function(dev, "no_such_fn", &[]),
            Err(DistError::RemoteFault { .. })
        ));
        cluster.shutdown();
    }

    #[test]
    fn data_parallel_workers() {
        // A miniature single-coordinator data-parallel step: each worker
        // computes a partial sum; the coordinator averages.
        let cluster = Cluster::start(&ClusterSpec::new().with_job("train", 3).unwrap());
        let mut partials = Vec::new();
        for t in 0..3 {
            let shard = api::constant(vec![t as f32 + 1.0, 2.0 * (t as f32 + 1.0)], [2]).unwrap();
            let dev = format!("/job:train/task:{t}/device:CPU:0");
            let r = cluster
                .execute(
                    &dev,
                    "reduce_sum",
                    &[RemoteArg::from(&shard)],
                    Attrs::new().with("axes", Vec::<i64>::new()).with("keep_dims", false),
                )
                .unwrap();
            partials.push(r.into_iter().next().unwrap());
        }
        let values: Vec<f64> =
            partials.iter().map(|p| p.fetch().unwrap().scalar_f64().unwrap()).collect();
        assert_eq!(values, vec![3.0, 6.0, 9.0]);
        cluster.shutdown();
    }
}
