//! # tfe-dist
//!
//! Distributed execution substrate (§4.5 of the TensorFlow Eager paper):
//! a single central coordinator plus worker servers, each contributing its
//! devices to the pool. Remote devices are addressed by application-level
//! names (`/job:training/task:2/device:CPU:0`); tensors produced on a
//! remote device *stay* on that device, and the coordinator can either run
//! more operations on them or fetch them.
//!
//! ## Substitution (DESIGN.md §3)
//!
//! The paper's workers are gRPC servers on remote hosts. Here each worker
//! is an in-process thread connected by crossbeam channels, and every
//! tensor that crosses the coordinator↔worker boundary is serialized
//! through the same JSON wire format the on-disk artifacts use — the
//! mechanism (name resolution, remote-resident tensors, explicit fetch,
//! whole-graph-function dispatch to a worker) is preserved; only the byte
//! transport differs. Graph functions are resolved by *name* against the
//! shared in-process function library, standing in for shipping the
//! serialized function to the worker once.

#![warn(missing_docs)]

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use tfe_device::{DeviceName, DeviceType};
use tfe_encode::Value;
use tfe_graph::serial::{tensor_from_value, tensor_to_value};
use tfe_ops::Attrs;
use tfe_runtime::{context, ExecMode, RuntimeError, Tensor};
use tfe_tensor::TensorData;

/// Result alias.
pub type Result<T, E = RuntimeError> = std::result::Result<T, E>;

/// The cluster layout: job name → list of task host labels.
///
/// ```
/// use tfe_dist::ClusterSpec;
/// let spec = ClusterSpec::new().with_job("training", 3);
/// assert_eq!(spec.num_tasks("training"), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClusterSpec {
    jobs: Vec<(String, usize)>,
}

impl ClusterSpec {
    /// An empty spec.
    pub fn new() -> ClusterSpec {
        ClusterSpec::default()
    }

    /// Add a job with `tasks` worker tasks.
    pub fn with_job(mut self, name: &str, tasks: usize) -> ClusterSpec {
        self.jobs.push((name.to_string(), tasks));
        self
    }

    /// Number of tasks in `job` (0 when absent).
    pub fn num_tasks(&self, job: &str) -> usize {
        self.jobs.iter().find(|(n, _)| n == job).map(|(_, t)| *t).unwrap_or(0)
    }

    /// All (job, task) pairs.
    pub fn tasks(&self) -> Vec<(String, usize)> {
        self.jobs
            .iter()
            .flat_map(|(name, tasks)| (0..*tasks).map(move |t| (name.clone(), t)))
            .collect()
    }
}

/// An argument to a remote operation: a local value (shipped over the wire)
/// or a tensor already resident on the target worker.
#[derive(Debug, Clone)]
pub enum RemoteArg {
    /// Serialize and send this local tensor.
    Local(Tensor),
    /// Reference a tensor resident on the worker.
    Remote(RemoteTensor),
}

impl From<&Tensor> for RemoteArg {
    fn from(t: &Tensor) -> RemoteArg {
        RemoteArg::Local(t.clone())
    }
}

impl From<&RemoteTensor> for RemoteArg {
    fn from(t: &RemoteTensor) -> RemoteArg {
        RemoteArg::Remote(t.clone())
    }
}

enum WireArg {
    Inline(String), // JSON tensor
    Resident(u64),
}

enum Request {
    /// Execute one op; outputs stay resident on the worker.
    ExecuteOp {
        op: String,
        attrs: Attrs,
        inputs: Vec<WireArg>,
        /// Caller's `(trace_id, span_id)`, shipped with the frame so the
        /// worker continues the coordinator's causal arc.
        trace: Option<(u64, u64)>,
        resp: Sender<Result<Vec<RemoteMeta>, String>>,
    },
    /// Execute a graph function from the shared library.
    CallFunction {
        name: String,
        inputs: Vec<WireArg>,
        trace: Option<(u64, u64)>,
        resp: Sender<Result<Vec<RemoteMeta>, String>>,
    },
    /// Serialize a resident tensor back to the coordinator.
    Fetch { id: u64, trace: Option<(u64, u64)>, resp: Sender<Result<String, String>> },
    /// Drop a resident tensor.
    Delete { id: u64 },
    /// Shut the worker down.
    Shutdown,
}

#[derive(Debug, Clone)]
struct RemoteMeta {
    id: u64,
    dtype: tfe_tensor::DType,
    dims: Vec<usize>,
}

struct WorkerHandle {
    sender: Sender<Request>,
    join: Option<JoinHandle<()>>,
}

fn worker_main(rx: Receiver<Request>) {
    context::ensure_init();
    let device = context::device_manager().host_cpu();
    let mut resident: HashMap<u64, Arc<TensorData>> = HashMap::new();
    let mut next_id: u64 = 1;

    let decode_inputs = |resident: &HashMap<u64, Arc<TensorData>>,
                         inputs: Vec<WireArg>|
     -> Result<Vec<Arc<TensorData>>, String> {
        inputs
            .into_iter()
            .map(|arg| match arg {
                WireArg::Inline(json) => {
                    let v = Value::parse(&json).map_err(|e| e.to_string())?;
                    tensor_from_value(&v).map(Arc::new).map_err(|e| e.to_string())
                }
                WireArg::Resident(id) => resident
                    .get(&id)
                    .cloned()
                    .ok_or_else(|| format!("tensor {id} is not resident on this worker")),
            })
            .collect()
    };

    while let Ok(req) = rx.recv() {
        match req {
            Request::ExecuteOp { op, attrs, inputs, trace, resp } => {
                let _trace = tfe_profile::adopt_remote(trace, "rpc");
                let result = (|| -> Result<Vec<RemoteMeta>, String> {
                    let data = decode_inputs(&resident, inputs)?;
                    let out = tfe_runtime::kernels::run_kernel(&op, &attrs, &data)
                        .map_err(|e| e.to_string())?;
                    Ok(out
                        .into_iter()
                        .map(|t| {
                            let id = next_id;
                            next_id += 1;
                            let meta = RemoteMeta {
                                id,
                                dtype: t.dtype(),
                                dims: t.shape().dims().to_vec(),
                            };
                            resident.insert(id, Arc::new(t));
                            meta
                        })
                        .collect())
                })();
                let _ = resp.send(result);
            }
            Request::CallFunction { name, inputs, trace, resp } => {
                let _trace = tfe_profile::adopt_remote(trace, "rpc");
                let result = (|| -> Result<Vec<RemoteMeta>, String> {
                    let f = context::library()
                        .get(&name)
                        .ok_or_else(|| format!("function `{name}` not in library"))?;
                    let data = decode_inputs(&resident, inputs)?;
                    let out = tfe_runtime::executor::run_function(
                        &f,
                        &data,
                        &device,
                        ExecMode::SerialPlanned,
                    )
                    .map_err(|e| e.to_string())?;
                    Ok(out
                        .into_iter()
                        .map(|t| {
                            let id = next_id;
                            next_id += 1;
                            let meta = RemoteMeta {
                                id,
                                dtype: t.dtype(),
                                dims: t.shape().dims().to_vec(),
                            };
                            resident.insert(id, t);
                            meta
                        })
                        .collect())
                })();
                let _ = resp.send(result);
            }
            Request::Fetch { id, trace, resp } => {
                let _trace = tfe_profile::adopt_remote(trace, "rpc");
                let result = resident
                    .get(&id)
                    .map(|t| tensor_to_value(t).to_json())
                    .ok_or_else(|| format!("tensor {id} is not resident on this worker"));
                let _ = resp.send(result);
            }
            Request::Delete { id } => {
                resident.remove(&id);
            }
            Request::Shutdown => break,
        }
    }
}

struct ClusterInner {
    workers: Mutex<HashMap<(String, usize), WorkerHandle>>,
    devices: Vec<DeviceName>,
}

/// A running cluster: the coordinator's handle to its worker servers.
pub struct Cluster {
    inner: Arc<ClusterInner>,
}

/// A tensor resident on a remote device (§4.5: results "stay on the remote
/// device" until more ops consume them or the coordinator fetches them).
pub struct RemoteTensor {
    /// Where the tensor lives.
    pub device: DeviceName,
    /// Worker-local tensor id.
    pub id: u64,
    /// Element dtype.
    pub dtype: tfe_tensor::DType,
    /// Shape.
    pub dims: Vec<usize>,
    cluster: Arc<ClusterInner>,
    owned: Arc<AtomicU64>, // refcount-ish marker for Drop-based deletion
}

impl Clone for RemoteTensor {
    fn clone(&self) -> RemoteTensor {
        self.owned.fetch_add(1, Ordering::Relaxed);
        RemoteTensor {
            device: self.device.clone(),
            id: self.id,
            dtype: self.dtype,
            dims: self.dims.clone(),
            cluster: self.cluster.clone(),
            owned: self.owned.clone(),
        }
    }
}

impl Drop for RemoteTensor {
    fn drop(&mut self) {
        if self.owned.fetch_sub(1, Ordering::Relaxed) == 1 {
            // Last handle: free the worker-side buffer.
            let _ = self.cluster.send(&self.device, Request::Delete { id: self.id });
        }
    }
}

impl std::fmt::Debug for RemoteTensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RemoteTensor(id={}, {:?}{:?} on {})",
            self.id, self.dtype, self.dims, self.device
        )
    }
}

impl RemoteTensor {
    /// Copy the value back to the coordinator (§4.5: "copy them to the
    /// central server, e.g. to use their value in an if statement").
    ///
    /// # Errors
    /// Worker failures.
    pub fn fetch(&self) -> Result<Tensor> {
        // An RPC is a request entry point (nested fetches — e.g. the
        // coordinator relaying cross-worker args — inherit the ambient
        // request instead).
        let _root = tfe_profile::request_scope("dist", || format!("rpc:fetch:{}", self.id));
        let trace = tfe_profile::current_context().map(|c| (c.trace_id, c.span_id));
        let started = std::time::Instant::now();
        let (tx, rx) = unbounded();
        self.cluster.send(&self.device, Request::Fetch { id: self.id, trace, resp: tx })?;
        let json = rx
            .recv()
            .map_err(|_| RuntimeError::Internal("worker hung up".to_string()))?
            .map_err(RuntimeError::Internal)?;
        observe_rpc(&self.device, started);
        let v =
            Value::parse(&json).map_err(|e| RuntimeError::Internal(format!("wire decode: {e}")))?;
        let data = tensor_from_value(&v).map_err(|e| RuntimeError::Internal(e.to_string()))?;
        Ok(Tensor::from_data(data))
    }
}

/// Per-worker RPC telemetry: one count plus one round-trip latency sample
/// per completed request, labeled `job/task` so a slow or chatty worker
/// stands out in the exported metrics.
fn observe_rpc(target: &DeviceName, started: std::time::Instant) {
    let worker = format!("{}/{}", target.job, target.task);
    tfe_metrics::counter_vec(
        "tfe_dist_rpcs_total",
        "Completed coordinator-to-worker RPCs",
        "worker",
    )
    .with(&worker)
    .inc();
    tfe_metrics::histogram_vec(
        "tfe_dist_rpc_ns",
        "Round-trip nanoseconds for coordinator-to-worker RPCs",
        "worker",
        tfe_metrics::DEFAULT_NS_BUCKETS,
    )
    .with(&worker)
    .observe(started.elapsed().as_nanos() as u64);
}

impl ClusterInner {
    fn send(&self, device: &DeviceName, req: Request) -> Result<()> {
        let workers = self.workers.lock();
        let handle = workers
            .get(&(device.job.clone(), device.task))
            .ok_or_else(|| RuntimeError::Device(format!("no worker for {device}")))?;
        handle
            .sender
            .send(req)
            .map_err(|_| RuntimeError::Internal("worker channel closed".to_string()))
    }
}

fn encode_args(args: &[RemoteArg], target: &DeviceName) -> Result<Vec<WireArg>> {
    args.iter()
        .map(|a| match a {
            RemoteArg::Local(t) => {
                let data = t.value()?;
                Ok(WireArg::Inline(tensor_to_value(&data).to_json()))
            }
            RemoteArg::Remote(r) => {
                if &r.device != target {
                    // Cross-worker: fetch then re-ship (the coordinator
                    // relays, like TF's transparent copies in §4.4).
                    let t = r.fetch()?;
                    let data = t.value()?;
                    Ok(WireArg::Inline(tensor_to_value(&data).to_json()))
                } else {
                    Ok(WireArg::Resident(r.id))
                }
            }
        })
        .collect()
}

impl Cluster {
    /// Bring up one worker thread per task in the spec.
    pub fn start(spec: &ClusterSpec) -> Cluster {
        context::ensure_init();
        let mut workers = HashMap::new();
        let mut devices = Vec::new();
        for (job, task) in spec.tasks() {
            let (tx, rx) = unbounded();
            let join = std::thread::Builder::new()
                .name(format!("tfe-worker-{job}-{task}"))
                .spawn(move || worker_main(rx))
                .expect("spawn worker");
            workers.insert((job.clone(), task), WorkerHandle { sender: tx, join: Some(join) });
            devices.push(DeviceName {
                job: job.clone(),
                task,
                device_type: DeviceType::Cpu,
                index: 0,
            });
        }
        Cluster { inner: Arc::new(ClusterInner { workers: Mutex::new(workers), devices }) }
    }

    /// All remote devices contributed by the workers (each task adds its
    /// local CPU to the pool, §4.5).
    pub fn list_devices(&self) -> Vec<DeviceName> {
        self.inner.devices.clone()
    }

    fn run(
        &self,
        device: &str,
        req: impl FnOnce(Sender<Result<Vec<RemoteMeta>, String>>) -> Request,
        target: &DeviceName,
    ) -> Result<Vec<RemoteTensor>> {
        let started = std::time::Instant::now();
        let (tx, rx) = unbounded();
        self.inner.send(target, req(tx))?;
        let metas = rx
            .recv()
            .map_err(|_| RuntimeError::Internal("worker hung up".to_string()))?
            .map_err(RuntimeError::Internal)?;
        observe_rpc(target, started);
        let _ = device;
        Ok(metas
            .into_iter()
            .map(|m| RemoteTensor {
                device: target.clone(),
                id: m.id,
                dtype: m.dtype,
                dims: m.dims,
                cluster: self.inner.clone(),
                owned: Arc::new(AtomicU64::new(1)),
            })
            .collect())
    }

    /// Execute one primitive op on the named remote device; outputs stay
    /// remote.
    ///
    /// # Errors
    /// Unknown devices, wire failures, or kernel errors on the worker.
    pub fn execute(
        &self,
        device: &str,
        op: &str,
        args: &[RemoteArg],
        attrs: Attrs,
    ) -> Result<Vec<RemoteTensor>> {
        let _root = tfe_profile::request_scope("dist", || format!("rpc:execute:{op}@{device}"));
        let trace = tfe_profile::current_context().map(|c| (c.trace_id, c.span_id));
        let target = DeviceName::parse(device).map_err(RuntimeError::Device)?;
        let inputs = encode_args(args, &target)?;
        self.run(
            device,
            |resp| Request::ExecuteOp { op: op.to_string(), attrs, inputs, trace, resp },
            &target,
        )
    }

    /// Execute a whole graph function (by library name) on a remote device
    /// — §4.5: "execute operations or whole graph functions on remote
    /// devices through the worker servers".
    ///
    /// # Errors
    /// Unknown devices/functions or worker failures.
    pub fn call_function(
        &self,
        device: &str,
        name: &str,
        args: &[RemoteArg],
    ) -> Result<Vec<RemoteTensor>> {
        let _root = tfe_profile::request_scope("dist", || format!("rpc:call:{name}@{device}"));
        let trace = tfe_profile::current_context().map(|c| (c.trace_id, c.span_id));
        let target = DeviceName::parse(device).map_err(RuntimeError::Device)?;
        let inputs = encode_args(args, &target)?;
        self.run(
            device,
            |resp| Request::CallFunction { name: name.to_string(), inputs, trace, resp },
            &target,
        )
    }

    /// Shut down all workers and join their threads.
    pub fn shutdown(&self) {
        let mut workers = self.inner.workers.lock();
        for handle in workers.values() {
            let _ = handle.sender.send(Request::Shutdown);
        }
        for handle in workers.values_mut() {
            if let Some(j) = handle.join.take() {
                let _ = j.join();
            }
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cluster({} workers)", self.inner.devices.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_core::{function1, Arg};
    use tfe_runtime::api;
    use tfe_tensor::DType;

    #[test]
    fn cluster_spec_tasks() {
        let spec = ClusterSpec::new().with_job("training", 2).with_job("ps", 1);
        assert_eq!(spec.num_tasks("training"), 2);
        assert_eq!(spec.num_tasks("nope"), 0);
        assert_eq!(spec.tasks().len(), 3);
    }

    #[test]
    fn remote_op_and_fetch() {
        let cluster = Cluster::start(&ClusterSpec::new().with_job("w", 1));
        assert_eq!(cluster.list_devices().len(), 1);
        let a = api::constant(vec![1.0f32, 2.0], [2]).unwrap();
        let b = api::constant(vec![10.0f32, 20.0], [2]).unwrap();
        let out = cluster
            .execute(
                "/job:w/task:0/device:CPU:0",
                "add",
                &[RemoteArg::from(&a), RemoteArg::from(&b)],
                Attrs::new(),
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dims, vec![2]);
        let fetched = out[0].fetch().unwrap();
        assert_eq!(fetched.to_f64_vec().unwrap(), vec![11.0, 22.0]);
        cluster.shutdown();
    }

    #[test]
    fn tensors_stay_remote_between_ops() {
        let cluster = Cluster::start(&ClusterSpec::new().with_job("w", 1));
        let dev = "/job:w/task:0/device:CPU:0";
        let a = api::scalar(3.0f64);
        let r1 = cluster.execute(dev, "square", &[RemoteArg::from(&a)], Attrs::new()).unwrap();
        // Feed the resident tensor into another remote op without fetching.
        let r2 = cluster
            .execute(dev, "add", &[RemoteArg::from(&r1[0]), RemoteArg::from(&r1[0])], Attrs::new())
            .unwrap();
        assert_eq!(r2[0].fetch().unwrap().scalar_f64().unwrap(), 18.0);
        cluster.shutdown();
    }

    #[test]
    fn remote_graph_function_call() {
        let cluster = Cluster::start(&ClusterSpec::new().with_job("w", 1));
        let f = function1("remote_fn", |x| api::relu(&api::neg(x)?));
        let conc = f.concrete_for(&[Arg::from(&api::zeros(DType::F32, [3]))]).unwrap();
        let x = api::constant(vec![1.0f32, -2.0, 3.0], [3]).unwrap();
        let out = cluster
            .call_function(
                "/job:w/task:0/device:CPU:0",
                &conc.function.name,
                &[RemoteArg::from(&x)],
            )
            .unwrap();
        assert_eq!(out[0].fetch().unwrap().to_f64_vec().unwrap(), vec![0.0, 2.0, 0.0]);
        cluster.shutdown();
    }

    #[test]
    fn cross_worker_relay() {
        let cluster = Cluster::start(&ClusterSpec::new().with_job("w", 2));
        let d0 = "/job:w/task:0/device:CPU:0";
        let d1 = "/job:w/task:1/device:CPU:0";
        let a = api::scalar(5.0f32);
        let r0 = cluster.execute(d0, "square", &[RemoteArg::from(&a)], Attrs::new()).unwrap();
        // Using a task-0 tensor on task 1 relays through the coordinator.
        let r1 = cluster
            .execute(d1, "add", &[RemoteArg::from(&r0[0]), RemoteArg::from(&a)], Attrs::new())
            .unwrap();
        assert_eq!(r1[0].fetch().unwrap().scalar_f64().unwrap(), 30.0);
        cluster.shutdown();
    }

    #[test]
    fn errors_propagate_from_worker() {
        let cluster = Cluster::start(&ClusterSpec::new().with_job("w", 1));
        let dev = "/job:w/task:0/device:CPU:0";
        let a = api::scalar(1.0f32);
        let b = api::scalar(1i32);
        // dtype mismatch detected on the worker.
        assert!(cluster
            .execute(dev, "add", &[RemoteArg::from(&a), RemoteArg::from(&b)], Attrs::new())
            .is_err());
        // Unknown device.
        assert!(cluster
            .execute("/job:nope/task:0/device:CPU:0", "add", &[], Attrs::new())
            .is_err());
        // Unknown function.
        assert!(cluster.call_function(dev, "no_such_fn", &[]).is_err());
        cluster.shutdown();
    }

    #[test]
    fn data_parallel_workers() {
        // A miniature single-coordinator data-parallel step: each worker
        // computes a partial sum; the coordinator averages.
        let cluster = Cluster::start(&ClusterSpec::new().with_job("train", 3));
        let mut partials = Vec::new();
        for t in 0..3 {
            let shard = api::constant(vec![t as f32 + 1.0, 2.0 * (t as f32 + 1.0)], [2]).unwrap();
            let dev = format!("/job:train/task:{t}/device:CPU:0");
            let r = cluster
                .execute(
                    &dev,
                    "reduce_sum",
                    &[RemoteArg::from(&shard)],
                    Attrs::new().with("axes", Vec::<i64>::new()).with("keep_dims", false),
                )
                .unwrap();
            partials.push(r.into_iter().next().unwrap());
        }
        let values: Vec<f64> =
            partials.iter().map(|p| p.fetch().unwrap().scalar_f64().unwrap()).collect();
        assert_eq!(values, vec![3.0, 6.0, 9.0]);
        cluster.shutdown();
    }
}
