//! # tfe-core
//!
//! The multi-stage programming front-end — the primary contribution of
//! *TensorFlow Eager* (MLSys 2019). [`function`] is the `@tf.function`
//! analog: a JIT tracer that runs a host closure in a graph-building
//! context and returns a polymorphic callable backed by a trace cache
//! (§4.6), with:
//!
//! - binding-time analysis: tensors become placeholders, static values
//!   specialize the trace (Listing 6);
//! - lexical capture of closed-over tensors and by-reference capture of
//!   variables (Listing 7);
//! - composition via `call` nodes (Listing 8 / Figure 2);
//! - the state-creation contract (trace twice when variables are created);
//! - optional explicit input signatures (single trace, dynamic dims);
//! - staged backward passes: calling a graph function under a tape runs a
//!   forward variant returning intermediates, and its gradient invokes a
//!   backward graph function (§4.2);
//! - escape hatches: [`HostFunc`] (`py_func`) and [`init_scope`] (§4.7).
//!
//! ```
//! use tfe_core::{function1};
//! use tfe_runtime::api;
//! # fn main() -> Result<(), tfe_runtime::RuntimeError> {
//! let f = function1("double_relu", |x| api::relu(&api::add(x, x)?));
//! let y = f.call1(&api::constant(vec![-1.0f32, 2.0], [2])?)?;
//! assert_eq!(y.to_f64_vec()?, vec![0.0, 4.0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod arg;
mod call_grad;
mod control;
mod func;

pub use arg::{Arg, ArgKey, TensorSpec};
pub use call_grad::ForwardBundle;
pub use control::{cond, init_scope, while_loop, HostFunc};
pub use func::{
    function, function1, ConcreteFunction, Func, FuncStats, RetraceCause, RetraceEvent,
};

/// Wire up every registry this crate depends on (ops, kernels, gradients,
/// and the `call` gradient). Idempotent and cheap after the first call;
/// invoked automatically by the public entry points.
pub fn init() {
    tfe_runtime::context::ensure_init();
    tfe_autodiff::ensure_gradients();
    call_grad::register_call_gradient();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tfe_autodiff::GradientTape;
    use tfe_runtime::{api, Variable};
    use tfe_tensor::{DType, TensorData};

    #[test]
    fn staged_matches_eager() {
        let f = function1("poly", |x| {
            let x2 = api::mul(x, x)?;
            api::add(&x2, x)
        });
        let x = api::constant(vec![1.0f32, 2.0, 3.0], [3]).unwrap();
        let staged = f.call1(&x).unwrap();
        assert_eq!(staged.to_f64_vec().unwrap(), vec![2.0, 6.0, 12.0]);
        assert_eq!(f.num_concrete(), 1);
    }

    #[test]
    fn trace_cache_polymorphism() {
        let f = function1("id_relu", api::relu);
        // Same signature -> one trace; new shape/dtype -> new traces.
        f.call1(&api::zeros(DType::F32, [2])).unwrap();
        f.call1(&api::ones(DType::F32, [2])).unwrap();
        assert_eq!(f.num_concrete(), 1);
        f.call1(&api::zeros(DType::F32, [3])).unwrap();
        assert_eq!(f.num_concrete(), 2);
        f.call1(&api::zeros(DType::F64, [2])).unwrap();
        assert_eq!(f.num_concrete(), 3);
    }

    #[test]
    fn static_args_specialize_like_listing6() {
        // lossy_matmul(W, x, training): the bool is baked into the trace.
        let lossy = function("lossy", |args| {
            let w = args[0].as_tensor().unwrap();
            let x = args[1].as_tensor().unwrap();
            let training = args[2].as_bool().unwrap();
            let y = api::matmul(w, x)?;
            if training {
                api::dropout(&y, 0.5).map(|t| vec![t])
            } else {
                Ok(vec![y])
            }
        });
        let w = api::ones(DType::F32, [3, 5]);
        let x = api::ones(DType::F32, [5, 1]);
        lossy.call(&[Arg::from(&w), Arg::from(&x), Arg::from(true)]).unwrap();
        lossy.call(&[Arg::from(&w), Arg::from(&x), Arg::from(false)]).unwrap();
        // Two concrete functions, one per boolean value.
        assert_eq!(lossy.num_concrete(), 2);
        // The training=false one is deterministic ones*5.
        let out = lossy.call(&[Arg::from(&w), Arg::from(&x), Arg::from(false)]).unwrap();
        assert_eq!(out[0].to_f64_vec().unwrap(), vec![5.0, 5.0, 5.0]);
        assert_eq!(lossy.num_concrete(), 2); // cache hit
    }

    #[test]
    fn captures_closed_over_tensors() {
        let a = api::constant(vec![10.0f32, 20.0], [2]).unwrap();
        let f = {
            let a = a.clone();
            function1("captures", move |x| api::add(x, &a))
        };
        let y = f.call1(&api::constant(vec![1.0f32, 2.0], [2]).unwrap()).unwrap();
        assert_eq!(y.to_f64_vec().unwrap(), vec![11.0, 22.0]);
        let c = f.concrete_for(&[Arg::from(&api::zeros(DType::F32, [2]))]).unwrap();
        assert_eq!(c.captures.len(), 1);
        assert_eq!(c.function.num_captures, 1);
    }

    #[test]
    fn variables_mutated_by_reference_listing7() {
        let v = Variable::new(TensorData::scalar(0.0f32));
        let mutate = {
            let v = v.clone();
            function("mutate", move |_args| {
                let one = api::scalar(1.0f32);
                v.assign_add(&one)?;
                Ok(vec![v.read()?])
            })
        };
        let r = mutate.call(&[]).unwrap();
        assert_eq!(r[0].scalar_f64().unwrap(), 1.0);
        assert_eq!(v.peek().scalar_f64().unwrap(), 1.0);
        // Eager mutation interleaves with staged mutation.
        v.assign_add(&api::scalar(1.0f32)).unwrap();
        assert_eq!(v.peek().scalar_f64().unwrap(), 2.0);
        mutate.call(&[]).unwrap();
        assert_eq!(v.peek().scalar_f64().unwrap(), 3.0);
    }

    #[test]
    fn composition_creates_call_node_listing8() {
        let inner = function1("inner8", api::relu);
        let outer = {
            let inner = inner.clone();
            function("outer8", move |args| {
                let a = args[0].as_tensor().unwrap();
                let b = args[1].as_tensor().unwrap();
                let m = api::matmul(a, b)?;
                inner.call_tensors(&[&m])
            })
        };
        let eye = api::eye(DType::F32, 3).unwrap();
        let d =
            api::constant(vec![-1.0f32, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0], [3, 3]).unwrap();
        let out = outer.call_tensors(&[&eye, &d]).unwrap();
        assert_eq!(out[0].to_f64_vec().unwrap(), vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        // The outer graph contains a call node referencing the inner one.
        let c = outer
            .concrete_for(&[
                Arg::from(&api::zeros(DType::F32, [3, 3])),
                Arg::from(&api::zeros(DType::F32, [3, 3])),
            ])
            .unwrap();
        assert!(c.raw.nodes.iter().any(|n| n.op == "call"));
    }

    #[test]
    fn state_creation_contract() {
        use parking_lot::Mutex;
        // Creates a variable on every call: must fail the second-trace rule.
        let created: Arc<Mutex<Vec<Variable>>> = Arc::new(Mutex::new(Vec::new()));
        let bad = {
            let created = created.clone();
            function("bad_state", move |_args| {
                let v = Variable::new(TensorData::scalar(1.0f32));
                let out = v.read()?;
                created.lock().push(v);
                Ok(vec![out])
            })
        };
        assert!(bad.call(&[]).is_err());

        // Creates state only on the first call: traced twice, then cached.
        let slot: Arc<Mutex<Option<Variable>>> = Arc::new(Mutex::new(None));
        let good = {
            let slot = slot.clone();
            function("good_state", move |_args| {
                let mut guard = slot.lock();
                if guard.is_none() {
                    *guard = Some(Variable::new(TensorData::scalar(5.0f32)));
                }
                guard.as_ref().unwrap().read().map(|t| vec![t])
            })
        };
        let out = good.call(&[]).unwrap();
        assert_eq!(out[0].scalar_f64().unwrap(), 5.0);
        let out = good.call(&[]).unwrap();
        assert_eq!(out[0].scalar_f64().unwrap(), 5.0);
    }

    #[test]
    fn host_rng_baked_vs_op_rng() {
        // §4.1 `add_noise`: host randomness becomes a constant in the trace;
        // op randomness stays random.
        use rand::{Rng, SeedableRng};
        let host_noise = {
            let rng = parking_lot::Mutex::new(rand::rngs::StdRng::seed_from_u64(1));
            function("host_noise", move |_args| {
                let eye = api::eye(DType::F64, 2)?;
                let n: f64 = rng.lock().gen();
                let noise = api::scalar(n);
                Ok(vec![api::add(&eye, &noise)?])
            })
        };
        let a = host_noise.call(&[]).unwrap()[0].to_f64_vec().unwrap();
        let b = host_noise.call(&[]).unwrap()[0].to_f64_vec().unwrap();
        assert_eq!(a, b); // baked in

        let op_noise = function("op_noise", |_args| {
            let eye = api::eye(DType::F64, 2)?;
            let noise = api::random_normal(DType::F64, tfe_tensor::Shape::from([2, 2]), 0.0, 1.0)?;
            Ok(vec![api::add(&eye, &noise)?])
        });
        let a = op_noise.call(&[]).unwrap()[0].to_f64_vec().unwrap();
        let b = op_noise.call(&[]).unwrap()[0].to_f64_vec().unwrap();
        assert_ne!(a, b); // stays an op
    }

    #[test]
    fn gradient_through_staged_call() {
        let f = function1("sq", |x| api::mul(x, x));
        let x = api::scalar(3.0f64);
        let tape = GradientTape::new();
        tape.watch(&x);
        let y = f.call1(&x).unwrap();
        assert_eq!(y.scalar_f64().unwrap(), 9.0);
        let g = tape.gradient1(&y, &x).unwrap();
        assert_eq!(g.scalar_f64().unwrap(), 6.0);
    }

    #[test]
    fn gradient_through_staged_call_with_variable() {
        let v = Variable::new(TensorData::scalar(4.0f64));
        let f = {
            let v = v.clone();
            function("vsq", move |args| {
                let x = args[0].as_tensor().unwrap();
                let val = v.read()?;
                Ok(vec![api::mul(&api::mul(&val, &val)?, x)?]) // v^2 * x
            })
        };
        let x = api::scalar(2.0f64);
        let tape = GradientTape::new();
        tape.watch(&x);
        let y = f.call1(&x).unwrap();
        assert_eq!(y.scalar_f64().unwrap(), 32.0);
        let grads = tape.gradient_vars(&y, &[&v]).unwrap();
        // d(v^2 x)/dv = 2vx = 16
        assert_eq!(grads[0].clone().unwrap().scalar_f64().unwrap(), 16.0);
    }

    #[test]
    fn second_order_through_staged_call() {
        let f = function1("cube", |x| {
            let x2 = api::mul(x, x)?;
            api::mul(&x2, x)
        });
        let x = api::scalar(2.0f64);
        let t1 = GradientTape::new();
        t1.watch(&x);
        let t2 = GradientTape::new();
        t2.watch(&x);
        let y = f.call1(&x).unwrap(); // 8
        let d1 = t2.gradient1(&y, &x).unwrap(); // 3x^2 = 12
        let d2 = t1.gradient1(&d1, &x).unwrap(); // 6x = 12
        assert_eq!(d1.scalar_f64().unwrap(), 12.0);
        assert_eq!(d2.scalar_f64().unwrap(), 12.0);
    }

    #[test]
    fn input_signature_dynamic_batch() {
        let f = function1("batchy", |x| api::reduce_sum(x, &[1], false))
            .with_input_signature(vec![TensorSpec::new(DType::F32, vec![None, Some(3)])]);
        let a = api::ones(DType::F32, [2, 3]);
        let b = api::ones(DType::F32, [7, 3]);
        assert_eq!(f.call1(&a).unwrap().to_f64_vec().unwrap(), vec![3.0, 3.0]);
        assert_eq!(f.call1(&b).unwrap().to_f64_vec().unwrap(), vec![3.0; 7]);
        // One trace handled both batch sizes.
        assert_eq!(f.num_concrete(), 1);
        // Mismatched signature rejected.
        let c = api::ones(DType::F32, [2, 4]);
        assert!(f.call1(&c).is_err());
    }

    #[test]
    fn cond_picks_branch_dynamically() {
        let then_f = function1("then_b", |x| api::mul(x, &api::scalar(2.0f64)));
        let else_f = function1("else_b", api::neg);
        let x = api::scalar(5.0f64);
        let t = cond(&api::scalar(true), &then_f, &else_f, &[&x]).unwrap();
        assert_eq!(t[0].scalar_f64().unwrap(), 10.0);
        let e = cond(&api::scalar(false), &then_f, &else_f, &[&x]).unwrap();
        assert_eq!(e[0].scalar_f64().unwrap(), -5.0);
    }

    #[test]
    fn while_loop_runs_to_fixpoint() {
        // state = (i, acc): while i < 5 { acc *= 2; i += 1 }
        let cond_f = function("wcond", |args| {
            let i = args[0].as_tensor().unwrap();
            Ok(vec![api::less(i, &api::scalar(5.0f64))?])
        });
        let body_f = function("wbody", |args| {
            let i = args[0].as_tensor().unwrap();
            let acc = args[1].as_tensor().unwrap();
            Ok(vec![api::add(i, &api::scalar(1.0f64))?, api::mul(acc, &api::scalar(2.0f64))?])
        });
        let out =
            while_loop(&cond_f, &body_f, &[&api::scalar(0.0f64), &api::scalar(1.0f64)]).unwrap();
        assert_eq!(out[0].scalar_f64().unwrap(), 5.0);
        assert_eq!(out[1].scalar_f64().unwrap(), 32.0);
    }

    #[test]
    fn host_func_escapes_trace() {
        // A data-dependent host computation embedded in a staged function.
        let host = HostFunc::new(
            |xs| {
                // Arbitrary host logic: recursive halving count (not
                // expressible as a fixed graph without tf.while).
                let v = xs[0].scalar_f64()?;
                fn halvings(x: f64) -> f64 {
                    if x.abs() < 1.0 {
                        0.0
                    } else {
                        1.0 + halvings(x / 2.0)
                    }
                }
                Ok(vec![api::scalar(halvings(v))])
            },
            vec![(DType::F64, tfe_ops::SymShape::scalar())],
        );
        let f = {
            let host = host.clone();
            function1("hosty", move |x| {
                let doubled = api::mul(x, &api::scalar(2.0f64))?;
                Ok(host.call(&[&doubled])?.remove(0))
            })
        };
        let y = f.call1(&api::scalar(8.0f64)).unwrap();
        assert_eq!(y.scalar_f64().unwrap(), 5.0); // halvings(16) = 5
        let y = f.call1(&api::scalar(1.0f64)).unwrap();
        assert_eq!(y.scalar_f64().unwrap(), 2.0); // halvings(2) = 2
    }

    #[test]
    fn init_scope_escapes_to_eager() {
        let f = function1("scoped", |x| {
            // Inside the trace, jump out and compute something eagerly.
            let host_value = init_scope(|| {
                assert!(!tfe_runtime::context::is_tracing());
                21.0
            });
            api::mul(x, &api::scalar(host_value))
        });
        let y = f.call1(&api::scalar(2.0f64)).unwrap();
        assert_eq!(y.scalar_f64().unwrap(), 42.0);
    }

    #[test]
    fn optimizer_prunes_dead_work() {
        let f = function1("deadwork", |x| {
            let _dead = api::exp(x)?; // unused, stateless -> pruned
            api::relu(x)
        });
        let c = f.concrete_for(&[Arg::from(&api::zeros(DType::F32, [4]))]).unwrap();
        assert_eq!(c.raw.executable_node_count(), 2);
        assert_eq!(c.function.executable_node_count(), 1);
    }

    #[test]
    fn device_is_part_of_cache_key() {
        tfe_runtime::context::device_manager()
            .register(tfe_device::Device::simulated(
                tfe_device::DeviceName::local(tfe_device::DeviceType::Gpu, 7),
                tfe_device::profiles::gtx1080(),
                tfe_device::KernelMode::Simulated,
            ))
            .ok();
        let f = function1("devkey", api::relu);
        f.call1(&api::zeros(DType::F32, [2])).unwrap();
        assert_eq!(f.num_concrete(), 1);
        tfe_runtime::context::with_device("/gpu:7", || {
            f.call1(&api::zeros(DType::F32, [2])).unwrap();
        })
        .unwrap();
        assert_eq!(f.num_concrete(), 2);
    }
}

#[cfg(test)]
mod control_gradient_tests {
    use super::*;
    use tfe_autodiff::GradientTape;
    use tfe_runtime::api;

    #[test]
    fn cond_gradient_follows_taken_branch() {
        // y = if x > 0 { x^2 } else { -3x }; dy/dx is branch-dependent.
        let then_f = function1("cg_then", |x| api::mul(x, x));
        let else_f = function1("cg_else", |x| api::mul(x, &api::scalar(-3.0f64)));

        for (input, expect) in [(4.0f64, 8.0), (-2.0, -3.0)] {
            let x = api::scalar(input);
            let tape = GradientTape::new();
            tape.watch(&x);
            let pred = api::greater(&x, &api::scalar(0.0f64)).unwrap();
            let y = cond(&pred, &then_f, &else_f, &[&x]).unwrap().remove(0);
            let g = tape.gradient1(&y, &x).unwrap();
            assert_eq!(g.scalar_f64().unwrap(), expect, "at x={input}");
        }
    }

    #[test]
    fn cond_gradient_multi_arg() {
        // z = if p { a*b } else { a+b }
        let then_f = function("cgm_then", |args| {
            let a = args[0].as_tensor().unwrap();
            let b = args[1].as_tensor().unwrap();
            Ok(vec![api::mul(a, b)?])
        });
        let else_f = function("cgm_else", |args| {
            let a = args[0].as_tensor().unwrap();
            let b = args[1].as_tensor().unwrap();
            Ok(vec![api::add(a, b)?])
        });
        let a = api::scalar(3.0f64);
        let b = api::scalar(5.0f64);
        let tape = GradientTape::new();
        tape.watch(&a);
        tape.watch(&b);
        let z = cond(&api::scalar(true), &then_f, &else_f, &[&a, &b]).unwrap().remove(0);
        let grads = tape.gradient(&z, &[&a, &b]).unwrap();
        assert_eq!(grads[0].clone().unwrap().scalar_f64().unwrap(), 5.0); // d(ab)/da = b
        assert_eq!(grads[1].clone().unwrap().scalar_f64().unwrap(), 3.0);
    }

    #[test]
    fn while_gradient_reports_unsupported() {
        let cond_f = function("wg_cond", |args| {
            let i = args[0].as_tensor().unwrap();
            Ok(vec![api::less(i, &api::scalar(3.0f64))?])
        });
        let body_f = function("wg_body", |args| {
            let i = args[0].as_tensor().unwrap();
            Ok(vec![api::mul(i, &api::scalar(2.0f64))?])
        });
        let x = api::scalar(1.0f64);
        let tape = GradientTape::new();
        tape.watch(&x);
        let out = while_loop(&cond_f, &body_f, &[&x]).unwrap().remove(0);
        let err = tape.gradient1(&out, &x).unwrap_err();
        assert!(err.to_string().contains("while_loop"), "{err}");
    }
}
