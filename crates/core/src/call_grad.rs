//! Gradients *through* staged calls (§4.2's tape/staging integration).
//!
//! When a graph function is called while a tape is active, the runtime
//! executes a **forward** variant that additionally returns every
//! intermediate value; differentiating the call then invokes a **backward**
//! graph function built once per concrete function, whose inputs are those
//! intermediates plus the output gradients. This reproduces the paper's
//! guarantee that staging or unstaging a computation does not change the
//! amount of work in its backward pass, and that "if a computation was
//! staged in the forward pass, its corresponding backward pass will also be
//! staged".

use crate::func::ConcreteFunction;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use tfe_autodiff::GradCtx;
use tfe_graph::{GraphFunction, NodeId, TensorRef};
use tfe_ops::Attrs;
use tfe_runtime::{context, Result, RuntimeError, TapeRecord, Tensor};
use tfe_tensor::TensorData;

/// The lazily-built forward-with-intermediates / backward pair for one
/// concrete function.
#[derive(Debug)]
pub struct ForwardBundle {
    /// Library name of the forward variant returning `n_primary` outputs
    /// followed by every intermediate value.
    pub fwd_name: String,
    /// Library name of the backward function. Its inputs are the
    /// intermediates (in `fwd` output order) followed by one gradient per
    /// primary output, then any captures of the backward graph itself; its
    /// outputs are one gradient per forward input followed by one per
    /// referenced variable id.
    pub bwd_name: String,
    /// User-visible output count of the original function.
    pub n_primary: usize,
    /// Inputs (args + captures) of the forward function.
    pub n_forward_inputs: usize,
    /// Variables referenced by the forward graph.
    pub var_ids: Vec<i64>,
    /// Captures of the backward graph (values to append when calling it).
    pub bwd_captures: Vec<Tensor>,
}

fn concretes() -> &'static RwLock<HashMap<String, Arc<ConcreteFunction>>> {
    static C: std::sync::OnceLock<RwLock<HashMap<String, Arc<ConcreteFunction>>>> =
        std::sync::OnceLock::new();
    C.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Index a concrete function under its inference name (and later its
/// forward name), so the `call` gradient can find it.
pub fn register_concrete(c: &Arc<ConcreteFunction>) {
    concretes().write().insert(c.name.clone(), c.clone());
}

fn lookup_concrete(name: &str) -> Option<Arc<ConcreteFunction>> {
    concretes().read().get(name).cloned()
}

/// All intermediate tensor refs of a graph: every output of every node (in
/// node order). Placeholder outputs are included — gradient functions need
/// the forward *inputs* too.
fn all_refs(f: &GraphFunction) -> Vec<TensorRef> {
    let mut out = Vec::new();
    for (i, node) in f.nodes.iter().enumerate() {
        for o in 0..node.outputs.len() {
            out.push(TensorRef { node: NodeId(i), output: o });
        }
    }
    out
}

/// Build the forward/backward pair for `conc`. Called once per concrete
/// function, lazily, from [`ConcreteFunction::forward_bundle`].
///
/// # Errors
/// Missing gradients for ops inside the traced function, or trace errors.
pub fn build_bundle(conc: &Arc<ConcreteFunction>) -> Result<ForwardBundle> {
    let raw = &conc.raw;
    let intermediates = all_refs(raw);

    // ---- forward-with-intermediates --------------------------------------
    let fwd_name = format!("{}__fwd", conc.name);
    let mut fwd_outputs = raw.outputs.clone();
    fwd_outputs.extend(intermediates.iter().copied());
    let fwd = GraphFunction {
        name: fwd_name.clone(),
        nodes: raw.nodes.clone(),
        inputs: raw.inputs.clone(),
        outputs: fwd_outputs,
        num_captures: raw.num_captures,
        constants: raw.constants.clone(),
    };
    context::library().insert(fwd);
    // The gradient function looks concretes up by the *forward* name too.
    concretes().write().insert(fwd_name.clone(), conc.clone());

    // ---- backward ----------------------------------------------------------
    let bwd_name = format!("{}__bwd", conc.name);
    let frame_id = context::begin_tracing(&bwd_name);
    let built = (|| -> Result<Vec<Tensor>> {
        // Placeholders for every intermediate value, then output grads.
        let mut value_of: HashMap<TensorRef, Tensor> = HashMap::new();
        for &tref in &intermediates {
            let (dt, sh) = raw.sig(tref);
            value_of.insert(tref, context::tracing_placeholder(dt, sh)?);
        }
        // One incoming-gradient placeholder per *forward-variant* output:
        // the primary outputs first, then every intermediate. Higher-order
        // differentiation sends gradients into intermediates too.
        let mut fwd_out_refs = raw.outputs.clone();
        fwd_out_refs.extend(intermediates.iter().copied());
        let mut dys = Vec::with_capacity(fwd_out_refs.len());
        for &out in &fwd_out_refs {
            let (dt, sh) = raw.sig(out);
            dys.push(context::tracing_placeholder(dt, sh)?);
        }

        // Synthetic tape records mirroring the forward graph.
        let mut records: Vec<TapeRecord> = Vec::new();
        for (i, node) in raw.nodes.iter().enumerate() {
            if node.op == "placeholder" || node.op == "const" || node.outputs.is_empty() {
                continue;
            }
            let inputs: Vec<Tensor> = node.inputs.iter().map(|t| value_of[t].clone()).collect();
            let outputs: Vec<Tensor> = (0..node.outputs.len())
                .map(|o| value_of[&TensorRef { node: NodeId(i), output: o }].clone())
                .collect();
            let mut input_ids: Vec<u64> = if node.op == "read_variable" {
                vec![node.attrs.int("var_id").map_err(tfe_ops::OpError::from)? as u64]
            } else {
                inputs.iter().map(Tensor::id).collect()
            };
            if node.op == "call" {
                if let Ok(vids) = node.attrs.int_list("var_ids") {
                    input_ids.extend(vids.iter().map(|&v| v as u64));
                }
            }
            let output_ids = outputs.iter().map(Tensor::id).collect();
            records.push(TapeRecord {
                op: node.op.clone(),
                attrs: node.attrs.clone(),
                inputs,
                outputs,
                input_ids,
                output_ids,
            });
        }

        // Seeds: dy per forward-variant output (summing if a ref repeats).
        let mut seeds: HashMap<u64, Tensor> = HashMap::new();
        for (out, dy) in fwd_out_refs.iter().zip(&dys) {
            let id = value_of[out].id();
            match seeds.remove(&id) {
                Some(existing) => {
                    seeds.insert(id, tfe_runtime::api::add(&existing, dy)?);
                }
                None => {
                    seeds.insert(id, dy.clone());
                }
            }
        }

        let grads = tfe_autodiff::accumulate_many(&records, seeds)?;

        // Outputs: d/d(input) for each forward input, then d/d(var).
        let mut outs: Vec<Tensor> = Vec::new();
        for &input_node in &raw.inputs {
            let ph = &value_of[&TensorRef::first(input_node)];
            match grads.get(&ph.id()) {
                Some(g) => outs.push(g.clone()),
                None => {
                    outs.push(
                        context::execute("zeros_like", std::slice::from_ref(ph), Attrs::new())?
                            .remove(0),
                    );
                }
            }
        }
        for &vid in &conc.var_ids {
            match grads.get(&(vid as u64)) {
                Some(g) => outs.push(g.clone()),
                None => {
                    let storage = tfe_runtime::variable_registry().resolve(vid as u64)?;
                    outs.push(tfe_runtime::api::constant_data(TensorData::zeros(
                        storage.dtype,
                        storage.shape.clone(),
                    )));
                }
            }
        }
        // Everything must be a node of this frame.
        outs.into_iter()
            .map(|t| match &t {
                Tensor::Symbolic(s) if s.frame_id == frame_id => Ok(t),
                _ => Ok(context::execute("identity", &[t], Attrs::new())?.remove(0)),
            })
            .collect()
    })();
    let finished = context::end_tracing()?;
    let outs = built?;
    let out_refs: Vec<TensorRef> = outs
        .iter()
        .map(|t| {
            t.as_symbolic()
                .map(|s| s.tref)
                .ok_or_else(|| RuntimeError::Internal("non-symbolic backward output".into()))
        })
        .collect::<Result<_>>()?;
    let bwd_raw = finished.builder.finish(out_refs, finished.captures.len());
    // The backward pass is staged too: optimize it like any graph function.
    let evaluator = |node: &tfe_graph::Node,
                     inputs: &[Arc<TensorData>]|
     -> std::result::Result<Vec<TensorData>, String> {
        tfe_runtime::kernels::run_kernel(&node.op, &node.attrs, inputs).map_err(|e| e.to_string())
    };
    let (bwd_opt, bwd_stats) = tfe_graph::passes::optimize_with_stats(
        &bwd_raw,
        &tfe_graph::passes::OptimizeOptions::default(),
        Some(&evaluator),
    );
    let bwd_fn = context::library().insert(bwd_opt);

    // Register the backward pass as a concrete function of its own, so an
    // outer tape can differentiate *it* — higher-order gradients through
    // staged calls (§4.2's composable tapes).
    let bwd_concrete = Arc::new(ConcreteFunction {
        name: bwd_name.clone(),
        function: bwd_fn,
        raw: Arc::new(bwd_raw),
        captures: finished.captures.clone(),
        // Backward graphs reference no variables of their own (they consume
        // placeholders and constants only).
        var_ids: Vec::new(),
        stateful: false,
        n_primary: outs.len(),
        opt_stats: bwd_stats,
        forward: std::sync::OnceLock::new(),
    });
    register_concrete(&bwd_concrete);

    Ok(ForwardBundle {
        fwd_name,
        bwd_name,
        n_primary: conc.n_primary,
        n_forward_inputs: raw.inputs.len(),
        var_ids: conc.var_ids.clone(),
        bwd_captures: finished.captures,
    })
}

/// The gradient of the `call` operation: invoke the backward graph function
/// with the forward intermediates and the output gradients.
fn call_gradient(c: &GradCtx) -> Result<Vec<Option<Tensor>>> {
    let fname = c.attrs().str("function").map_err(tfe_ops::OpError::from)?;
    let conc = lookup_concrete(fname).ok_or_else(|| {
        RuntimeError::Unsupported(format!(
            "cannot differentiate a call to `{fname}`: it was not created via tfe_core::function"
        ))
    })?;
    let bundle = conc.forward_bundle()?;

    let intermediates: Vec<Tensor> = if fname == bundle.fwd_name {
        // The forward-with-intermediates ran; values are on the record.
        c.record.outputs[bundle.n_primary..].to_vec()
    } else {
        // Fallback: the inference variant ran (no tape was detected at call
        // time). Re-execute the forward to materialize intermediates.
        let fwd = context::library()
            .get(&bundle.fwd_name)
            .ok_or_else(|| RuntimeError::UnknownFunction(bundle.fwd_name.clone()))?;
        let attrs = ConcreteFunction::call_attrs(&fwd, conc.stateful, &bundle.var_ids);
        let outs = context::execute("call", &c.record.inputs, attrs)?;
        outs[bundle.n_primary..].to_vec()
    };

    let mut bwd_inputs = intermediates.clone();
    if fname == bundle.fwd_name {
        // Gradients for every forward-variant output, intermediates too.
        bwd_inputs.extend(c.output_grads.iter().cloned());
    } else {
        bwd_inputs.extend(c.output_grads[..bundle.n_primary].iter().cloned());
        for t in &intermediates {
            bwd_inputs.push(
                context::execute("zeros_like", std::slice::from_ref(t), Attrs::new())?.remove(0),
            );
        }
    }
    bwd_inputs.extend(bundle.bwd_captures.iter().cloned());
    let bwd = context::library()
        .get(&bundle.bwd_name)
        .ok_or_else(|| RuntimeError::UnknownFunction(bundle.bwd_name.clone()))?;
    let attrs = ConcreteFunction::call_attrs(&bwd, false, &[]);
    let grads = context::execute("call", &bwd_inputs, attrs)?;
    if grads.len() != bundle.n_forward_inputs + bundle.var_ids.len() {
        return Err(RuntimeError::Internal(format!(
            "backward of `{fname}` returned {} gradients, expected {}",
            grads.len(),
            bundle.n_forward_inputs + bundle.var_ids.len()
        )));
    }
    Ok(grads.into_iter().map(Some).collect())
}

/// The gradient of `cond`: differentiate the branch that actually ran.
///
/// Requires a concrete (eager) predicate — when the `cond` itself was
/// recorded symbolically (inside another trace) the taken branch is not
/// knowable at gradient-construction time, and we return a documented
/// `Unsupported` error (DESIGN.md §7).
fn cond_gradient(c: &GradCtx) -> Result<Vec<Option<Tensor>>> {
    let pred = c
        .record
        .inputs
        .first()
        .ok_or_else(|| RuntimeError::Internal("cond record without predicate".into()))?;
    let Ok(pred_value) = pred.scalar_f64() else {
        return Err(RuntimeError::Unsupported(
            "gradient of a `cond` traced inside another function (symbolic predicate)".to_string(),
        ));
    };
    let branch_attr = if pred_value != 0.0 { "then_fn" } else { "else_fn" };
    let branch = c.attrs().str(branch_attr).map_err(tfe_ops::OpError::from)?;
    let conc = lookup_concrete(branch).ok_or_else(|| {
        RuntimeError::Unsupported(format!(
            "cannot differentiate cond branch `{branch}`: not created via tfe_core::function"
        ))
    })?;
    let bundle = conc.forward_bundle()?;

    // Recompute the branch with intermediates (the cond executed the plain
    // branch function, so the record has no intermediates of its own).
    let fwd = context::library()
        .get(&bundle.fwd_name)
        .ok_or_else(|| RuntimeError::UnknownFunction(bundle.fwd_name.clone()))?;
    let attrs = ConcreteFunction::call_attrs(&fwd, conc.stateful, &bundle.var_ids);
    let branch_args = &c.record.inputs[1..];
    let outs = context::execute("call", branch_args, attrs)?;
    let intermediates = outs[bundle.n_primary..].to_vec();

    let mut bwd_inputs = intermediates.clone();
    bwd_inputs.extend(c.output_grads[..bundle.n_primary].iter().cloned());
    for t in &intermediates {
        bwd_inputs
            .push(context::execute("zeros_like", std::slice::from_ref(t), Attrs::new())?.remove(0));
    }
    bwd_inputs.extend(bundle.bwd_captures.iter().cloned());
    let bwd = context::library()
        .get(&bundle.bwd_name)
        .ok_or_else(|| RuntimeError::UnknownFunction(bundle.bwd_name.clone()))?;
    let attrs = ConcreteFunction::call_attrs(&bwd, false, &[]);
    let grads = context::execute("call", &bwd_inputs, attrs)?;
    // Slots: predicate (None), then one per branch argument.
    let mut out: Vec<Option<Tensor>> = vec![None];
    out.extend(grads.into_iter().take(branch_args.len()).map(Some));
    // If the branch had captures, their gradients are dropped (captures are
    // not cond inputs); pad to the record's input arity.
    while out.len() < c.record.input_ids.len() {
        out.push(None);
    }
    Ok(out)
}

/// Register the `call` and `cond` gradients with the autodiff registry
/// (idempotent).
pub fn register_call_gradient() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        tfe_autodiff::register_gradient("call", call_gradient);
        tfe_autodiff::register_gradient("cond", cond_gradient);
        tfe_autodiff::register_gradient("while_loop", |_c| {
            Err(RuntimeError::Unsupported(
                "the gradient of while_loop is not implemented (documented limitation,                  DESIGN.md §7); rewrite the loop body as a host loop over a staged step"
                    .to_string(),
            ))
        });
    });
}
