//! Functional control flow (`tf.cond` / `tf.while_loop`) and the escape
//! hatches of §4.7 (`host_func` ≈ `py_func`, `init_scope`).

use crate::arg::Arg;
use crate::func::{ConcreteFunction, Func};
use std::sync::Arc;
use tfe_ops::{Attrs, SymShape};
use tfe_runtime::{context, Result, RuntimeError, Tensor};
use tfe_tensor::DType;

/// Tensor-dependent conditional: executes `then_fn(args)` when the scalar
/// bool `pred` is true, else `else_fn(args)` — usable inside traces, where
/// a host `if` would be baked in at trace time (§4.1).
///
/// # Errors
/// Branch signature mismatches or execution failures.
pub fn cond(
    pred: &Tensor,
    then_fn: &Func,
    else_fn: &Func,
    args: &[&Tensor],
) -> Result<Vec<Tensor>> {
    crate::init();
    let arg_list: Vec<Arg> = args.iter().map(|&t| Arg::from(t)).collect();
    let t = then_fn.concrete_for(&arg_list)?;
    let e = else_fn.concrete_for(&arg_list)?;
    if t.captures.len() + e.captures.len() > 0 {
        return Err(RuntimeError::Unsupported(
            "cond branches may not capture outer tensors (pass them as arguments)".to_string(),
        ));
    }
    let t_sig = t.function.output_sigs();
    let e_sig = e.function.output_sigs();
    if t_sig.len() != e_sig.len()
        || t_sig.iter().zip(&e_sig).any(|(a, b)| a.0 != b.0 || !a.1.compatible_with(&b.1))
    {
        return Err(RuntimeError::Internal(format!(
            "cond branches disagree on output signatures: {t_sig:?} vs {e_sig:?}"
        )));
    }
    let (d, s) = tfe_ops::catalog::encode_sig(&t_sig);
    let stateful = t.stateful || e.stateful;
    let mut inputs = vec![pred.clone()];
    inputs.extend(args.iter().map(|&t| t.clone()));
    context::execute(
        "cond",
        &inputs,
        Attrs::new()
            .with("then_fn", t.name.clone())
            .with("else_fn", e.name.clone())
            .with("out_dtypes", d)
            .with("out_shapes", s)
            .with("stateful", stateful),
    )
}

/// Tensor-dependent loop: repeats `body(state)` while `cond(state)` yields
/// a true scalar — the `tf.while_loop` analog for loops whose trip count
/// depends on tensor values (§4.1).
///
/// The gradient of `while_loop` is a documented limitation (DESIGN.md §7).
///
/// # Errors
/// Signature mismatches between `body` outputs and the loop state, capture
/// restrictions, or execution failures.
pub fn while_loop(cond_fn: &Func, body_fn: &Func, init: &[&Tensor]) -> Result<Vec<Tensor>> {
    crate::init();
    let arg_list: Vec<Arg> = init.iter().map(|&t| Arg::from(t)).collect();
    let c = cond_fn.concrete_for(&arg_list)?;
    let b = body_fn.concrete_for(&arg_list)?;
    if c.captures.len() + b.captures.len() > 0 {
        return Err(RuntimeError::Unsupported(
            "while_loop functions may not capture outer tensors (pass them as loop state)"
                .to_string(),
        ));
    }
    let c_sig = c.function.output_sigs();
    if c_sig.len() != 1 || c_sig[0].0 != DType::Bool {
        return Err(RuntimeError::Internal(
            "while_loop condition must return a single bool".to_string(),
        ));
    }
    let state_sig: Vec<(DType, SymShape)> =
        init.iter().map(|t| (t.dtype(), t.sym_shape())).collect();
    let b_sig = b.function.output_sigs();
    if b_sig.len() != state_sig.len()
        || b_sig.iter().zip(&state_sig).any(|(a, s)| a.0 != s.0 || !a.1.compatible_with(&s.1))
    {
        return Err(RuntimeError::Internal(format!(
            "while_loop body must map the state to itself: {b_sig:?} vs {state_sig:?}"
        )));
    }
    let inputs: Vec<Tensor> = init.iter().map(|&t| t.clone()).collect();
    context::execute(
        "while_loop",
        &inputs,
        Attrs::new()
            .with("cond_fn", c.name.clone())
            .with("body_fn", b.name.clone())
            .with("stateful", c.stateful || b.stateful),
    )
}

/// A host closure embeddable in staged computations — the `py_func` analog
/// (§4.7). Imperatively it is pass-through; inside a graph it becomes a
/// `host_func` node that jumps back into the imperative runtime, and it is
/// differentiable (the gradient re-runs the closure under a tape).
#[derive(Clone)]
pub struct HostFunc {
    id: u64,
    out_sig: Vec<(DType, SymShape)>,
}

impl HostFunc {
    /// Register a closure with a declared output signature.
    pub fn new(
        f: impl Fn(&[Tensor]) -> Result<Vec<Tensor>> + Send + Sync + 'static,
        out_sig: Vec<(DType, SymShape)>,
    ) -> HostFunc {
        crate::init();
        let id = context::register_host_fn(Arc::new(f));
        HostFunc { id, out_sig }
    }

    /// The registered host-function id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Invoke (directly when eager; as a graph node when tracing).
    ///
    /// # Errors
    /// Closure failures or signature problems.
    pub fn call(&self, args: &[&Tensor]) -> Result<Vec<Tensor>> {
        let (d, s) = tfe_ops::catalog::encode_sig(&self.out_sig);
        let inputs: Vec<Tensor> = args.iter().map(|&t| t.clone()).collect();
        context::execute(
            "host_func",
            &inputs,
            Attrs::new().with("fn_id", self.id as i64).with("out_dtypes", d).with("out_shapes", s),
        )
    }
}

impl std::fmt::Debug for HostFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HostFunc(id={}, {} outputs)", self.id, self.out_sig.len())
    }
}

/// Pause any in-progress traces and run `f` imperatively (`tf.init_scope`,
/// §4.7). Most users never need this; `function` uses it internally for the
/// state-creation contract.
pub fn init_scope<R>(f: impl FnOnce() -> R) -> R {
    context::init_scope(f)
}

/// Convenience re-export point used by `cond`/`while_loop` helpers.
pub(crate) fn _concrete_name(c: &Arc<ConcreteFunction>) -> &str {
    &c.name
}
