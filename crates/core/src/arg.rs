//! Arguments to polymorphic functions and the binding-time analysis that
//! turns them into trace-cache keys (§4.6).
//!
//! Tensors are *dynamic*: they become graph placeholders and are abstracted
//! to (dtype, shape) in the cache key. Everything else is *static*: the
//! value itself parameterizes the trace and is part of the key — this is
//! how `lossy_matmul(..., training=True)` and `training=False` become two
//! different graph functions in Listing 6.

use tfe_ops::SymShape;
use tfe_runtime::{Tensor, Variable};
use tfe_tensor::DType;

/// One argument to a [`Func`](crate::Func).
#[derive(Debug, Clone)]
pub enum Arg {
    /// A dynamic tensor argument (becomes a placeholder while tracing).
    Tensor(Tensor),
    /// Static integer.
    Int(i64),
    /// Static float.
    Float(f64),
    /// Static boolean.
    Bool(bool),
    /// Static string.
    Str(String),
    /// A variable, keyed by *identity*: passing a different variable object
    /// retraces, but mutating the same variable's value does not (§4.6 —
    /// traced functions capture variables by reference).
    Var(Variable),
}

impl Arg {
    /// The tensor payload, if dynamic.
    pub fn as_tensor(&self) -> Option<&Tensor> {
        match self {
            Arg::Tensor(t) => Some(t),
            _ => None,
        }
    }

    /// Static bool payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Arg::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Static int payload.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Arg::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Static float payload (accepts ints).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Arg::Float(f) => Some(*f),
            Arg::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Static string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Arg::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The variable payload, if any.
    pub fn as_variable(&self) -> Option<&Variable> {
        match self {
            Arg::Var(v) => Some(v),
            _ => None,
        }
    }

    /// The cache-key component for this argument (binding-time analysis).
    pub fn key(&self) -> ArgKey {
        match self {
            Arg::Tensor(t) => {
                ArgKey::Tensor { dtype: t.dtype(), dims: t.sym_shape().dims().to_vec() }
            }
            Arg::Int(v) => ArgKey::Int(*v),
            Arg::Float(v) => ArgKey::Float(v.to_bits()),
            Arg::Bool(v) => ArgKey::Bool(*v),
            Arg::Str(v) => ArgKey::Str(v.clone()),
            Arg::Var(v) => ArgKey::Var(v.id()),
        }
    }
}

impl From<Tensor> for Arg {
    fn from(t: Tensor) -> Arg {
        Arg::Tensor(t)
    }
}

impl From<&Tensor> for Arg {
    fn from(t: &Tensor) -> Arg {
        Arg::Tensor(t.clone())
    }
}

impl From<i64> for Arg {
    fn from(v: i64) -> Arg {
        Arg::Int(v)
    }
}

impl From<f64> for Arg {
    fn from(v: f64) -> Arg {
        Arg::Float(v)
    }
}

impl From<bool> for Arg {
    fn from(v: bool) -> Arg {
        Arg::Bool(v)
    }
}

impl From<&str> for Arg {
    fn from(v: &str) -> Arg {
        Arg::Str(v.to_string())
    }
}

impl From<&Variable> for Arg {
    fn from(v: &Variable) -> Arg {
        Arg::Var(v.clone())
    }
}

impl From<Variable> for Arg {
    fn from(v: Variable) -> Arg {
        Arg::Var(v)
    }
}

/// The abstracted form of one argument inside a trace-cache key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ArgKey {
    /// Tensors are keyed by dtype and shape only — the "abstract types" of
    /// §4.6's input-signature inference.
    Tensor {
        /// Element type.
        dtype: DType,
        /// Shape (None dims only under an explicit input signature).
        dims: Vec<Option<usize>>,
    },
    /// Keyed by value.
    Int(i64),
    /// Keyed by bit pattern.
    Float(u64),
    /// Keyed by value.
    Bool(bool),
    /// Keyed by value.
    Str(String),
    /// Variables are keyed by the *identity* of the variable object (its
    /// unique id), never by its current value.
    Var(u64),
}

/// An explicit input signature entry: dtype plus a possibly-partial shape.
///
/// Supplying a signature guarantees a single concrete function is generated
/// (§4.6: "the user also has the option of specifying an input signature"),
/// e.g. to handle arbitrary batch sizes with one graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorSpec {
    /// Required dtype.
    pub dtype: DType,
    /// Required shape; `None` dims accept any extent.
    pub shape: SymShape,
}

impl TensorSpec {
    /// Build a spec; `None` dims mean "any size".
    pub fn new(dtype: DType, dims: Vec<Option<usize>>) -> TensorSpec {
        TensorSpec { dtype, shape: SymShape::new(dims) }
    }

    /// Whether a concrete tensor satisfies this spec.
    pub fn matches(&self, t: &Tensor) -> bool {
        if t.dtype() != self.dtype {
            return false;
        }
        match t.shape() {
            Ok(s) => self.shape.matches(&s),
            Err(_) => self.shape.compatible_with(&t.sym_shape()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_runtime::api;

    #[test]
    fn tensor_keys_by_signature() {
        let a = api::zeros(DType::F32, [2, 3]);
        let b = api::ones(DType::F32, [2, 3]);
        let c = api::zeros(DType::F32, [2, 4]);
        let d = api::zeros(DType::F64, [2, 3]);
        assert_eq!(Arg::from(&a).key(), Arg::from(&b).key()); // same sig
        assert_ne!(Arg::from(&a).key(), Arg::from(&c).key()); // shape differs
        assert_ne!(Arg::from(&a).key(), Arg::from(&d).key()); // dtype differs
    }

    #[test]
    fn static_keys_by_value() {
        assert_eq!(Arg::from(true).key(), Arg::Bool(true).key());
        assert_ne!(Arg::from(true).key(), Arg::from(false).key());
        assert_ne!(Arg::from(1i64).key(), Arg::from(2i64).key());
        assert_ne!(Arg::from(1i64).key(), Arg::from(1.0f64).key()); // int != float
        assert_eq!(Arg::from("x").key(), Arg::Str("x".into()).key());
    }

    #[test]
    fn accessors() {
        assert_eq!(Arg::from(3i64).as_int(), Some(3));
        assert_eq!(Arg::from(3i64).as_float(), Some(3.0));
        assert_eq!(Arg::from(true).as_bool(), Some(true));
        assert_eq!(Arg::from("s").as_str(), Some("s"));
        assert!(Arg::from(1i64).as_tensor().is_none());
        let t = api::scalar(1.0f32);
        assert!(Arg::from(&t).as_tensor().is_some());
    }

    #[test]
    fn tensor_spec_matching() {
        let spec = TensorSpec::new(DType::F32, vec![None, Some(3)]);
        assert!(spec.matches(&api::zeros(DType::F32, [7, 3])));
        assert!(spec.matches(&api::zeros(DType::F32, [1, 3])));
        assert!(!spec.matches(&api::zeros(DType::F32, [7, 4])));
        assert!(!spec.matches(&api::zeros(DType::F64, [7, 3])));
        assert!(!spec.matches(&api::zeros(DType::F32, [3])));
    }
}
