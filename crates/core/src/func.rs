//! `function`: the multi-stage JIT tracer (§4.1, §4.6).
//!
//! [`function`] wraps a host closure composed of primitive operations and
//! returns a [`Func`] — a polymorphic callable backed by a cache of
//! [`ConcreteFunction`]s. Invoking a `Func` runs a binding-time analysis on
//! the arguments (tensors are abstracted to dtype/shape, everything else is
//! specialized by value), and either reuses a cached graph function or
//! traces the closure in a graph-building context to create one.

use crate::arg::{Arg, ArgKey, TensorSpec};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use tfe_graph::{passes, GraphFunction, TensorRef};
use tfe_ops::Attrs;
use tfe_runtime::{context, Result, RuntimeError, Tensor};
use tfe_tensor::{DType, TensorData};

type TraceClosure = dyn Fn(&[Arg]) -> Result<Vec<Tensor>> + Send + Sync;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    args: Vec<ArgKey>,
    device: String,
}

// ---------------------------------------------------------------------------
// Retrace diagnostics
// ---------------------------------------------------------------------------

fn fmt_dims(dims: &[Option<usize>]) -> String {
    let parts: Vec<String> = dims
        .iter()
        .map(|d| match d {
            Some(n) => n.to_string(),
            None => "?".to_string(),
        })
        .collect();
    format!("[{}]", parts.join(","))
}

/// Static-argument kind + rendered value, for cause strings.
fn static_parts(k: &ArgKey) -> (&'static str, String) {
    match k {
        ArgKey::Int(v) => ("int", v.to_string()),
        ArgKey::Float(bits) => ("float", f64::from_bits(*bits).to_string()),
        ArgKey::Bool(v) => ("bool", v.to_string()),
        ArgKey::Str(s) => ("str", format!("{s:?}")),
        ArgKey::Tensor { dtype, dims } => ("tensor", format!("{dtype}{}", fmt_dims(dims))),
        ArgKey::Var(id) => ("variable", format!("id {id}")),
    }
}

fn key_repr(k: &ArgKey) -> String {
    let (kind, value) = static_parts(k);
    format!("{kind} {value}")
}

/// One reason a [`Func`] call missed the trace cache even though concrete
/// functions already existed. Causes come from diffing the new call's
/// structured cache key against the *closest* previously cached key, so
/// they name exactly what drifted (the §4.6 binding-time analysis, made
/// observable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetraceCause {
    /// The number of arguments changed.
    ArgCount {
        /// Previous argument count.
        before: usize,
        /// New argument count.
        after: usize,
    },
    /// A tensor argument changed rank.
    Rank {
        /// Argument position.
        index: usize,
        /// Previous dims (`None` = unknown extent).
        before: Vec<Option<usize>>,
        /// New dims.
        after: Vec<Option<usize>>,
    },
    /// A tensor argument changed shape at the same rank.
    Shape {
        /// Argument position.
        index: usize,
        /// Previous dims.
        before: Vec<Option<usize>>,
        /// New dims.
        after: Vec<Option<usize>>,
    },
    /// A tensor argument changed dtype.
    DType {
        /// Argument position.
        index: usize,
        /// Previous dtype.
        before: DType,
        /// New dtype.
        after: DType,
    },
    /// A static argument changed value (statics specialize the trace by
    /// value, so a new value is a new graph — Listing 6's `training=True`
    /// vs `False`).
    StaticValue {
        /// Argument position.
        index: usize,
        /// Static kind (`int`, `float`, `bool`, `str`).
        kind: &'static str,
        /// Previous value, rendered.
        before: String,
        /// New value, rendered.
        after: String,
    },
    /// A *different variable object* was passed (variables key by
    /// identity, never by value).
    VariableIdentity {
        /// Argument position.
        index: usize,
        /// Previous variable id.
        before: u64,
        /// New variable id.
        after: u64,
    },
    /// The argument changed kind entirely (e.g. tensor → static int).
    Kind {
        /// Argument position.
        index: usize,
        /// Previous kind + value.
        before: String,
        /// New kind + value.
        after: String,
    },
    /// The requested device changed (the cache key couples the signature
    /// with the surrounding program state, §4.6).
    Device {
        /// Previous device.
        before: String,
        /// New device.
        after: String,
    },
}

impl fmt::Display for RetraceCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetraceCause::ArgCount { before, after } => {
                write!(f, "argument count {before} → {after}")
            }
            RetraceCause::Rank { index, before, after } => write!(
                f,
                "arg {index}: rank {} → {} (shape {} → {})",
                before.len(),
                after.len(),
                fmt_dims(before),
                fmt_dims(after)
            ),
            RetraceCause::Shape { index, before, after } => {
                write!(f, "arg {index}: shape {} → {}", fmt_dims(before), fmt_dims(after))
            }
            RetraceCause::DType { index, before, after } => {
                write!(f, "arg {index}: dtype {before} → {after}")
            }
            RetraceCause::StaticValue { index, kind, before, after } => {
                write!(f, "arg {index}: static {kind} {before} → {after}")
            }
            RetraceCause::VariableIdentity { index, before, after } => {
                write!(f, "arg {index}: variable identity id {before} → id {after}")
            }
            RetraceCause::Kind { index, before, after } => {
                write!(f, "arg {index}: {before} → {after}")
            }
            RetraceCause::Device { before, after } => write!(f, "device {before} → {after}"),
        }
    }
}

/// Diff two cache keys into causes. Non-empty whenever the keys differ.
fn diff_key(before: &CacheKey, after: &CacheKey) -> Vec<RetraceCause> {
    let mut causes = Vec::new();
    if before.device != after.device {
        causes.push(RetraceCause::Device {
            before: before.device.clone(),
            after: after.device.clone(),
        });
    }
    if before.args.len() != after.args.len() {
        causes.push(RetraceCause::ArgCount { before: before.args.len(), after: after.args.len() });
    }
    for (i, (b, a)) in before.args.iter().zip(&after.args).enumerate() {
        if b == a {
            continue;
        }
        match (b, a) {
            (
                ArgKey::Tensor { dtype: bd, dims: bdims },
                ArgKey::Tensor { dtype: ad, dims: adims },
            ) => {
                if bd != ad {
                    causes.push(RetraceCause::DType { index: i, before: *bd, after: *ad });
                }
                if bdims.len() != adims.len() {
                    causes.push(RetraceCause::Rank {
                        index: i,
                        before: bdims.clone(),
                        after: adims.clone(),
                    });
                } else if bdims != adims {
                    causes.push(RetraceCause::Shape {
                        index: i,
                        before: bdims.clone(),
                        after: adims.clone(),
                    });
                }
            }
            (ArgKey::Var(bid), ArgKey::Var(aid)) => {
                causes.push(RetraceCause::VariableIdentity { index: i, before: *bid, after: *aid })
            }
            (ArgKey::Int(_), ArgKey::Int(_))
            | (ArgKey::Float(_), ArgKey::Float(_))
            | (ArgKey::Bool(_), ArgKey::Bool(_))
            | (ArgKey::Str(_), ArgKey::Str(_)) => {
                let (kind, bv) = static_parts(b);
                let (_, av) = static_parts(a);
                causes.push(RetraceCause::StaticValue { index: i, kind, before: bv, after: av });
            }
            _ => causes.push(RetraceCause::Kind {
                index: i,
                before: key_repr(b),
                after: key_repr(a),
            }),
        }
    }
    causes
}

/// The diff against the closest cached key — fewest differing components
/// (ties broken by insertion-arbitrary order; any closest key explains the
/// miss equally well).
fn closest_diff(prior: &[CacheKey], new_key: &CacheKey) -> Vec<RetraceCause> {
    prior.iter().map(|k| diff_key(k, new_key)).min_by_key(Vec::len).unwrap_or_default()
}

/// One recorded retrace: the concrete function it produced and why the
/// call's signature missed every cached specialization.
#[derive(Debug, Clone)]
pub struct RetraceEvent {
    /// 1-based retrace ordinal for this `Func` (the initial trace is not a
    /// retrace).
    pub ordinal: u64,
    /// Name of the concrete function the retrace produced.
    pub concrete_name: String,
    /// Differences against the closest previously cached signature.
    pub causes: Vec<RetraceCause>,
}

impl fmt::Display for RetraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let causes: Vec<String> = self.causes.iter().map(ToString::to_string).collect();
        write!(
            f,
            "retrace #{} (traced `{}`): {}",
            self.ordinal,
            self.concrete_name,
            causes.join("; ")
        )
    }
}

/// Bounded retrace log: a ring of the most recent diagnosed events plus a
/// count of older events evicted to keep a long-lived server from leaking
/// memory one `RetraceEvent` at a time. Ordinals stay global (eviction does
/// not renumber), so `retrace #37` means the same thing before and after the
/// ring wraps.
#[derive(Debug, Default)]
struct RetraceRing {
    events: std::collections::VecDeque<RetraceEvent>,
    dropped: u64,
}

/// `TFE_RETRACE_LOG_CAP=N`: retain at most `N` diagnosed retrace events per
/// `Func` (default 64). Parsed once; unset, `0` or unparsable uses the
/// default.
fn retrace_log_cap() -> usize {
    static C: OnceLock<usize> = OnceLock::new();
    *C.get_or_init(|| {
        std::env::var("TFE_RETRACE_LOG_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64)
    })
}

/// `TFE_LOG_RETRACES=N`: warn on stderr once a `Func` accumulates `N`
/// retraces (each further retrace also warns). Parsed once; unset, `0` or
/// unparsable disables the warning.
fn retrace_log_threshold() -> Option<u64> {
    static T: OnceLock<Option<u64>> = OnceLock::new();
    *T.get_or_init(|| {
        std::env::var("TFE_LOG_RETRACES")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&n| n > 0)
    })
}

/// Lock-free trace-cache statistics for one [`Func`], backed by the
/// always-on metrics counters — reading them never contends with a trace
/// holding the cache mutex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FuncStats {
    /// Calls that reused a cached concrete function.
    pub hits: u64,
    /// Calls that had to trace (initial traces + retraces).
    pub misses: u64,
    /// Misses that happened after at least one concrete function existed.
    pub retraces: u64,
    /// Concrete functions currently cached.
    pub concrete_functions: u64,
}

impl FuncStats {
    /// Total cache lookups.
    pub fn calls(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of calls served from the cache (0.0 when never called).
    pub fn hit_rate(&self) -> f64 {
        if self.calls() == 0 {
            0.0
        } else {
            self.hits as f64 / self.calls() as f64
        }
    }
}

fn func_hits(label: &str) -> Arc<tfe_metrics::Counter> {
    tfe_metrics::counter_vec("tfe_func_cache_hits_total", "Per-function trace-cache hits", "func")
        .with(label)
}

fn func_misses(label: &str) -> Arc<tfe_metrics::Counter> {
    tfe_metrics::counter_vec(
        "tfe_func_cache_misses_total",
        "Per-function trace-cache misses (initial traces + retraces)",
        "func",
    )
    .with(label)
}

fn func_retraces(label: &str) -> Arc<tfe_metrics::Counter> {
    tfe_metrics::counter_vec(
        "tfe_func_retraces_total",
        "Per-function retraces (cache misses after the first trace)",
        "func",
    )
    .with(label)
}

fn func_concrete(label: &str) -> Arc<tfe_metrics::Gauge> {
    tfe_metrics::gauge_vec(
        "tfe_func_concrete_functions",
        "Per-function count of cached concrete (traced) graph functions",
        "func",
    )
    .with(label)
}

struct FuncInner {
    name: String,
    trace_fn: Box<TraceClosure>,
    input_signature: Option<Vec<TensorSpec>>,
    cache: Mutex<HashMap<CacheKey, Arc<ConcreteFunction>>>,
    ever_traced: AtomicBool,
    counter: AtomicUsize,
    /// Per-func metric handles, fetched once here so the hot path never
    /// takes the labeled-family lock.
    m_hits: Arc<tfe_metrics::Counter>,
    m_misses: Arc<tfe_metrics::Counter>,
    m_retraces: Arc<tfe_metrics::Counter>,
    m_concrete: Arc<tfe_metrics::Gauge>,
    /// Every diagnosed retrace, in order.
    retrace_log: Mutex<RetraceRing>,
}

impl FuncInner {
    fn new(
        name: String,
        label: &str,
        trace_fn: Box<TraceClosure>,
        input_signature: Option<Vec<TensorSpec>>,
    ) -> FuncInner {
        FuncInner {
            m_hits: func_hits(label),
            m_misses: func_misses(label),
            m_retraces: func_retraces(label),
            m_concrete: func_concrete(label),
            name,
            trace_fn,
            input_signature,
            cache: Mutex::new(HashMap::new()),
            ever_traced: AtomicBool::new(false),
            counter: AtomicUsize::new(0),
            retrace_log: Mutex::new(RetraceRing::default()),
        }
    }
}

/// A polymorphic staged function: the object returned by [`function`].
///
/// ```
/// use tfe_core::{function, Arg};
/// use tfe_runtime::api;
/// # fn main() -> Result<(), tfe_runtime::RuntimeError> {
/// let square = function("square", |args| {
///     let x = args[0].as_tensor().expect("tensor arg");
///     Ok(vec![api::mul(x, x)?])
/// });
/// let y = square.call(&[Arg::from(&api::scalar(3.0f32))])?;
/// assert_eq!(y[0].scalar_f64()?, 9.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Func {
    inner: Arc<FuncInner>,
}

/// Create a staged function from a closure over [`Arg`]s — the analog of
/// decorating a Python function with `@tf.contrib.eager.function`.
pub fn function(
    name: &str,
    f: impl Fn(&[Arg]) -> Result<Vec<Tensor>> + Send + Sync + 'static,
) -> Func {
    crate::init();
    static ANON: AtomicUsize = AtomicUsize::new(0);
    let name = if name.is_empty() {
        format!("__anon{}", ANON.fetch_add(1, Ordering::Relaxed))
    } else {
        format!("{name}_{}", ANON.fetch_add(1, Ordering::Relaxed))
    };
    let label = name.clone();
    Func { inner: Arc::new(FuncInner::new(name, &label, Box::new(f), None)) }
}

/// Single-tensor-in, single-tensor-out convenience wrapper.
pub fn function1(
    name: &str,
    f: impl Fn(&Tensor) -> Result<Tensor> + Send + Sync + 'static,
) -> Func {
    function(name, move |args| {
        let x = args
            .first()
            .and_then(Arg::as_tensor)
            .ok_or_else(|| RuntimeError::Internal("expected one tensor argument".to_string()))?;
        Ok(vec![f(x)?])
    })
}

impl Func {
    /// Constrain this function to an explicit input signature, eliminating
    /// input polymorphism: exactly one concrete function is generated, and
    /// `None` dims accept any size (e.g. a dynamic batch dimension).
    pub fn with_input_signature(self, signature: Vec<TensorSpec>) -> Func {
        let name = self.inner.name.clone();
        // The metric label gets a `#sig` suffix so the constrained variant's
        // series never merges with the original's (the trace name itself is
        // unchanged).
        let label = format!("{name}#sig");
        // Re-wrap the closure by delegating through the Arc.
        let orig = self.inner.clone();
        let trace_fn = Box::new(move |args: &[Arg]| (orig.trace_fn)(args));
        Func { inner: Arc::new(FuncInner::new(name, &label, trace_fn, Some(signature))) }
    }

    /// The function's base name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Number of concrete graph functions traced so far (Listing 6's two
    /// specializations show up here).
    pub fn num_concrete(&self) -> usize {
        self.inner.cache.lock().len()
    }

    /// Invoke with mixed tensor/static arguments.
    ///
    /// # Errors
    /// Trace-time errors (invalid ops), signature mismatches, state-creation
    /// contract violations, or execution failures.
    pub fn call(&self, args: &[Arg]) -> Result<Vec<Tensor>> {
        // A top-level `Func` call is a request entry point: give the whole
        // call (trace-cache lookup, retrace, staged execution) one trace
        // id; nested calls inherit the ambient request instead.
        let _root = tfe_profile::request_scope("func", || format!("call:{}", self.inner.name));
        let concrete = self.concrete_for(args)?;
        let tensor_args: Vec<Tensor> = args.iter().filter_map(|a| a.as_tensor().cloned()).collect();
        concrete.call(&tensor_args)
    }

    /// Invoke with tensor arguments only.
    ///
    /// # Errors
    /// As [`Func::call`].
    pub fn call_tensors(&self, args: &[&Tensor]) -> Result<Vec<Tensor>> {
        let args: Vec<Arg> = args.iter().map(|&t| Arg::from(t)).collect();
        self.call(&args)
    }

    /// Single-tensor convenience call.
    ///
    /// # Errors
    /// As [`Func::call`]; also if the function does not return exactly one
    /// tensor.
    pub fn call1(&self, x: &Tensor) -> Result<Tensor> {
        let mut out = self.call_tensors(&[x])?;
        if out.len() != 1 {
            return Err(RuntimeError::Internal(format!("expected one output, got {}", out.len())));
        }
        Ok(out.remove(0))
    }

    /// Resolve (tracing if needed) the concrete function for `args` — the
    /// `get_concrete_function` analog.
    ///
    /// # Errors
    /// As [`Func::call`].
    pub fn concrete_for(&self, args: &[Arg]) -> Result<Arc<ConcreteFunction>> {
        crate::init();
        if let Some(sig) = &self.inner.input_signature {
            let tensors: Vec<&Tensor> = args.iter().filter_map(Arg::as_tensor).collect();
            if tensors.len() != sig.len() {
                return Err(RuntimeError::Internal(format!(
                    "input signature expects {} tensors, got {}",
                    sig.len(),
                    tensors.len()
                )));
            }
            for (i, (spec, t)) in sig.iter().zip(&tensors).enumerate() {
                if !spec.matches(t) {
                    return Err(RuntimeError::Internal(format!(
                        "tensor argument {i} ({}{}) does not match input signature {}{}",
                        t.dtype(),
                        t.sym_shape(),
                        spec.dtype,
                        spec.shape
                    )));
                }
            }
        }
        let key = self.cache_key(args);
        // One lock acquisition answers both "is it cached?" and, on a miss,
        // "what keys exist to diff against?".
        let (hit, prior_keys) = {
            let cache = self.inner.cache.lock();
            match cache.get(&key) {
                Some(c) => (Some(c.clone()), Vec::new()),
                None => (None, cache.keys().cloned().collect::<Vec<_>>()),
            }
        };
        if let Some(hit) = hit {
            self.inner.m_hits.inc();
            tfe_metrics::static_counter!(
                "tfe_trace_cache_hits_total",
                "Func calls served by an already-traced concrete function"
            )
            .inc();
            tfe_profile::instant("trace", || format!("cache_hit:{}", self.inner.name));
            return Ok(hit);
        }
        self.inner.m_misses.inc();
        tfe_metrics::static_counter!(
            "tfe_trace_cache_misses_total",
            "Func calls that had to trace (initial traces + retraces)"
        )
        .inc();
        // A miss with prior concrete functions is a retrace (§4.6) — the
        // signature drifted. Diff the new key against the closest cached one
        // so the diagnostician can say exactly *what* drifted.
        let retrace_causes = if prior_keys.is_empty() {
            tfe_profile::instant("trace", || format!("cache_miss:{}", self.inner.name));
            None
        } else {
            self.inner.m_retraces.inc();
            tfe_metrics::static_counter!(
                "tfe_trace_cache_retraces_total",
                "Func cache misses that happened after the function was already traced"
            )
            .inc();
            tfe_profile::instant("trace", || format!("retrace:{}", self.inner.name));
            Some(closest_diff(&prior_keys, &key))
        };
        // Trace outside the cache lock so recursive calls don't deadlock.
        let concrete = {
            let _sp = tfe_profile::span("trace", || format!("trace:{}", self.inner.name));
            self.trace(args)?
        };
        if let Some(causes) = retrace_causes {
            self.record_retrace(&concrete.name, causes);
        }
        let mut cache = self.inner.cache.lock();
        let was = cache.len();
        let out = cache.entry(key).or_insert(concrete).clone();
        if cache.len() > was {
            tfe_metrics::static_gauge!(
                "tfe_trace_cache_concrete_functions",
                "Concrete (traced) graph functions cached across all Funcs"
            )
            .inc();
        }
        self.inner.m_concrete.set(cache.len() as i64);
        Ok(out)
    }

    fn record_retrace(&self, concrete_name: &str, causes: Vec<RetraceCause>) {
        let mut log = self.inner.retrace_log.lock();
        let event = RetraceEvent {
            ordinal: log.dropped + log.events.len() as u64 + 1,
            concrete_name: concrete_name.to_string(),
            causes,
        };
        if let Some(threshold) = retrace_log_threshold() {
            if event.ordinal >= threshold {
                eprintln!(
                    "[tf-eager] warning: function `{}` keeps retracing \
                     (TFE_LOG_RETRACES={threshold}): {event}",
                    self.inner.name
                );
            }
        }
        log.events.push_back(event);
        let cap = retrace_log_cap();
        while log.events.len() > cap {
            log.events.pop_front();
            log.dropped += 1;
        }
    }

    /// Lock-free trace-cache statistics, read straight from the always-on
    /// metrics counters — never blocks on the cache mutex, so it is safe to
    /// poll from a monitoring thread while another thread is mid-trace.
    pub fn stats(&self) -> FuncStats {
        FuncStats {
            hits: self.inner.m_hits.get(),
            misses: self.inner.m_misses.get(),
            retraces: self.inner.m_retraces.get(),
            concrete_functions: self.inner.m_concrete.get().max(0) as u64,
        }
    }

    /// The retained diagnosed retraces, in order of occurrence. At most
    /// [`TFE_RETRACE_LOG_CAP`](retrace_log_cap) events are kept; see
    /// [`dropped_retraces`](Func::dropped_retraces) for how many older ones
    /// were evicted.
    pub fn retraces(&self) -> Vec<RetraceEvent> {
        self.inner.retrace_log.lock().events.iter().cloned().collect()
    }

    /// How many diagnosed retrace events were evicted from the bounded log.
    pub fn dropped_retraces(&self) -> u64 {
        self.inner.retrace_log.lock().dropped
    }

    /// Human-readable retrace report: per-func cache statistics followed by
    /// one line per retrace naming exactly which argument drifted and how.
    pub fn retrace_report(&self) -> String {
        let stats = self.stats();
        let mut out = format!(
            "function `{}`: {} calls, {} hits, {} misses, {} retraces, {} concrete functions\n",
            self.inner.name,
            stats.calls(),
            stats.hits,
            stats.misses,
            stats.retraces,
            stats.concrete_functions
        );
        let log = self.inner.retrace_log.lock();
        if log.events.is_empty() && log.dropped == 0 {
            out.push_str("  no retraces recorded\n");
        } else {
            if log.dropped > 0 {
                out.push_str(&format!(
                    "  ({} older retraces dropped, log capped at {})\n",
                    log.dropped,
                    retrace_log_cap()
                ));
            }
            for event in log.events.iter() {
                out.push_str(&format!("  {event}\n"));
            }
        }
        out
    }

    /// Human-readable optimization report: one line per cached concrete
    /// function with the fixpoint sweep count, whether it converged,
    /// executable node counts before/after, and per-pass rewrite totals.
    /// The runtime-wide counterparts are the `tfe_pass_pipeline_*` metrics.
    pub fn optimization_report(&self) -> String {
        let mut entries: Vec<Arc<ConcreteFunction>> =
            self.inner.cache.lock().values().cloned().collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        let mut out =
            format!("function `{}`: {} concrete functions\n", self.inner.name, entries.len());
        if entries.is_empty() {
            out.push_str("  none traced yet\n");
        }
        for c in entries {
            let s = &c.opt_stats;
            out.push_str(&format!(
                "  {}: {} -> {} nodes, {} sweeps ({}), {} rewrites",
                c.name,
                c.raw.executable_node_count(),
                c.function.executable_node_count(),
                s.sweeps,
                if s.converged { "converged" } else { "sweep cap hit" },
                s.total_rewrites(),
            ));
            if !s.rewrites.is_empty() {
                let parts: Vec<String> =
                    s.rewrites.iter().map(|(k, v)| format!("{k}={v}")).collect();
                out.push_str(&format!(" [{}]", parts.join(", ")));
            }
            out.push('\n');
        }
        out
    }

    fn cache_key(&self, args: &[Arg]) -> CacheKey {
        let mut keys = Vec::with_capacity(args.len());
        let mut tensor_idx = 0usize;
        for a in args {
            match (a, &self.inner.input_signature) {
                (Arg::Tensor(_), Some(sig)) => {
                    let spec = &sig[tensor_idx];
                    tensor_idx += 1;
                    keys.push(ArgKey::Tensor {
                        dtype: spec.dtype,
                        dims: spec.shape.dims().to_vec(),
                    });
                }
                _ => keys.push(a.key()),
            }
        }
        // §4.6: the signature is coupled with metadata about the
        // surrounding program state, such as the requested device.
        CacheKey { args: keys, device: context::current_device_name().to_string() }
    }

    fn trace(&self, args: &[Arg]) -> Result<Arc<ConcreteFunction>> {
        let idx = self.inner.counter.fetch_add(1, Ordering::Relaxed);
        let cname = format!("{}__{idx}", self.inner.name);
        let first_ever = !self.inner.ever_traced.load(Ordering::Acquire);
        let mut traced = self.trace_once(&cname, args)?;
        if !traced.created_variables.is_empty() {
            // State-creation contract (§4.6): variables may only be created
            // the first time the function is called; trace a second time
            // and require no creations.
            if !first_ever {
                return Err(RuntimeError::Internal(format!(
                    "function `{}` created variables on a non-first trace; \
                     state must only be created the first time the function is called",
                    self.inner.name
                )));
            }
            traced = self.trace_once(&cname, args)?;
            if !traced.created_variables.is_empty() {
                return Err(RuntimeError::Internal(format!(
                    "function `{}` created variables on its second trace; \
                     state must only be created the first time the function is called",
                    self.inner.name
                )));
            }
        }
        self.inner.ever_traced.store(true, Ordering::Release);

        let raw = Arc::new(traced.raw);
        let var_ids = collect_var_ids(&raw);
        let stateful = raw.is_stateful();
        let n_primary = raw.outputs.len();

        // Optimize (the aggressive XLA-style pipeline when the target
        // device requires compilation, §4.4).
        let options = if context::current_device().device_type().requires_compilation() {
            passes::OptimizeOptions::aggressive()
        } else {
            passes::OptimizeOptions::default()
        };
        let evaluator = |node: &tfe_graph::Node,
                         inputs: &[Arc<TensorData>]|
         -> std::result::Result<Vec<TensorData>, String> {
            tfe_runtime::kernels::run_kernel(&node.op, &node.attrs, inputs)
                .map_err(|e| e.to_string())
        };
        let (optimized, opt_stats) = passes::optimize_with_stats(&raw, &options, Some(&evaluator));
        let function = context::library().insert(optimized);

        let concrete = Arc::new(ConcreteFunction {
            name: cname,
            function,
            raw,
            captures: traced.captures,
            var_ids,
            stateful,
            n_primary,
            opt_stats,
            forward: OnceLock::new(),
        });
        crate::call_grad::register_concrete(&concrete);
        Ok(concrete)
    }

    fn trace_once(&self, cname: &str, args: &[Arg]) -> Result<TraceOut> {
        let frame_id = context::begin_tracing(cname);
        let run = (|| -> Result<Vec<Tensor>> {
            let mut traced_args = Vec::with_capacity(args.len());
            let mut tensor_idx = 0usize;
            for a in args {
                match a {
                    Arg::Tensor(t) => {
                        let shape = match &self.inner.input_signature {
                            Some(sig) => sig[tensor_idx].shape.clone(),
                            None => t.sym_shape(),
                        };
                        tensor_idx += 1;
                        traced_args
                            .push(Arg::Tensor(context::tracing_placeholder(t.dtype(), shape)?));
                    }
                    other => traced_args.push(other.clone()),
                }
            }
            let outs = (self.inner.trace_fn)(&traced_args)?;
            // Returned values must be nodes of this frame; route foreign
            // (eager or outer-frame) tensors through `identity`, which
            // captures them.
            outs.into_iter()
                .map(|t| match &t {
                    Tensor::Symbolic(s) if s.frame_id == frame_id => Ok(t),
                    _ => Ok(context::execute("identity", &[t], Attrs::new())?.remove(0)),
                })
                .collect()
        })();
        let finished = context::end_tracing()?;
        let outs = run?;
        let out_refs: Vec<TensorRef> = outs
            .iter()
            .map(|t| {
                t.as_symbolic()
                    .map(|s| s.tref)
                    .ok_or_else(|| RuntimeError::Internal("non-symbolic trace output".into()))
            })
            .collect::<Result<_>>()?;
        let raw = finished.builder.finish(out_refs, finished.captures.len());
        Ok(TraceOut {
            raw,
            captures: finished.captures,
            created_variables: finished.created_variables,
        })
    }
}

impl std::fmt::Debug for Func {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Func({}, {} concrete)", self.inner.name, self.num_concrete())
    }
}

struct TraceOut {
    raw: GraphFunction,
    captures: Vec<Tensor>,
    created_variables: Vec<u64>,
}

/// Every variable id referenced by a graph (including, transitively, by its
/// `call` nodes — which carry their own `var_ids` attribute).
pub(crate) fn collect_var_ids(f: &GraphFunction) -> Vec<i64> {
    let mut set = BTreeSet::new();
    for node in &f.nodes {
        if let Ok(id) = node.attrs.int("var_id") {
            set.insert(id);
        }
        if let Ok(list) = node.attrs.int_list("var_ids") {
            set.extend(list.iter().copied());
        }
    }
    set.into_iter().collect()
}

/// One traced specialization: a graph function plus its captured inputs.
pub struct ConcreteFunction {
    /// Library name of the (optimized) inference graph.
    pub name: String,
    /// The optimized graph function.
    pub function: Arc<GraphFunction>,
    /// The unoptimized trace — the source of truth for building the
    /// forward-with-intermediates and backward functions (§4.2).
    pub raw: Arc<GraphFunction>,
    /// Captured outer tensors, appended to the declared arguments.
    pub captures: Vec<Tensor>,
    /// Variables the graph references (by reference, §4.6 Listing 7).
    pub var_ids: Vec<i64>,
    /// Whether the graph has side effects.
    pub stateful: bool,
    /// Number of user-visible outputs.
    pub n_primary: usize,
    /// What the fixpoint optimizer did to turn [`raw`](Self::raw) into
    /// [`function`](Self::function): sweeps, convergence, per-pass rewrites.
    pub opt_stats: passes::OptimizeStats,
    pub(crate) forward: OnceLock<std::result::Result<Arc<crate::call_grad::ForwardBundle>, String>>,
}

impl ConcreteFunction {
    /// Graph attributes for a `call` node invoking function `f`.
    pub(crate) fn call_attrs(f: &GraphFunction, stateful: bool, var_ids: &[i64]) -> Attrs {
        let (d, s) = tfe_ops::catalog::encode_sig(&f.output_sigs());
        Attrs::new()
            .with("function", f.name.clone())
            .with("stateful", stateful)
            .with("out_dtypes", d)
            .with("out_shapes", s)
            .with("var_ids", var_ids.to_vec())
    }

    /// Invoke the graph function on tensor arguments (captures appended
    /// automatically). Works eagerly and inside traces (composition via
    /// `call` nodes, Listing 8).
    ///
    /// When a gradient tape is active the forward-with-intermediates
    /// variant runs instead, so the backward pass has every value it needs
    /// without recomputation (§4.2).
    ///
    /// # Errors
    /// Arity mismatches or execution failures.
    pub fn call(self: &Arc<Self>, tensor_args: &[Tensor]) -> Result<Vec<Tensor>> {
        let declared = self.function.inputs.len() - self.function.num_captures;
        if tensor_args.len() != declared {
            return Err(RuntimeError::Internal(format!(
                "function `{}` expects {declared} tensor arguments, got {}",
                self.name,
                tensor_args.len()
            )));
        }
        let mut all = tensor_args.to_vec();
        all.extend(self.captures.iter().cloned());
        let under_tape = !context::active_tapes().is_empty();
        if under_tape {
            let bundle = self.forward_bundle()?;
            let fwd = context::library()
                .get(&bundle.fwd_name)
                .ok_or_else(|| RuntimeError::UnknownFunction(bundle.fwd_name.clone()))?;
            let attrs = Self::call_attrs(&fwd, self.stateful, &self.var_ids);
            let mut outs = context::execute("call", &all, attrs)?;
            outs.truncate(self.n_primary);
            Ok(outs)
        } else {
            let attrs = Self::call_attrs(&self.function, self.stateful, &self.var_ids);
            context::execute("call", &all, attrs)
        }
    }

    /// Build (once) the forward-with-intermediates + backward pair.
    ///
    /// # Errors
    /// Gradient-construction failures (e.g. an op without a registered
    /// gradient inside the traced function).
    pub fn forward_bundle(self: &Arc<Self>) -> Result<Arc<crate::call_grad::ForwardBundle>> {
        let me = self.clone();
        self.forward
            .get_or_init(move || {
                crate::call_grad::build_bundle(&me).map(Arc::new).map_err(|e| e.to_string())
            })
            .clone()
            .map_err(RuntimeError::Internal)
    }
}

impl std::fmt::Debug for ConcreteFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ConcreteFunction({}, {} nodes optimized / {} raw, {} captures, stateful={})",
            self.name,
            self.function.executable_node_count(),
            self.raw.executable_node_count(),
            self.captures.len(),
            self.stateful
        )
    }
}
