//! `function`: the multi-stage JIT tracer (§4.1, §4.6).
//!
//! [`function`] wraps a host closure composed of primitive operations and
//! returns a [`Func`] — a polymorphic callable backed by a cache of
//! [`ConcreteFunction`]s. Invoking a `Func` runs a binding-time analysis on
//! the arguments (tensors are abstracted to dtype/shape, everything else is
//! specialized by value), and either reuses a cached graph function or
//! traces the closure in a graph-building context to create one.

use crate::arg::{Arg, ArgKey, TensorSpec};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use tfe_graph::{passes, GraphFunction, TensorRef};
use tfe_ops::Attrs;
use tfe_runtime::{context, Result, RuntimeError, Tensor};
use tfe_tensor::TensorData;

type TraceClosure = dyn Fn(&[Arg]) -> Result<Vec<Tensor>> + Send + Sync;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    args: Vec<ArgKey>,
    device: String,
}

struct FuncInner {
    name: String,
    trace_fn: Box<TraceClosure>,
    input_signature: Option<Vec<TensorSpec>>,
    cache: Mutex<HashMap<CacheKey, Arc<ConcreteFunction>>>,
    ever_traced: AtomicBool,
    counter: AtomicUsize,
}

/// A polymorphic staged function: the object returned by [`function`].
///
/// ```
/// use tfe_core::{function, Arg};
/// use tfe_runtime::api;
/// # fn main() -> Result<(), tfe_runtime::RuntimeError> {
/// let square = function("square", |args| {
///     let x = args[0].as_tensor().expect("tensor arg");
///     Ok(vec![api::mul(x, x)?])
/// });
/// let y = square.call(&[Arg::from(&api::scalar(3.0f32))])?;
/// assert_eq!(y[0].scalar_f64()?, 9.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Func {
    inner: Arc<FuncInner>,
}

/// Create a staged function from a closure over [`Arg`]s — the analog of
/// decorating a Python function with `@tf.contrib.eager.function`.
pub fn function(
    name: &str,
    f: impl Fn(&[Arg]) -> Result<Vec<Tensor>> + Send + Sync + 'static,
) -> Func {
    crate::init();
    static ANON: AtomicUsize = AtomicUsize::new(0);
    let name = if name.is_empty() {
        format!("__anon{}", ANON.fetch_add(1, Ordering::Relaxed))
    } else {
        format!("{name}_{}", ANON.fetch_add(1, Ordering::Relaxed))
    };
    Func {
        inner: Arc::new(FuncInner {
            name,
            trace_fn: Box::new(f),
            input_signature: None,
            cache: Mutex::new(HashMap::new()),
            ever_traced: AtomicBool::new(false),
            counter: AtomicUsize::new(0),
        }),
    }
}

/// Single-tensor-in, single-tensor-out convenience wrapper.
pub fn function1(
    name: &str,
    f: impl Fn(&Tensor) -> Result<Tensor> + Send + Sync + 'static,
) -> Func {
    function(name, move |args| {
        let x = args
            .first()
            .and_then(Arg::as_tensor)
            .ok_or_else(|| RuntimeError::Internal("expected one tensor argument".to_string()))?;
        Ok(vec![f(x)?])
    })
}

impl Func {
    /// Constrain this function to an explicit input signature, eliminating
    /// input polymorphism: exactly one concrete function is generated, and
    /// `None` dims accept any size (e.g. a dynamic batch dimension).
    pub fn with_input_signature(self, signature: Vec<TensorSpec>) -> Func {
        let inner = FuncInner {
            name: self.inner.name.clone(),
            // Re-wrap the closure by delegating through the Arc.
            trace_fn: {
                let orig = self.inner.clone();
                Box::new(move |args| (orig.trace_fn)(args))
            },
            input_signature: Some(signature),
            cache: Mutex::new(HashMap::new()),
            ever_traced: AtomicBool::new(false),
            counter: AtomicUsize::new(0),
        };
        Func { inner: Arc::new(inner) }
    }

    /// The function's base name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Number of concrete graph functions traced so far (Listing 6's two
    /// specializations show up here).
    pub fn num_concrete(&self) -> usize {
        self.inner.cache.lock().len()
    }

    /// Invoke with mixed tensor/static arguments.
    ///
    /// # Errors
    /// Trace-time errors (invalid ops), signature mismatches, state-creation
    /// contract violations, or execution failures.
    pub fn call(&self, args: &[Arg]) -> Result<Vec<Tensor>> {
        let concrete = self.concrete_for(args)?;
        let tensor_args: Vec<Tensor> = args.iter().filter_map(|a| a.as_tensor().cloned()).collect();
        concrete.call(&tensor_args)
    }

    /// Invoke with tensor arguments only.
    ///
    /// # Errors
    /// As [`Func::call`].
    pub fn call_tensors(&self, args: &[&Tensor]) -> Result<Vec<Tensor>> {
        let args: Vec<Arg> = args.iter().map(|&t| Arg::from(t)).collect();
        self.call(&args)
    }

    /// Single-tensor convenience call.
    ///
    /// # Errors
    /// As [`Func::call`]; also if the function does not return exactly one
    /// tensor.
    pub fn call1(&self, x: &Tensor) -> Result<Tensor> {
        let mut out = self.call_tensors(&[x])?;
        if out.len() != 1 {
            return Err(RuntimeError::Internal(format!("expected one output, got {}", out.len())));
        }
        Ok(out.remove(0))
    }

    /// Resolve (tracing if needed) the concrete function for `args` — the
    /// `get_concrete_function` analog.
    ///
    /// # Errors
    /// As [`Func::call`].
    pub fn concrete_for(&self, args: &[Arg]) -> Result<Arc<ConcreteFunction>> {
        crate::init();
        if let Some(sig) = &self.inner.input_signature {
            let tensors: Vec<&Tensor> = args.iter().filter_map(Arg::as_tensor).collect();
            if tensors.len() != sig.len() {
                return Err(RuntimeError::Internal(format!(
                    "input signature expects {} tensors, got {}",
                    sig.len(),
                    tensors.len()
                )));
            }
            for (i, (spec, t)) in sig.iter().zip(&tensors).enumerate() {
                if !spec.matches(t) {
                    return Err(RuntimeError::Internal(format!(
                        "tensor argument {i} ({}{}) does not match input signature {}{}",
                        t.dtype(),
                        t.sym_shape(),
                        spec.dtype,
                        spec.shape
                    )));
                }
            }
        }
        let key = self.cache_key(args);
        if let Some(hit) = self.inner.cache.lock().get(&key) {
            tfe_profile::instant("trace", || format!("cache_hit:{}", self.inner.name));
            return Ok(hit.clone());
        }
        // A miss with prior concrete functions is a retrace (§4.6) — the
        // signature drifted — worth flagging distinctly on the timeline.
        if self.num_concrete() > 0 {
            tfe_profile::instant("trace", || format!("retrace:{}", self.inner.name));
        } else {
            tfe_profile::instant("trace", || format!("cache_miss:{}", self.inner.name));
        }
        // Trace outside the cache lock so recursive calls don't deadlock.
        let concrete = {
            let _sp = tfe_profile::span("trace", || format!("trace:{}", self.inner.name));
            self.trace(args)?
        };
        let mut cache = self.inner.cache.lock();
        Ok(cache.entry(key).or_insert(concrete).clone())
    }

    fn cache_key(&self, args: &[Arg]) -> CacheKey {
        let mut keys = Vec::with_capacity(args.len());
        let mut tensor_idx = 0usize;
        for a in args {
            match (a, &self.inner.input_signature) {
                (Arg::Tensor(_), Some(sig)) => {
                    let spec = &sig[tensor_idx];
                    tensor_idx += 1;
                    keys.push(ArgKey::Tensor {
                        dtype: spec.dtype,
                        dims: spec.shape.dims().to_vec(),
                    });
                }
                _ => keys.push(a.key()),
            }
        }
        // §4.6: the signature is coupled with metadata about the
        // surrounding program state, such as the requested device.
        CacheKey { args: keys, device: context::current_device_name().to_string() }
    }

    fn trace(&self, args: &[Arg]) -> Result<Arc<ConcreteFunction>> {
        let idx = self.inner.counter.fetch_add(1, Ordering::Relaxed);
        let cname = format!("{}__{idx}", self.inner.name);
        let first_ever = !self.inner.ever_traced.load(Ordering::Acquire);
        let mut traced = self.trace_once(&cname, args)?;
        if !traced.created_variables.is_empty() {
            // State-creation contract (§4.6): variables may only be created
            // the first time the function is called; trace a second time
            // and require no creations.
            if !first_ever {
                return Err(RuntimeError::Internal(format!(
                    "function `{}` created variables on a non-first trace; \
                     state must only be created the first time the function is called",
                    self.inner.name
                )));
            }
            traced = self.trace_once(&cname, args)?;
            if !traced.created_variables.is_empty() {
                return Err(RuntimeError::Internal(format!(
                    "function `{}` created variables on its second trace; \
                     state must only be created the first time the function is called",
                    self.inner.name
                )));
            }
        }
        self.inner.ever_traced.store(true, Ordering::Release);

        let raw = Arc::new(traced.raw);
        let var_ids = collect_var_ids(&raw);
        let stateful = raw.is_stateful();
        let n_primary = raw.outputs.len();

        // Optimize (the aggressive XLA-style pipeline when the target
        // device requires compilation, §4.4).
        let options = if context::current_device().device_type().requires_compilation() {
            passes::OptimizeOptions::aggressive()
        } else {
            passes::OptimizeOptions::default()
        };
        let evaluator = |node: &tfe_graph::Node,
                         inputs: &[Arc<TensorData>]|
         -> std::result::Result<Vec<TensorData>, String> {
            tfe_runtime::kernels::run_kernel(&node.op, &node.attrs, inputs)
                .map_err(|e| e.to_string())
        };
        let optimized = passes::optimize(&raw, &options, Some(&evaluator));
        let function = context::library().insert(optimized);

        let concrete = Arc::new(ConcreteFunction {
            name: cname,
            function,
            raw,
            captures: traced.captures,
            var_ids,
            stateful,
            n_primary,
            forward: OnceLock::new(),
        });
        crate::call_grad::register_concrete(&concrete);
        Ok(concrete)
    }

    fn trace_once(&self, cname: &str, args: &[Arg]) -> Result<TraceOut> {
        let frame_id = context::begin_tracing(cname);
        let run = (|| -> Result<Vec<Tensor>> {
            let mut traced_args = Vec::with_capacity(args.len());
            let mut tensor_idx = 0usize;
            for a in args {
                match a {
                    Arg::Tensor(t) => {
                        let shape = match &self.inner.input_signature {
                            Some(sig) => sig[tensor_idx].shape.clone(),
                            None => t.sym_shape(),
                        };
                        tensor_idx += 1;
                        traced_args
                            .push(Arg::Tensor(context::tracing_placeholder(t.dtype(), shape)?));
                    }
                    other => traced_args.push(other.clone()),
                }
            }
            let outs = (self.inner.trace_fn)(&traced_args)?;
            // Returned values must be nodes of this frame; route foreign
            // (eager or outer-frame) tensors through `identity`, which
            // captures them.
            outs.into_iter()
                .map(|t| match &t {
                    Tensor::Symbolic(s) if s.frame_id == frame_id => Ok(t),
                    _ => Ok(context::execute("identity", &[t], Attrs::new())?.remove(0)),
                })
                .collect()
        })();
        let finished = context::end_tracing()?;
        let outs = run?;
        let out_refs: Vec<TensorRef> = outs
            .iter()
            .map(|t| {
                t.as_symbolic()
                    .map(|s| s.tref)
                    .ok_or_else(|| RuntimeError::Internal("non-symbolic trace output".into()))
            })
            .collect::<Result<_>>()?;
        let raw = finished.builder.finish(out_refs, finished.captures.len());
        Ok(TraceOut {
            raw,
            captures: finished.captures,
            created_variables: finished.created_variables,
        })
    }
}

impl std::fmt::Debug for Func {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Func({}, {} concrete)", self.inner.name, self.num_concrete())
    }
}

struct TraceOut {
    raw: GraphFunction,
    captures: Vec<Tensor>,
    created_variables: Vec<u64>,
}

/// Every variable id referenced by a graph (including, transitively, by its
/// `call` nodes — which carry their own `var_ids` attribute).
pub(crate) fn collect_var_ids(f: &GraphFunction) -> Vec<i64> {
    let mut set = BTreeSet::new();
    for node in &f.nodes {
        if let Ok(id) = node.attrs.int("var_id") {
            set.insert(id);
        }
        if let Ok(list) = node.attrs.int_list("var_ids") {
            set.extend(list.iter().copied());
        }
    }
    set.into_iter().collect()
}

/// One traced specialization: a graph function plus its captured inputs.
pub struct ConcreteFunction {
    /// Library name of the (optimized) inference graph.
    pub name: String,
    /// The optimized graph function.
    pub function: Arc<GraphFunction>,
    /// The unoptimized trace — the source of truth for building the
    /// forward-with-intermediates and backward functions (§4.2).
    pub raw: Arc<GraphFunction>,
    /// Captured outer tensors, appended to the declared arguments.
    pub captures: Vec<Tensor>,
    /// Variables the graph references (by reference, §4.6 Listing 7).
    pub var_ids: Vec<i64>,
    /// Whether the graph has side effects.
    pub stateful: bool,
    /// Number of user-visible outputs.
    pub n_primary: usize,
    pub(crate) forward: OnceLock<std::result::Result<Arc<crate::call_grad::ForwardBundle>, String>>,
}

impl ConcreteFunction {
    /// Graph attributes for a `call` node invoking function `f`.
    pub(crate) fn call_attrs(f: &GraphFunction, stateful: bool, var_ids: &[i64]) -> Attrs {
        let (d, s) = tfe_ops::catalog::encode_sig(&f.output_sigs());
        Attrs::new()
            .with("function", f.name.clone())
            .with("stateful", stateful)
            .with("out_dtypes", d)
            .with("out_shapes", s)
            .with("var_ids", var_ids.to_vec())
    }

    /// Invoke the graph function on tensor arguments (captures appended
    /// automatically). Works eagerly and inside traces (composition via
    /// `call` nodes, Listing 8).
    ///
    /// When a gradient tape is active the forward-with-intermediates
    /// variant runs instead, so the backward pass has every value it needs
    /// without recomputation (§4.2).
    ///
    /// # Errors
    /// Arity mismatches or execution failures.
    pub fn call(self: &Arc<Self>, tensor_args: &[Tensor]) -> Result<Vec<Tensor>> {
        let declared = self.function.inputs.len() - self.function.num_captures;
        if tensor_args.len() != declared {
            return Err(RuntimeError::Internal(format!(
                "function `{}` expects {declared} tensor arguments, got {}",
                self.name,
                tensor_args.len()
            )));
        }
        let mut all = tensor_args.to_vec();
        all.extend(self.captures.iter().cloned());
        let under_tape = !context::active_tapes().is_empty();
        if under_tape {
            let bundle = self.forward_bundle()?;
            let fwd = context::library()
                .get(&bundle.fwd_name)
                .ok_or_else(|| RuntimeError::UnknownFunction(bundle.fwd_name.clone()))?;
            let attrs = Self::call_attrs(&fwd, self.stateful, &self.var_ids);
            let mut outs = context::execute("call", &all, attrs)?;
            outs.truncate(self.n_primary);
            Ok(outs)
        } else {
            let attrs = Self::call_attrs(&self.function, self.stateful, &self.var_ids);
            context::execute("call", &all, attrs)
        }
    }

    /// Build (once) the forward-with-intermediates + backward pair.
    ///
    /// # Errors
    /// Gradient-construction failures (e.g. an op without a registered
    /// gradient inside the traced function).
    pub fn forward_bundle(self: &Arc<Self>) -> Result<Arc<crate::call_grad::ForwardBundle>> {
        let me = self.clone();
        self.forward
            .get_or_init(move || {
                crate::call_grad::build_bundle(&me).map(Arc::new).map_err(|e| e.to_string())
            })
            .clone()
            .map_err(RuntimeError::Internal)
    }
}

impl std::fmt::Debug for ConcreteFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ConcreteFunction({}, {} nodes optimized / {} raw, {} captures, stateful={})",
            self.name,
            self.function.executable_node_count(),
            self.raw.executable_node_count(),
            self.captures.len(),
            self.stateful
        )
    }
}
