//! # tfe-state
//!
//! Program-state management for the `tf-eager` workspace (§4.3 of the
//! TensorFlow Eager paper): the [`Trackable`] object graph with named
//! edges, [`checkpoint`] save/restore with greedy graph-based matching
//! (Listing 3 / Figure 1), and [`saved`] — SavedFunction bundles that
//! serialize a trace plus its state for execution without the tracer.
//!
//! ```
//! use std::sync::Arc;
//! use tfe_state::{checkpoint, TrackableGroup};
//! use tfe_runtime::Variable;
//! use tfe_tensor::TensorData;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let v = Variable::new(TensorData::scalar(1.0f32));
//! let net = TrackableGroup::new().with_variable("v", &v);
//! let snapshot = checkpoint::save_to_value(&net);
//! v.restore(TensorData::scalar(9.0f32))?;
//! checkpoint::restore_from_value(&net, &snapshot)?;
//! assert_eq!(v.peek().scalar_f64()?, 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod saved;
mod trackable;

pub use checkpoint::{CheckpointError, RestoreStatus};
pub use saved::{LoadedFunction, SavedError};
pub use trackable::{MutableState, Trackable, TrackableChild, TrackableGroup, TrackableList};
