//! Checkpoint save/restore with graph-based state matching (§4.3).
//!
//! Saving serializes the trackable object graph — nodes, named edges, and
//! leaf values. Restoring walks the serialized graph and the live object
//! graph *together* from the root, greedily matching children by edge name;
//! the correspondence "depends only on the objects being saved and
//! restored, not on other parts of the program", so two copies of one model
//! restore correctly regardless of variable-creation order.

use crate::trackable::{Trackable, TrackableChild};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use tfe_encode::Value;
use tfe_graph::serial::{tensor_from_value, tensor_to_value};

/// A checkpoint error.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointError(pub String);

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "checkpoint error: {}", self.0)
    }
}

impl std::error::Error for CheckpointError {}

fn err(msg: impl Into<String>) -> CheckpointError {
    CheckpointError(msg.into())
}

/// Outcome of a restore: what matched and what did not.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RestoreStatus {
    /// Variables whose values were restored.
    pub restored_variables: usize,
    /// Miscellaneous state cells restored.
    pub restored_state: usize,
    /// Edge paths present in the checkpoint but absent on the live object.
    pub unmatched_in_checkpoint: Vec<String>,
    /// Edge paths on the live object with no checkpoint counterpart.
    pub unmatched_in_object: Vec<String>,
}

impl RestoreStatus {
    /// True when everything matched both ways.
    pub fn is_complete(&self) -> bool {
        self.unmatched_in_checkpoint.is_empty() && self.unmatched_in_object.is_empty()
    }
}

#[derive(Debug)]
enum SavedNode {
    Object { edges: Vec<(String, usize)> },
    Variable(Value),
    State(Value),
}

/// Serialize a trackable graph to a JSON value.
fn save_graph(root: &dyn Trackable) -> Vec<SavedNode> {
    let mut nodes: Vec<SavedNode> = Vec::new();
    // Deduplicate shared objects / variables so diamonds stay diamonds.
    let mut object_index: HashMap<usize, usize> = HashMap::new(); // Arc ptr -> node
    let mut variable_index: HashMap<u64, usize> = HashMap::new();

    fn visit(
        node: &dyn Trackable,
        nodes: &mut Vec<SavedNode>,
        object_index: &mut HashMap<usize, usize>,
        variable_index: &mut HashMap<u64, usize>,
    ) -> usize {
        let my_index = nodes.len();
        nodes.push(SavedNode::Object { edges: Vec::new() });
        let mut edges = Vec::new();
        for (name, child) in node.children() {
            let child_index = match child {
                TrackableChild::Variable(v) => {
                    if let Some(&i) = variable_index.get(&v.id()) {
                        i
                    } else {
                        let i = nodes.len();
                        nodes.push(SavedNode::Variable(tensor_to_value(&v.peek())));
                        variable_index.insert(v.id(), i);
                        i
                    }
                }
                TrackableChild::Node(t) => {
                    let ptr = Arc::as_ptr(&t) as *const () as usize;
                    if let Some(&i) = object_index.get(&ptr) {
                        i
                    } else {
                        let i = visit(t.as_ref(), nodes, object_index, variable_index);
                        object_index.insert(ptr, i);
                        i
                    }
                }
                TrackableChild::State(s) => {
                    let i = nodes.len();
                    nodes.push(SavedNode::State(s.save_state()));
                    i
                }
            };
            edges.push((name, child_index));
        }
        nodes[my_index] = SavedNode::Object { edges };
        my_index
    }

    visit(root, &mut nodes, &mut object_index, &mut variable_index);
    nodes
}

fn nodes_to_value(nodes: &[SavedNode]) -> Value {
    let encoded: Vec<Value> = nodes
        .iter()
        .map(|n| match n {
            SavedNode::Object { edges } => Value::object([
                ("kind".to_string(), Value::str("object")),
                (
                    "edges".to_string(),
                    Value::Array(
                        edges
                            .iter()
                            .map(|(name, idx)| {
                                Value::Array(vec![
                                    Value::str(name.clone()),
                                    Value::Int(*idx as i64),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            SavedNode::Variable(v) => Value::object([
                ("kind".to_string(), Value::str("variable")),
                ("value".to_string(), v.clone()),
            ]),
            SavedNode::State(v) => Value::object([
                ("kind".to_string(), Value::str("state")),
                ("value".to_string(), v.clone()),
            ]),
        })
        .collect();
    Value::object([
        ("format".to_string(), Value::str("tfe-checkpoint-v1")),
        ("nodes".to_string(), Value::Array(encoded)),
    ])
}

fn nodes_from_value(v: &Value) -> Result<Vec<SavedNode>, CheckpointError> {
    if v.get("format").and_then(Value::as_str) != Some("tfe-checkpoint-v1") {
        return Err(err("not a tfe checkpoint"));
    }
    v.get("nodes")
        .and_then(Value::as_array)
        .ok_or_else(|| err("missing nodes"))?
        .iter()
        .map(|nv| match nv.get("kind").and_then(Value::as_str) {
            Some("object") => {
                let edges = nv
                    .get("edges")
                    .and_then(Value::as_array)
                    .ok_or_else(|| err("missing edges"))?
                    .iter()
                    .map(|ev| {
                        let pair = ev.as_array().ok_or_else(|| err("bad edge"))?;
                        let name = pair
                            .first()
                            .and_then(Value::as_str)
                            .ok_or_else(|| err("bad edge name"))?;
                        let idx = pair
                            .get(1)
                            .and_then(Value::as_i64)
                            .ok_or_else(|| err("bad edge index"))?;
                        Ok((name.to_string(), idx as usize))
                    })
                    .collect::<Result<Vec<_>, CheckpointError>>()?;
                Ok(SavedNode::Object { edges })
            }
            Some("variable") => Ok(SavedNode::Variable(
                nv.get("value").cloned().ok_or_else(|| err("missing value"))?,
            )),
            Some("state") => {
                Ok(SavedNode::State(nv.get("value").cloned().ok_or_else(|| err("missing value"))?))
            }
            _ => Err(err("unknown node kind")),
        })
        .collect()
}

/// Save the object graph rooted at `root` as a JSON value.
///
/// Variable reads go through `Variable::peek`, which quiesces the async
/// dispatch streams, so the snapshot reflects every previously issued
/// assignment; deferred errors are surfaced by [`save`], not here.
pub fn save_to_value(root: &dyn Trackable) -> Value {
    nodes_to_value(&save_graph(root))
}

/// Save to a file. Checkpointing is a sync point: all in-flight async work
/// completes first, and a deferred stream error fails the save instead of
/// silently writing state produced before the failure.
///
/// # Errors
/// A deferred async error, or I/O failures.
pub fn save(root: &dyn Trackable, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    tfe_runtime::context::sync()
        .map_err(|e| err(format!("cannot checkpoint a failed async stream: {e}")))?;
    let v = save_to_value(root);
    std::fs::write(path, v.to_json_pretty()).map_err(|e| err(format!("write failed: {e}")))
}

/// Restore the object graph rooted at `root` from a serialized value.
///
/// Matching is greedy and local: starting at the two roots, children are
/// paired by edge name and recursion proceeds only through paired nodes.
///
/// # Errors
/// A deferred async error, structural decode failures, or value mismatches
/// (wrong dtype/shape). Restoring is a sync point: in-flight async work
/// completes first so it cannot clobber the restored values, and a
/// deferred error fails the restore rather than being dropped.
pub fn restore_from_value(
    root: &dyn Trackable,
    value: &Value,
) -> Result<RestoreStatus, CheckpointError> {
    tfe_runtime::context::sync()
        .map_err(|e| err(format!("cannot restore over a failed async stream: {e}")))?;
    let nodes = nodes_from_value(value)?;
    let mut status = RestoreStatus::default();
    let mut visited: HashMap<usize, ()> = HashMap::new();

    fn walk(
        node: &dyn Trackable,
        saved_index: usize,
        nodes: &[SavedNode],
        path: &str,
        status: &mut RestoreStatus,
        visited: &mut HashMap<usize, ()>,
    ) -> Result<(), CheckpointError> {
        let SavedNode::Object { edges } = &nodes[saved_index] else {
            return Err(err(format!("checkpoint node at `{path}` is not an object")));
        };
        let saved_edges: HashMap<&str, usize> =
            edges.iter().map(|(n, i)| (n.as_str(), *i)).collect();
        let mut live_names: Vec<String> = Vec::new();
        for (name, child) in node.children() {
            let child_path = if path.is_empty() { name.clone() } else { format!("{path}/{name}") };
            live_names.push(name.clone());
            let Some(&saved_child) = saved_edges.get(name.as_str()) else {
                status.unmatched_in_object.push(child_path);
                continue;
            };
            match (&child, &nodes[saved_child]) {
                (TrackableChild::Variable(v), SavedNode::Variable(payload)) => {
                    let data = tensor_from_value(payload)
                        .map_err(|e| err(format!("at `{child_path}`: {e}")))?;
                    v.restore(data).map_err(|e| err(format!("at `{child_path}`: {e}")))?;
                    status.restored_variables += 1;
                }
                (TrackableChild::State(s), SavedNode::State(payload)) => {
                    s.restore_state(payload).map_err(|e| err(format!("at `{child_path}`: {e}")))?;
                    status.restored_state += 1;
                }
                (TrackableChild::Node(t), SavedNode::Object { .. }) => {
                    // A shared saved node may be reached through several
                    // edges; restore through the first path only.
                    if visited.insert(saved_child, ()).is_none() {
                        walk(t.as_ref(), saved_child, nodes, &child_path, status, visited)?;
                    }
                }
                _ => {
                    return Err(err(format!(
                        "kind mismatch at `{child_path}` between checkpoint and object"
                    )))
                }
            }
        }
        for (name, idx) in edges {
            if !live_names.iter().any(|n| n == name) {
                let child_path =
                    if path.is_empty() { name.clone() } else { format!("{path}/{name}") };
                status.unmatched_in_checkpoint.push(child_path);
                let _ = idx;
            }
        }
        Ok(())
    }

    walk(root, 0, &nodes, "", &mut status, &mut visited)?;
    Ok(status)
}

/// Restore from a file.
///
/// # Errors
/// I/O or decode failures, or value mismatches.
pub fn restore(
    root: &dyn Trackable,
    path: impl AsRef<Path>,
) -> Result<RestoreStatus, CheckpointError> {
    let text = std::fs::read_to_string(path).map_err(|e| err(format!("read failed: {e}")))?;
    let v = Value::parse(&text).map_err(|e| err(format!("parse failed: {e}")))?;
    restore_from_value(root, &v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trackable::{MutableState, TrackableGroup};
    use parking_lot::Mutex;
    use tfe_runtime::Variable;
    use tfe_tensor::{DType, TensorData};

    fn model() -> (TrackableGroup, Variable, Variable) {
        let w = Variable::new(
            TensorData::from_vec(vec![1.0f32, 2.0], tfe_tensor::Shape::from([2])).unwrap(),
        );
        let b = Variable::new(TensorData::scalar(0.5f32));
        let layer =
            Arc::new(TrackableGroup::new().with_variable("kernel", &w).with_variable("bias", &b));
        // Listing 3's structure: v plus an `out` layer with kernel/bias.
        let v = Variable::new(TensorData::scalar(1.0f32));
        let net = TrackableGroup::new().with_variable("v", &v).with_node("out", layer);
        (net, w, b)
    }

    #[test]
    fn save_restore_round_trip() {
        let (net, w, b) = model();
        let saved = save_to_value(&net);
        // Perturb and restore.
        w.restore(TensorData::from_vec(vec![9.0f32, 9.0], tfe_tensor::Shape::from([2])).unwrap())
            .unwrap();
        b.restore(TensorData::scalar(9.0f32)).unwrap();
        let status = restore_from_value(&net, &saved).unwrap();
        assert!(status.is_complete(), "{status:?}");
        assert_eq!(status.restored_variables, 3);
        assert_eq!(w.peek().to_f64_vec(), vec![1.0, 2.0]);
        assert_eq!(b.peek().scalar_f64().unwrap(), 0.5);
    }

    #[test]
    fn matching_is_structural_not_order_based() {
        // Save one model, restore into a fresh copy whose variables were
        // created in a different order — graph matching must not care.
        let (net, _w, _b) = model();
        let saved = save_to_value(&net);

        // Build the same structure, creating variables in reverse order.
        let b2 = Variable::new(TensorData::scalar(0.0f32));
        let w2 = Variable::new(TensorData::zeros(DType::F32, [2]));
        let v2 = Variable::new(TensorData::scalar(0.0f32));
        let layer2 =
            Arc::new(TrackableGroup::new().with_variable("kernel", &w2).with_variable("bias", &b2));
        let net2 = TrackableGroup::new().with_variable("v", &v2).with_node("out", layer2);

        let status = restore_from_value(&net2, &saved).unwrap();
        assert!(status.is_complete());
        assert_eq!(w2.peek().to_f64_vec(), vec![1.0, 2.0]);
        assert_eq!(b2.peek().scalar_f64().unwrap(), 0.5);
        assert_eq!(v2.peek().scalar_f64().unwrap(), 1.0);
    }

    #[test]
    fn partial_matches_reported() {
        let (net, _w, _b) = model();
        let saved = save_to_value(&net);
        // Restore into an object with an extra edge and a missing one.
        let w2 = Variable::new(TensorData::zeros(DType::F32, [2]));
        let extra = Variable::new(TensorData::scalar(0.0f32));
        let layer2 = Arc::new(
            TrackableGroup::new().with_variable("kernel", &w2).with_variable("gamma", &extra),
        );
        let net2 = TrackableGroup::new().with_node("out", layer2);
        let status = restore_from_value(&net2, &saved).unwrap();
        assert_eq!(status.restored_variables, 1);
        assert!(status.unmatched_in_object.contains(&"out/gamma".to_string()));
        assert!(status.unmatched_in_checkpoint.contains(&"v".to_string()));
        assert!(status.unmatched_in_checkpoint.iter().any(|p| p == "out/bias"));
        assert!(!status.is_complete());
    }

    #[test]
    fn shape_mismatch_fails() {
        let (net, _, _) = model();
        let saved = save_to_value(&net);
        let wrong = Variable::new(TensorData::zeros(DType::F32, [3]));
        let layer = Arc::new(TrackableGroup::new().with_variable("kernel", &wrong));
        let net2 = TrackableGroup::new()
            .with_variable("v", &Variable::new(TensorData::scalar(0.0f32)))
            .with_node("out", layer);
        assert!(restore_from_value(&net2, &saved).is_err());
    }

    #[test]
    fn misc_state_round_trips() {
        struct Counter(Mutex<i64>);
        impl MutableState for Counter {
            fn save_state(&self) -> Value {
                Value::Int(*self.0.lock())
            }
            fn restore_state(&self, v: &Value) -> Result<(), String> {
                *self.0.lock() = v.as_i64().ok_or("expected int")?;
                Ok(())
            }
        }
        let counter = Arc::new(Counter(Mutex::new(42)));
        let g = TrackableGroup::new().with_state("step", counter.clone());
        let saved = save_to_value(&g);
        *counter.0.lock() = 0;
        let status = restore_from_value(&g, &saved).unwrap();
        assert_eq!(status.restored_state, 1);
        assert_eq!(*counter.0.lock(), 42);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("tfe_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let (net, w, _) = model();
        save(&net, &path).unwrap();
        w.restore(TensorData::zeros(DType::F32, [2])).unwrap();
        let status = restore(&net, &path).unwrap();
        assert!(status.is_complete());
        assert_eq!(w.peek().to_f64_vec(), vec![1.0, 2.0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_variables_saved_once() {
        let shared = Variable::new(TensorData::scalar(7.0f32));
        let a = Arc::new(TrackableGroup::new().with_variable("w", &shared));
        let g = TrackableGroup::new().with_node("left", a.clone()).with_node("right", a);
        let v = save_to_value(&g);
        // One object root + one shared child object + one variable node.
        let nodes = v.get("nodes").and_then(Value::as_array).unwrap();
        let var_nodes = nodes
            .iter()
            .filter(|n| n.get("kind").and_then(Value::as_str) == Some("variable"))
            .count();
        assert_eq!(var_nodes, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::trackable::TrackableGroup;
    use proptest::prelude::*;
    use tfe_runtime::Variable;
    use tfe_tensor::{DType, TensorData};

    /// Recipe for a random trackable tree.
    #[derive(Debug, Clone)]
    enum TreeSpec {
        Var(Vec<f64>),
        Group(Vec<(String, TreeSpec)>),
    }

    fn arb_tree() -> impl Strategy<Value = TreeSpec> {
        let leaf = prop::collection::vec(-10.0f64..10.0, 1..4).prop_map(TreeSpec::Var);
        leaf.prop_recursive(3, 16, 3, |inner| {
            prop::collection::btree_map("[a-z]{1,5}", inner, 1..4)
                .prop_map(|m| TreeSpec::Group(m.into_iter().collect()))
        })
    }

    fn build(spec: &TreeSpec, vars: &mut Vec<Variable>) -> TrackableGroup {
        match spec {
            TreeSpec::Var(vals) => {
                let v = Variable::new(TensorData::from_f64_vec(
                    DType::F64,
                    vals.clone(),
                    tfe_tensor::Shape::from([vals.len()]),
                ));
                vars.push(v.clone());
                TrackableGroup::new().with_variable("value", &v)
            }
            TreeSpec::Group(children) => {
                let mut g = TrackableGroup::new();
                for (name, child) in children {
                    g = g.with_node(name, Arc::new(build(child, vars)));
                }
                g
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Save → perturb → restore recovers every variable, and the
        /// status reports a complete two-way match, for arbitrary trees.
        #[test]
        fn random_trees_round_trip(spec in arb_tree()) {
            let mut vars = Vec::new();
            let root = build(&spec, &mut vars);
            let originals: Vec<Vec<f64>> =
                vars.iter().map(|v| v.peek().to_f64_vec()).collect();
            let saved = save_to_value(&root);
            for v in &vars {
                v.restore(TensorData::zeros(v.dtype(), v.shape().clone())).unwrap();
            }
            let status = restore_from_value(&root, &saved).unwrap();
            prop_assert!(status.is_complete(), "{:?}", status);
            prop_assert_eq!(status.restored_variables, vars.len());
            for (v, orig) in vars.iter().zip(&originals) {
                prop_assert_eq!(&v.peek().to_f64_vec(), orig);
            }
            // Round trip through actual JSON text as well.
            let text = saved.to_json();
            let reparsed = tfe_encode::Value::parse(&text).unwrap();
            let status2 = restore_from_value(&root, &reparsed).unwrap();
            prop_assert!(status2.is_complete());
        }

        /// Restoring into a *structurally identical* tree with fresh
        /// variables works regardless of creation order (the §4.3 claim).
        #[test]
        fn random_trees_restore_into_fresh_copies(spec in arb_tree()) {
            let mut vars_a = Vec::new();
            let root_a = build(&spec, &mut vars_a);
            let saved = save_to_value(&root_a);
            let mut vars_b = Vec::new();
            let root_b = build(&spec, &mut vars_b);
            for v in &vars_b {
                v.restore(TensorData::zeros(v.dtype(), v.shape().clone())).unwrap();
            }
            let status = restore_from_value(&root_b, &saved).unwrap();
            prop_assert!(status.is_complete());
            for (a, b) in vars_a.iter().zip(&vars_b) {
                prop_assert_eq!(a.peek().to_f64_vec(), b.peek().to_f64_vec());
            }
        }
    }
}
