//! The trackable object graph (§4.3).
//!
//! Program state lives in objects; each object exposes its stateful
//! children through *named edges* (attribute names in the paper's Listing 3
//! / Figure 1). Checkpointing serializes this directed graph alongside the
//! values, and restoring performs a greedy, local, name-based matching —
//! no global variable names, no creation-order dependence.

use std::sync::Arc;
use tfe_encode::Value;
use tfe_runtime::Variable;

/// Miscellaneous non-variable state that can be checkpointed (dataset
/// iterator positions, RNG states, plain host values — §4.3 lists these
/// explicitly).
pub trait MutableState: Send + Sync {
    /// Serialize the current state.
    fn save_state(&self) -> Value;
    /// Restore from a previously-serialized state.
    ///
    /// # Errors
    /// Malformed or incompatible payloads.
    fn restore_state(&self, value: &Value) -> Result<(), String>;
}

/// One outgoing edge of a trackable object.
#[derive(Clone)]
pub enum TrackableChild {
    /// A variable leaf.
    Variable(Variable),
    /// A nested trackable object.
    Node(Arc<dyn Trackable>),
    /// Serializable miscellaneous state.
    State(Arc<dyn MutableState>),
}

/// An object that owns checkpointable state, directly or through children.
pub trait Trackable: Send + Sync {
    /// The named edges of this object, in a stable order.
    fn children(&self) -> Vec<(String, TrackableChild)>;
}

/// A simple container: a trackable with explicitly-registered edges. Useful
/// as a checkpoint root ("ticking `model` and `optimizer` onto a
/// `Checkpoint`" in TF parlance).
#[derive(Default, Clone)]
pub struct TrackableGroup {
    entries: Vec<(String, TrackableChild)>,
}

impl TrackableGroup {
    /// An empty group.
    pub fn new() -> TrackableGroup {
        TrackableGroup::default()
    }

    /// Add a named variable edge.
    pub fn with_variable(mut self, name: &str, v: &Variable) -> TrackableGroup {
        self.entries.push((name.to_string(), TrackableChild::Variable(v.clone())));
        self
    }

    /// Add a named child object edge.
    pub fn with_node(mut self, name: &str, node: Arc<dyn Trackable>) -> TrackableGroup {
        self.entries.push((name.to_string(), TrackableChild::Node(node)));
        self
    }

    /// Add a named miscellaneous-state edge.
    pub fn with_state(mut self, name: &str, state: Arc<dyn MutableState>) -> TrackableGroup {
        self.entries.push((name.to_string(), TrackableChild::State(state)));
        self
    }
}

impl Trackable for TrackableGroup {
    fn children(&self) -> Vec<(String, TrackableChild)> {
        self.entries.clone()
    }
}

/// A `Vec`-like trackable whose edges are element indices — mirrors how
/// Keras tracks layer lists.
pub struct TrackableList {
    items: Vec<Arc<dyn Trackable>>,
}

impl TrackableList {
    /// Wrap a list of trackables.
    pub fn new(items: Vec<Arc<dyn Trackable>>) -> TrackableList {
        TrackableList { items }
    }
}

impl Trackable for TrackableList {
    fn children(&self) -> Vec<(String, TrackableChild)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, item)| (i.to_string(), TrackableChild::Node(item.clone())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_tensor::TensorData;

    #[test]
    fn group_edges_are_ordered() {
        let v1 = Variable::new(TensorData::scalar(1.0f32));
        let v2 = Variable::new(TensorData::scalar(2.0f32));
        let g = TrackableGroup::new().with_variable("a", &v1).with_variable("b", &v2);
        let children = g.children();
        assert_eq!(children.len(), 2);
        assert_eq!(children[0].0, "a");
        assert_eq!(children[1].0, "b");
    }

    #[test]
    fn nested_groups() {
        let v = Variable::new(TensorData::scalar(3.0f32));
        let inner = Arc::new(TrackableGroup::new().with_variable("w", &v));
        let outer = TrackableGroup::new().with_node("layer", inner);
        let children = outer.children();
        assert!(matches!(children[0].1, TrackableChild::Node(_)));
    }

    #[test]
    fn list_edges_are_indices() {
        let v = Variable::new(TensorData::scalar(3.0f32));
        let item: Arc<dyn Trackable> = Arc::new(TrackableGroup::new().with_variable("w", &v));
        let list = TrackableList::new(vec![item.clone(), item]);
        let children = list.children();
        assert_eq!(children[0].0, "0");
        assert_eq!(children[1].0, "1");
    }
}
