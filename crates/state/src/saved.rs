//! SavedFunction export/import: serialize a trace for execution without the
//! tracer (§4.3: "staging enables serializing the program for use without a
//! Python interpreter ... a production environment that executes the trace
//! using TensorFlow's C++ API").
//!
//! A bundle contains the entry graph function, the transitive closure of
//! the graph functions it calls, the values of its captured tensors, and
//! the values of every variable it references. Importing recreates fresh
//! variables and rewrites variable references, so a bundle is
//! self-contained and independent of the process that produced it.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::Path;
use std::sync::Arc;
use tfe_core::ConcreteFunction;
use tfe_encode::Value;
use tfe_graph::serial::{
    function_from_value, function_to_value, tensor_from_value, tensor_to_value,
};
use tfe_graph::GraphFunction;
use tfe_ops::AttrValue;
use tfe_runtime::{context, RuntimeError, Tensor, Variable};

/// Errors from SavedFunction export/import.
#[derive(Debug, Clone, PartialEq)]
pub enum SavedError {
    /// The value is not a saved-function bundle (wrong/missing format tag).
    Format,
    /// A required bundle field is missing or has the wrong type.
    Missing(&'static str),
    /// A nested tensor or function failed structural decode.
    Decode(String),
    /// The bundle references a variable id it does not define.
    UnknownVariable(i64),
    /// Capture count disagrees with the entry function's signature.
    CaptureArity {
        /// Captures the entry signature declares.
        expected: usize,
        /// Captures the bundle actually carries.
        got: usize,
    },
    /// Export-side failure (symbolic capture, dead variable, missing
    /// function).
    Export(String),
    /// File I/O or JSON parse failure.
    Io(String),
}

impl std::fmt::Display for SavedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SavedError::Format => {
                write!(f, "saved function error: not a tfe saved-function bundle")
            }
            SavedError::Missing(field) => {
                write!(f, "saved function error: missing or malformed field `{field}`")
            }
            SavedError::Decode(msg) => write!(f, "saved function error: {msg}"),
            SavedError::UnknownVariable(id) => {
                write!(f, "saved function error: bundle references unknown variable {id}")
            }
            SavedError::CaptureArity { expected, got } => {
                write!(
                    f,
                    "saved function error: bundle has {got} captures, entry expects {expected}"
                )
            }
            SavedError::Export(msg) => write!(f, "saved function export error: {msg}"),
            SavedError::Io(msg) => write!(f, "saved function error: {msg}"),
        }
    }
}

impl std::error::Error for SavedError {}

fn err(msg: impl Into<String>) -> SavedError {
    SavedError::Export(msg.into())
}

/// Export a concrete function (and everything it needs) to a JSON value.
///
/// # Errors
/// Symbolic captures (the function must be traced at the top level) or dead
/// variables.
pub fn export_to_value(concrete: &ConcreteFunction) -> Result<Value, SavedError> {
    // Transitive closure of called functions.
    let mut functions: Vec<Arc<GraphFunction>> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut queue: VecDeque<String> = VecDeque::new();
    queue.push_back(concrete.function.name.clone());
    while let Some(name) = queue.pop_front() {
        if !seen.insert(name.clone()) {
            continue;
        }
        let f = context::library()
            .get(&name)
            .ok_or_else(|| err(format!("function `{name}` missing from library")))?;
        for callee in f.callee_names() {
            queue.push_back(callee);
        }
        functions.push(f);
    }

    // Captured tensors (must be concrete).
    let captures: Vec<Value> = concrete
        .captures
        .iter()
        .map(|t| {
            t.value()
                .map(|d| tensor_to_value(&d))
                .map_err(|e| err(format!("cannot export symbolic capture: {e}")))
        })
        .collect::<Result<_, _>>()?;

    // Referenced variables (ids collected from every function in the
    // closure, not just the entry).
    let mut var_ids: HashSet<i64> = concrete.var_ids.iter().copied().collect();
    for f in &functions {
        for node in &f.nodes {
            if let Ok(id) = node.attrs.int("var_id") {
                var_ids.insert(id);
            }
        }
    }
    let mut var_ids: Vec<i64> = var_ids.into_iter().collect();
    var_ids.sort_unstable();
    let variables: Vec<Value> = var_ids
        .iter()
        .map(|&id| {
            let storage = tfe_runtime::variable_registry()
                .resolve(id as u64)
                .map_err(|e| err(format!("variable {id}: {e}")))?;
            Ok(Value::object([
                ("id".to_string(), Value::Int(id)),
                ("value".to_string(), tensor_to_value(&storage.value())),
            ]))
        })
        .collect::<Result<_, SavedError>>()?;

    Ok(Value::object([
        ("format".to_string(), Value::str("tfe-saved-function-v1")),
        ("entry".to_string(), Value::str(concrete.function.name.clone())),
        (
            "functions".to_string(),
            Value::Array(functions.iter().map(|f| function_to_value(f)).collect()),
        ),
        ("captures".to_string(), Value::Array(captures)),
        ("variables".to_string(), Value::Array(variables)),
    ]))
}

/// Export to a file.
///
/// # Errors
/// Export or I/O failures.
pub fn export(concrete: &ConcreteFunction, path: impl AsRef<Path>) -> Result<(), SavedError> {
    let v = export_to_value(concrete)?;
    std::fs::write(path, v.to_json()).map_err(|e| err(format!("write failed: {e}")))
}

/// A function loaded from a SavedFunction bundle, ready to execute.
pub struct LoadedFunction {
    entry: String,
    n_args: usize,
    /// Expected (dtype, symbolic shape) per non-capture argument.
    arg_sigs: Vec<(tfe_tensor::DType, tfe_ops::SymShape)>,
    captures: Vec<Tensor>,
    /// Recreated variables, keyed by their id in the *bundle*.
    pub variables: HashMap<i64, Variable>,
    stateful: bool,
}

impl LoadedFunction {
    /// Number of (non-capture) tensor arguments the entry function takes.
    pub fn num_args(&self) -> usize {
        self.n_args
    }

    /// The entry function's name in the library.
    pub fn entry_name(&self) -> &str {
        &self.entry
    }

    /// Expected (dtype, symbolic shape) of each non-capture argument.
    pub fn arg_sigs(&self) -> &[(tfe_tensor::DType, tfe_ops::SymShape)] {
        &self.arg_sigs
    }

    /// Invoke the loaded graph function.
    ///
    /// Arguments are validated up front against the entry signature so a
    /// malformed request fails with a typed error here rather than a panic
    /// (or an opaque internal error) deep inside the executor.
    ///
    /// # Errors
    /// Arity, dtype, or shape mismatches; execution failures.
    pub fn call(&self, args: &[&Tensor]) -> Result<Vec<Tensor>, RuntimeError> {
        if args.len() != self.n_args {
            return Err(RuntimeError::Op(tfe_ops::OpError::Arity {
                op: self.entry.clone(),
                expected: format!("{} arguments", self.n_args),
                got: args.len(),
            }));
        }
        for (i, (arg, (dtype, shape))) in args.iter().zip(&self.arg_sigs).enumerate() {
            if arg.dtype() != *dtype {
                return Err(tfe_tensor::TensorError::DTypeMismatch {
                    expected: format!("{dtype:?} for argument {i} of `{}`", self.entry),
                    got: arg.dtype(),
                }
                .into());
            }
            let got = arg.shape()?;
            if !shape.matches(&got) {
                return Err(tfe_tensor::TensorError::ShapeMismatch {
                    expected: format!("{shape} for argument {i} of `{}`", self.entry),
                    got,
                }
                .into());
            }
        }
        let f = context::library()
            .get(&self.entry)
            .ok_or_else(|| RuntimeError::UnknownFunction(self.entry.clone()))?;
        let mut inputs: Vec<Tensor> = args.iter().map(|&t| t.clone()).collect();
        inputs.extend(self.captures.iter().cloned());
        let (d, s) = tfe_ops::catalog::encode_sig(&f.output_sigs());
        let attrs = tfe_ops::Attrs::new()
            .with("function", self.entry.clone())
            .with("stateful", self.stateful)
            .with("out_dtypes", d)
            .with("out_shapes", s);
        context::execute("call", &inputs, attrs)
    }
}

static LOAD_COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Import a bundle, recreating variables and registering the graph
/// functions under fresh names.
///
/// # Errors
/// Malformed bundles.
pub fn import_from_value(v: &Value) -> Result<LoadedFunction, SavedError> {
    tfe_core::init();
    if v.get("format").and_then(Value::as_str) != Some("tfe-saved-function-v1") {
        return Err(SavedError::Format);
    }
    let entry = v.get("entry").and_then(Value::as_str).ok_or(SavedError::Missing("entry"))?;
    let suffix = LOAD_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);

    // Recreate variables with fresh ids.
    let mut var_map: HashMap<i64, Variable> = HashMap::new();
    for vv in
        v.get("variables").and_then(Value::as_array).ok_or(SavedError::Missing("variables"))?
    {
        let id =
            vv.get("id").and_then(Value::as_i64).ok_or(SavedError::Missing("variables[].id"))?;
        let data =
            tensor_from_value(vv.get("value").ok_or(SavedError::Missing("variables[].value"))?)
                .map_err(|e| SavedError::Decode(e.to_string()))?;
        var_map.insert(id, Variable::new(data));
    }
    let id_map: HashMap<i64, i64> = var_map.iter().map(|(old, v)| (*old, v.id() as i64)).collect();

    // Load functions, renaming them and rewriting references.
    let functions =
        v.get("functions").and_then(Value::as_array).ok_or(SavedError::Missing("functions"))?;
    let mut name_map: HashMap<String, String> = HashMap::new();
    let mut loaded: Vec<GraphFunction> = Vec::new();
    for fv in functions {
        let f = function_from_value(fv).map_err(|e| SavedError::Decode(e.to_string()))?;
        let new_name = format!("{}__loaded{suffix}", f.name);
        name_map.insert(f.name.clone(), new_name);
        loaded.push(f);
    }
    let mut entry_stateful = false;
    for mut f in loaded {
        let new_name = name_map[&f.name].clone();
        if f.name == entry {
            entry_stateful = f.is_stateful();
        }
        f.name = new_name;
        for node in &mut f.nodes {
            // Remap function references.
            for key in ["function", "then_fn", "else_fn", "cond_fn", "body_fn"] {
                if let Some(AttrValue::Str(name)) = node.attrs.get(key) {
                    if let Some(new) = name_map.get(name) {
                        node.attrs.set(key, new.clone());
                    }
                }
            }
            // Remap variable references.
            if let Ok(old) = node.attrs.int("var_id") {
                let new = id_map.get(&old).ok_or(SavedError::UnknownVariable(old))?;
                node.attrs.set("var_id", *new);
            }
            if let Ok(list) = node.attrs.int_list("var_ids") {
                let new: Result<Vec<i64>, SavedError> = list
                    .iter()
                    .map(|old| id_map.get(old).copied().ok_or(SavedError::UnknownVariable(*old)))
                    .collect();
                node.attrs.set("var_ids", new?);
            }
        }
        context::library().insert(f);
    }

    let entry_new = name_map
        .get(entry)
        .cloned()
        .ok_or_else(|| SavedError::Decode(format!("entry function `{entry}` not in bundle")))?;
    let entry_fn = context::library()
        .get(&entry_new)
        .ok_or_else(|| SavedError::Decode("entry function failed to load".to_string()))?;
    let captures: Vec<Tensor> = v
        .get("captures")
        .and_then(Value::as_array)
        .ok_or(SavedError::Missing("captures"))?
        .iter()
        .map(|cv| {
            tensor_from_value(cv)
                .map(Tensor::from_data)
                .map_err(|e| SavedError::Decode(e.to_string()))
        })
        .collect::<Result<_, _>>()?;
    if captures.len() != entry_fn.num_captures {
        return Err(SavedError::CaptureArity {
            expected: entry_fn.num_captures,
            got: captures.len(),
        });
    }
    // `function_from_value` guarantees num_captures <= inputs.len().
    Ok(LoadedFunction {
        entry: entry_new,
        n_args: entry_fn.inputs.len() - entry_fn.num_captures,
        arg_sigs: entry_fn.arg_sigs(),
        captures,
        variables: var_map,
        stateful: entry_stateful,
    })
}

/// Import from a file.
///
/// # Errors
/// I/O or decode failures.
pub fn import(path: impl AsRef<Path>) -> Result<LoadedFunction, SavedError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| SavedError::Io(format!("read failed: {e}")))?;
    let v = Value::parse(&text).map_err(|e| SavedError::Io(format!("parse failed: {e}")))?;
    import_from_value(&v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_core::{function, function1, Arg};
    use tfe_runtime::api;
    use tfe_tensor::{DType, TensorData};

    #[test]
    fn stateless_function_round_trips() {
        let f = function1("savable", |x| api::relu(&api::add(x, x)?));
        let conc = f.concrete_for(&[Arg::from(&api::zeros(DType::F32, [3]))]).unwrap();
        let bundle = export_to_value(&conc).unwrap();
        let loaded = import_from_value(&bundle).unwrap();
        assert_eq!(loaded.num_args(), 1);
        let x = api::constant(vec![-1.0f32, 0.5, 2.0], [3]).unwrap();
        let y = loaded.call(&[&x]).unwrap();
        assert_eq!(y[0].to_f64_vec().unwrap(), vec![0.0, 1.0, 4.0]);
    }

    #[test]
    fn captures_serialized_by_value() {
        let k = api::constant(vec![10.0f32, 100.0], [2]).unwrap();
        let f = {
            let k = k.clone();
            function1("cap_save", move |x| api::mul(x, &k))
        };
        let conc = f.concrete_for(&[Arg::from(&api::zeros(DType::F32, [2]))]).unwrap();
        let bundle = export_to_value(&conc).unwrap();
        let loaded = import_from_value(&bundle).unwrap();
        let y = loaded.call(&[&api::ones(DType::F32, [2])]).unwrap();
        assert_eq!(y[0].to_f64_vec().unwrap(), vec![10.0, 100.0]);
    }

    #[test]
    fn variables_recreated_and_rewired() {
        let v = Variable::new(TensorData::scalar(5.0f32));
        let f = {
            let v = v.clone();
            function("var_save", move |args| {
                let x = args[0].as_tensor().unwrap();
                v.assign_add(x)?;
                Ok(vec![v.read()?])
            })
        };
        let conc = f.concrete_for(&[Arg::from(&api::scalar(0.0f32))]).unwrap();
        let bundle = export_to_value(&conc).unwrap();
        let loaded = import_from_value(&bundle).unwrap();
        assert_eq!(loaded.variables.len(), 1);
        // The loaded copy has its own storage seeded from the export.
        let y = loaded.call(&[&api::scalar(1.0f32)]).unwrap();
        assert_eq!(y[0].scalar_f64().unwrap(), 6.0);
        let y = loaded.call(&[&api::scalar(1.0f32)]).unwrap();
        assert_eq!(y[0].scalar_f64().unwrap(), 7.0);
        // Original untouched.
        assert_eq!(v.peek().scalar_f64().unwrap(), 5.0);
    }

    #[test]
    fn nested_functions_exported_transitively() {
        let inner = function1("saved_inner", api::square);
        let outer = {
            let inner = inner.clone();
            function1("saved_outer", move |x| Ok(inner.call_tensors(&[x])?.remove(0)))
        };
        let conc = outer.concrete_for(&[Arg::from(&api::scalar(3.0f64))]).unwrap();
        let bundle = export_to_value(&conc).unwrap();
        let n_functions = bundle.get("functions").and_then(Value::as_array).unwrap().len();
        assert!(n_functions >= 2, "expected entry + callee, got {n_functions}");
        let loaded = import_from_value(&bundle).unwrap();
        let y = loaded.call(&[&api::scalar(4.0f64)]).unwrap();
        assert_eq!(y[0].scalar_f64().unwrap(), 16.0);
    }

    #[test]
    fn file_round_trip_and_validation() {
        let f = function1("file_save", api::neg);
        let conc = f.concrete_for(&[Arg::from(&api::scalar(1.0f32))]).unwrap();
        let dir = std::env::temp_dir().join(format!("tfe_saved_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fn.json");
        export(&conc, &path).unwrap();
        let loaded = import(&path).unwrap();
        assert_eq!(loaded.call(&[&api::scalar(2.0f32)]).unwrap()[0].scalar_f64().unwrap(), -2.0);
        // Wrong arity rejected.
        assert!(loaded.call(&[]).is_err());
        // Garbage rejected.
        assert!(import_from_value(&Value::Null).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
