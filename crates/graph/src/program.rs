//! The instruction program carried by `fused_elementwise` nodes — this
//! workspace's XLA stand-in (§4.4: compiling staged computations provides
//! "operation fusion" among other optimizations).
//!
//! A program is a small SSA register machine over the elementwise op enums
//! from `tfe-tensor`. The fusion pass compiles a group of elementwise graph
//! nodes into one [`Program`], and — once, at fusion time — lowers it to a
//! [`CompiledProgram`]: decoded instructions with a last-use register plan,
//! input-aliased reads, and a scratch-slot assignment sized for
//! cache-resident tiles. The runtime kernel fetches the compiled form from
//! the process-wide [`compiled`] cache (keyed by the encoded text), so the
//! string attribute is parsed once per distinct program, not once per call.
//!
//! Execution walks the whole program over one ~8 KiB tile at a time
//! ([`CompiledProgram::eval`]): an N-op group makes one pass over memory
//! instead of N, which is where fusion's real memory-traffic saving comes
//! from. Tile boundaries depend only on the element count
//! ([`tfe_parallel::tile_len`]) and every instruction is an element-
//! independent map, so serial and parallel runs are bit-identical — and
//! both are bit-identical to the per-instruction interpreter
//! ([`Program::eval`]), which stays behind [`set_force_interpreted`] as the
//! differential-testing reference and handles the mixed-shape/dtype
//! fallback.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;
use tfe_tensor::elementwise::{binary, unary, BinaryOp, UnaryOp};
use tfe_tensor::{lanes, Result as TResult, TensorData, TensorError};

/// One instruction; instruction `i` writes register `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Load fused-node input `k`.
    Input(usize),
    /// Apply a unary op to a register.
    Unary(UnaryOp, usize),
    /// Apply a binary op to two registers.
    Binary(BinaryOp, usize, usize),
}

/// A fused elementwise program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Instructions in execution order; instruction `i` defines register `i`.
    pub instrs: Vec<Instr>,
    /// Register holding the result.
    pub output: usize,
}

impl Program {
    /// Validate internal references.
    ///
    /// # Errors
    /// Out-of-range register or input references.
    pub fn validate(&self, num_inputs: usize) -> Result<(), String> {
        for (i, instr) in self.instrs.iter().enumerate() {
            match instr {
                Instr::Input(k) => {
                    if *k >= num_inputs {
                        return Err(format!("instr {i} reads input {k} of {num_inputs}"));
                    }
                }
                Instr::Unary(_, a) => {
                    if *a >= i {
                        return Err(format!("instr {i} reads undefined register {a}"));
                    }
                }
                Instr::Binary(_, a, b) => {
                    if *a >= i || *b >= i {
                        return Err(format!("instr {i} reads undefined register {a}/{b}"));
                    }
                }
            }
        }
        if self.output >= self.instrs.len() {
            return Err(format!("output register {} undefined", self.output));
        }
        Ok(())
    }

    /// Serialize to the compact string stored in the node attribute, e.g.
    /// `in:0;in:1;b:add:0:1;u:relu:2|3`.
    pub fn encode(&self) -> String {
        let body: Vec<String> = self
            .instrs
            .iter()
            .map(|i| match i {
                Instr::Input(k) => format!("in:{k}"),
                Instr::Unary(op, a) => format!("u:{}:{a}", op.name()),
                Instr::Binary(op, a, b) => format!("b:{}:{a}:{b}", op.name()),
            })
            .collect();
        format!("{}|{}", body.join(";"), self.output)
    }

    /// Parse the string produced by [`Program::encode`].
    ///
    /// # Errors
    /// Malformed text.
    pub fn decode(text: &str) -> Result<Program, String> {
        let (body, out) = text.rsplit_once('|').ok_or("missing output register")?;
        let output: usize = out.parse().map_err(|_| "bad output register".to_string())?;
        let mut instrs = Vec::new();
        for part in body.split(';') {
            let fields: Vec<&str> = part.split(':').collect();
            let instr = match fields.as_slice() {
                ["in", k] => Instr::Input(k.parse().map_err(|_| "bad input index")?),
                ["u", name, a] => Instr::Unary(
                    UnaryOp::from_name(name).ok_or_else(|| format!("unknown unary {name}"))?,
                    a.parse().map_err(|_| "bad register")?,
                ),
                ["b", name, a, b] => Instr::Binary(
                    BinaryOp::from_name(name).ok_or_else(|| format!("unknown binary {name}"))?,
                    a.parse().map_err(|_| "bad register")?,
                    b.parse().map_err(|_| "bad register")?,
                ),
                _ => return Err(format!("bad instruction `{part}`")),
            };
            instrs.push(instr);
        }
        let p = Program { instrs, output };
        let max_input = p
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Input(k) => Some(*k + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        p.validate(max_input).map_err(|e| format!("invalid program: {e}"))?;
        Ok(p)
    }

    /// Lower to the tile-executable form (see [`CompiledProgram`]).
    pub fn compile(self) -> CompiledProgram {
        CompiledProgram::new(self)
    }

    /// Evaluate against concrete inputs with the per-instruction
    /// interpreter: one whole-tensor pass per instruction. This is the
    /// reference the tile executor is differentially tested against; the
    /// runtime kernel goes through [`CompiledProgram::eval`] instead.
    ///
    /// # Errors
    /// Kernel errors (dtype/broadcast problems) from the underlying ops.
    pub fn eval(&self, inputs: &[&TensorData]) -> TResult<TensorData> {
        // Fast path: all-f32, identical shapes — evaluate over a small pool
        // of reused full-size buffers, reading inputs through aliases.
        if let Some(out) = self.eval_fused_f32(inputs)? {
            return Ok(out);
        }
        self.eval_generic(inputs)
    }

    /// Interpreted evaluation for same-shape f32 operands. `Instr::Input`
    /// never materializes a buffer: consumers read the source tensor's
    /// slice directly. Returns `Ok(None)` when the inputs don't qualify
    /// (mixed shapes/dtypes), in which case the generic per-instruction
    /// path runs instead.
    fn eval_fused_f32(&self, inputs: &[&TensorData]) -> TResult<Option<TensorData>> {
        use tfe_tensor::DType;
        let Some(first) = inputs.first() else { return Ok(None) };
        let shape = first.shape().clone();
        for t in inputs {
            if t.dtype() != DType::F32 || t.shape() != &shape {
                return Ok(None);
            }
        }
        let n = shape.num_elements();
        let mut ins: Vec<&[f32]> = Vec::with_capacity(inputs.len());
        for t in inputs {
            ins.push(t.as_slice::<f32>()?);
        }
        // Resolve a source register to its backing slice: input registers
        // alias the caller's tensor, compute registers their buffer.
        macro_rules! src {
            ($regs:expr, $r:expr) => {
                match self.instrs[$r] {
                    Instr::Input(k) => ins[k],
                    _ => $regs[$r].as_deref().expect("register defined"),
                }
            };
        }
        // Last-use analysis lets compute buffers be recycled.
        let mut last_use = vec![0usize; self.instrs.len()];
        for (i, instr) in self.instrs.iter().enumerate() {
            match instr {
                Instr::Input(_) => {}
                Instr::Unary(_, a) => last_use[*a] = i,
                Instr::Binary(_, a, b) => {
                    last_use[*a] = i;
                    last_use[*b] = i;
                }
            }
        }
        last_use[self.output] = usize::MAX;
        let mut regs: Vec<Option<Vec<f32>>> = vec![None; self.instrs.len()];
        let mut free: Vec<Vec<f32>> = Vec::new();
        for (i, instr) in self.instrs.iter().enumerate() {
            match instr {
                Instr::Input(_) => {} // aliased — no buffer, no copy
                Instr::Unary(op, a) => {
                    let mut buf = free.pop().unwrap_or_else(|| vec![0.0f32; n]);
                    lanes::unary_f32(*op, src!(regs, *a), &mut buf);
                    regs[i] = Some(buf);
                }
                Instr::Binary(op, a, b) => {
                    let mut buf = free.pop().unwrap_or_else(|| vec![0.0f32; n]);
                    lanes::binary_f32(*op, src!(regs, *a), src!(regs, *b), &mut buf);
                    regs[i] = Some(buf);
                }
            }
            // Recycle compute buffers whose last consumer was this instr.
            for (r, lu) in last_use.iter().enumerate() {
                if *lu == i && r != i {
                    if let Some(b) = regs[r].take() {
                        free.push(b);
                    }
                }
            }
        }
        let out = match self.instrs[self.output] {
            Instr::Input(k) => ins[k].to_vec(),
            _ => regs[self.output].take().expect("output register"),
        };
        Ok(Some(TensorData::from_vec(out, shape)?))
    }

    fn eval_generic(&self, inputs: &[&TensorData]) -> TResult<TensorData> {
        // Input registers borrow the caller's tensors instead of cloning
        // them; only compute results are owned.
        enum Reg<'a> {
            Borrowed(&'a TensorData),
            Owned(TensorData),
        }
        impl Reg<'_> {
            fn get(&self) -> &TensorData {
                match self {
                    Reg::Borrowed(t) => t,
                    Reg::Owned(t) => t,
                }
            }
        }
        let mut regs: Vec<Reg<'_>> = Vec::with_capacity(self.instrs.len());
        for instr in &self.instrs {
            let v = match instr {
                Instr::Input(k) => Reg::Borrowed(*inputs.get(*k).ok_or_else(|| {
                    TensorError::InvalidArgument(format!("fused program input {k} missing"))
                })?),
                Instr::Unary(op, a) => Reg::Owned(unary(regs[*a].get(), *op)?),
                Instr::Binary(op, a, b) => Reg::Owned(binary(regs[*a].get(), regs[*b].get(), *op)?),
            };
            regs.push(v);
        }
        Ok(match regs.swap_remove(self.output) {
            Reg::Borrowed(t) => t.clone(), // output is a bare input
            Reg::Owned(t) => t,
        })
    }

    /// Number of non-input instructions (the "fused op count").
    pub fn op_count(&self) -> usize {
        self.instrs.iter().filter(|i| !matches!(i, Instr::Input(_))).count()
    }
}

// ---------------------------------------------------------------------------
// Compiled tile executor
// ---------------------------------------------------------------------------

/// Where a compiled register lives during tile execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Alias of fused-node input `k` — read straight from the source
    /// tensor, never copied into a register buffer.
    In(usize),
    /// Scratch buffer `s` (one tile wide).
    Buf(usize),
    /// The output tile itself — the final instruction writes the result
    /// directly, no copy-out.
    Out,
}

/// One compiled instruction with resolved source/destination slots.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// `dst = op(a)`
    Unary {
        /// The op.
        op: UnaryOp,
        /// Source slot.
        a: Slot,
        /// Destination slot ([`Slot::Buf`] or [`Slot::Out`]).
        dst: Slot,
    },
    /// `dst = op(a, b)`
    Binary {
        /// The op.
        op: BinaryOp,
        /// Left source slot.
        a: Slot,
        /// Right source slot.
        b: Slot,
        /// Destination slot ([`Slot::Buf`] or [`Slot::Out`]).
        dst: Slot,
    },
}

impl Step {
    fn dst(&self) -> Slot {
        match self {
            Step::Unary { dst, .. } | Step::Binary { dst, .. } => *dst,
        }
    }
}

/// A [`Program`] lowered for tile execution: decoded once, inputs aliased,
/// scratch registers assigned by a last-use plan so the live set — and
/// therefore the tile working set — is minimal.
///
/// Built once per distinct program (at fusion time via [`compiled`]) and
/// shared by every subsequent kernel invocation, so the hot path never
/// parses the string attribute.
///
/// # Slot-plan invariant
///
/// A step's destination buffer is allocated **before** the buffers of
/// sources dying at that step are released, so `dst` never aliases a live
/// source. Tile execution relies on this: it `mem::take`s the destination
/// buffer while reading source buffers through shared borrows — safe
/// without `unsafe`, and loud (an empty-slice panic) if the invariant were
/// ever broken.
#[derive(Debug)]
pub struct CompiledProgram {
    /// The interpreted form, kept for the mixed-shape/dtype fallback.
    program: Program,
    /// Inputs the program reads (max input index + 1).
    num_inputs: usize,
    /// Compiled non-input instructions, in execution order.
    steps: Vec<Step>,
    /// Scratch buffers a tile needs live at once.
    num_bufs: usize,
    /// Where the output register lives after the last step.
    out: Slot,
}

impl CompiledProgram {
    fn new(program: Program) -> Self {
        let n = program.instrs.len();
        // last_use[r] = index of the last instruction reading register r.
        let mut last_use: Vec<Option<usize>> = vec![None; n];
        for (i, instr) in program.instrs.iter().enumerate() {
            match instr {
                Instr::Input(_) => {}
                Instr::Unary(_, a) => last_use[*a] = Some(i),
                Instr::Binary(_, a, b) => {
                    last_use[*a] = Some(i);
                    last_use[*b] = Some(i);
                }
            }
        }
        let num_inputs = program
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Input(k) => Some(*k + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let mut reg_slot: Vec<Slot> = Vec::with_capacity(n);
        let mut free: Vec<usize> = Vec::new();
        let mut num_bufs = 0usize;
        let mut steps = Vec::new();
        for (i, instr) in program.instrs.iter().enumerate() {
            if let Instr::Input(k) = instr {
                reg_slot.push(Slot::In(*k));
                continue;
            }
            // The output register writes the output tile directly when no
            // later instruction reads it back (the common case — fusion
            // emits the output last).
            let dst = if i == program.output && last_use[i].is_none() {
                Slot::Out
            } else {
                Slot::Buf(free.pop().unwrap_or_else(|| {
                    num_bufs += 1;
                    num_bufs - 1
                }))
            };
            steps.push(match *instr {
                Instr::Unary(op, a) => Step::Unary { op, a: reg_slot[a], dst },
                Instr::Binary(op, a, b) => Step::Binary { op, a: reg_slot[a], b: reg_slot[b], dst },
                Instr::Input(_) => unreachable!(),
            });
            // Release buffers whose last consumer is this instruction —
            // after `dst` was taken, upholding the slot-plan invariant.
            for (r, lu) in last_use.iter().enumerate() {
                if *lu == Some(i) && r != program.output {
                    if let Slot::Buf(s) = reg_slot[r] {
                        free.push(s);
                    }
                }
            }
            reg_slot.push(dst);
        }
        let out = reg_slot.get(program.output).copied().unwrap_or(Slot::Out);
        CompiledProgram { program, num_inputs, steps, num_bufs, out }
    }

    /// The interpreted program this was compiled from.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Number of non-input instructions.
    pub fn op_count(&self) -> usize {
        self.steps.len()
    }

    /// Scratch buffers one tile keeps live (exposed for tests/benches).
    pub fn scratch_buffers(&self) -> usize {
        self.num_bufs
    }

    /// Evaluate against concrete inputs.
    ///
    /// Same-shape all-f32 operands run the tile executor: one pass over
    /// memory for the whole program, tiles split over the shared pool with
    /// partition-independent math (bit-identical for every thread count,
    /// and bit-identical to [`Program::eval`]). Anything else — and every
    /// call while [`set_force_interpreted`] is on — falls back to the
    /// interpreter.
    ///
    /// # Errors
    /// Missing inputs or kernel errors (dtype/broadcast problems).
    pub fn eval(&self, inputs: &[&TensorData]) -> TResult<TensorData> {
        if inputs.len() < self.num_inputs {
            return Err(TensorError::InvalidArgument(format!(
                "fused program needs {} inputs, got {}",
                self.num_inputs,
                inputs.len()
            )));
        }
        if !force_interpreted() {
            if let Some(out) = self.eval_tiled_f32(inputs)? {
                return Ok(out);
            }
        }
        self.program.eval(inputs)
    }

    /// The tile executor. Returns `Ok(None)` when the inputs don't qualify
    /// (mixed shapes/dtypes) — the interpreter handles those.
    fn eval_tiled_f32(&self, inputs: &[&TensorData]) -> TResult<Option<TensorData>> {
        use tfe_tensor::DType;
        let Some(first) = inputs.first() else { return Ok(None) };
        let shape = first.shape().clone();
        for t in inputs {
            if t.dtype() != DType::F32 || t.shape() != &shape {
                return Ok(None);
            }
        }
        let mut srcs: Vec<&[f32]> = Vec::with_capacity(inputs.len());
        for t in inputs {
            srcs.push(t.as_slice::<f32>()?);
        }
        let n = shape.num_elements();
        // Tile length depends only on the working set (inputs + scratch +
        // output), never the thread count — fixed boundaries keep tiled
        // results bitwise reproducible under any parallel split.
        let tile =
            tfe_parallel::tile_len(std::mem::size_of::<f32>(), self.num_bufs + inputs.len() + 1);
        let n_tiles = n.div_ceil(tile.max(1));
        let mut span = tfe_profile::span("fused", || {
            format!("fused_tiled:{}op:{}tile", self.steps.len(), n_tiles)
        });
        if let Some(s) = span.as_mut() {
            // One read per input element plus one output write.
            s.set_bytes(((inputs.len() + 1) * n * std::mem::size_of::<f32>()) as u64);
        }
        metric_fused_elements(n as u64);
        let mut out = vec![0.0f32; n];
        let ptr = SendPtr(out.as_mut_ptr());
        tfe_parallel::par_for(n_tiles, 1, |r: std::ops::Range<usize>| {
            SCRATCH.with(|cell| {
                let mut scratch = cell.borrow_mut();
                if scratch.len() < self.num_bufs {
                    scratch.resize_with(self.num_bufs, Vec::new);
                }
                for buf in scratch.iter_mut().take(self.num_bufs) {
                    if buf.len() < tile {
                        buf.resize(tile, 0.0);
                    }
                }
                for t in r {
                    let start = t * tile;
                    let len = tile.min(n - start);
                    // SAFETY: tiles partition 0..n disjointly ([t*tile,
                    // t*tile+len) for distinct t), and par_for joins every
                    // tile before returning, so `out` outlives all views.
                    let out_tile = unsafe { ptr.slice_mut(start, len) };
                    self.run_tile(&srcs, &mut scratch, out_tile, start);
                }
            });
        });
        Ok(Some(TensorData::from_vec(out, shape)?))
    }

    /// Run every step over one tile: `out_tile` covers absolute elements
    /// `start .. start + out_tile.len()` of the flattened tensors.
    fn run_tile(&self, srcs: &[&[f32]], bufs: &mut [Vec<f32>], out_tile: &mut [f32], start: usize) {
        let len = out_tile.len();
        fn resolve<'a>(
            slot: Slot,
            srcs: &[&'a [f32]],
            bufs: &'a [Vec<f32>],
            start: usize,
            len: usize,
        ) -> &'a [f32] {
            match slot {
                Slot::In(k) => &srcs[k][start..start + len],
                Slot::Buf(s) => &bufs[s][..len],
                Slot::Out => unreachable!("the output tile is never a source"),
            }
        }
        macro_rules! apply {
            ($step:expr, $dst:expr) => {
                match *$step {
                    Step::Unary { op, a, .. } => {
                        lanes::unary_f32(op, resolve(a, srcs, bufs, start, len), $dst)
                    }
                    Step::Binary { op, a, b, .. } => lanes::binary_f32(
                        op,
                        resolve(a, srcs, bufs, start, len),
                        resolve(b, srcs, bufs, start, len),
                        $dst,
                    ),
                }
            };
        }
        for step in &self.steps {
            match step.dst() {
                Slot::Out => apply!(step, out_tile),
                Slot::Buf(s) => {
                    // Slot-plan invariant: `s` aliases no live source, so
                    // taking it out cannot disturb this step's reads.
                    let mut buf = std::mem::take(&mut bufs[s]);
                    apply!(step, &mut buf[..len]);
                    bufs[s] = buf;
                }
                Slot::In(_) => unreachable!("inputs are never written"),
            }
        }
        // Degenerate programs (output read back later, or output == input)
        // finish with one tile-local copy.
        match self.out {
            Slot::Out => {}
            Slot::In(k) => out_tile.copy_from_slice(&srcs[k][start..start + len]),
            Slot::Buf(s) => out_tile.copy_from_slice(&bufs[s][..len]),
        }
    }
}

thread_local! {
    /// Per-thread tile scratch, reused across tiles and programs so the
    /// executor never allocates on the steady-state hot path.
    static SCRATCH: std::cell::RefCell<Vec<Vec<f32>>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// A raw pointer that may cross thread boundaries; tiles receive disjoint
/// mutable views of the output buffer through it.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: every tile touches a disjoint element range and `par_for` joins
// all tiles before the buffer is moved or dropped.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Mutable subslice `[start, start + len)`.
    ///
    /// # Safety
    /// The range must be in bounds and disjoint from every other live view
    /// of the buffer.
    unsafe fn slice_mut<'a>(self, start: usize, len: usize) -> &'a mut [T] {
        std::slice::from_raw_parts_mut(self.0.add(start), len)
    }
}

// ---------------------------------------------------------------------------
// Process-wide compile cache
// ---------------------------------------------------------------------------

static FORCE_INTERPRETED: AtomicBool = AtomicBool::new(false);

/// Force [`CompiledProgram::eval`] onto the per-instruction interpreter
/// (the differential-testing reference). Returns the previous setting.
/// Safe to flip at any time: tiled and interpreted paths are bit-identical,
/// this only changes which one runs.
pub fn set_force_interpreted(on: bool) -> bool {
    FORCE_INTERPRETED.swap(on, Ordering::SeqCst)
}

/// Whether the interpreter is currently forced.
pub fn force_interpreted() -> bool {
    FORCE_INTERPRETED.load(Ordering::Relaxed)
}

type CompileCache = RwLock<HashMap<String, Arc<CompiledProgram>>>;

static COMPILED: OnceLock<CompileCache> = OnceLock::new();

fn metric_fused_elements(n: u64) {
    tfe_metrics::static_counter!(
        "tfe_fused_tiled_elements_total",
        "Elements processed by the fused tile executor"
    )
    .add(n);
}

/// Fetch (or build) the compiled form of an encoded program.
///
/// The first call for a given text decodes, validates, and compiles it —
/// under a `fused`/`compile` profiler span so traces show exactly when
/// parsing happens; every later call is a read-locked map hit. The fusion
/// pass warms this cache at fusion time, so steady-state kernel
/// invocations never parse.
///
/// # Errors
/// Malformed program text (same conditions as [`Program::decode`]).
pub fn compiled(text: &str) -> Result<Arc<CompiledProgram>, String> {
    let cache = COMPILED.get_or_init(Default::default);
    if let Some(p) = cache.read().get(text) {
        tfe_metrics::static_counter!(
            "tfe_fused_compile_cache_hits_total",
            "Fused-program compile-cache hits"
        )
        .inc();
        return Ok(p.clone());
    }
    let _span = tfe_profile::span("fused", || "compile".to_string());
    let program = Program::decode(text)?;
    let built = Arc::new(program.compile());
    tfe_metrics::static_counter!(
        "tfe_fused_compile_total",
        "Fused programs decoded and compiled (cache misses)"
    )
    .inc();
    // A racing compile of the same text may have won; keep the first.
    Ok(cache.write().entry(text.to_string()).or_insert(built).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_tensor::Shape;

    fn relu_of_sum() -> Program {
        Program {
            instrs: vec![
                Instr::Input(0),
                Instr::Input(1),
                Instr::Binary(BinaryOp::Add, 0, 1),
                Instr::Unary(UnaryOp::Relu, 2),
            ],
            output: 3,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = relu_of_sum();
        let text = p.encode();
        assert_eq!(text, "in:0;in:1;b:add:0:1;u:relu:2|3");
        assert_eq!(Program::decode(&text).unwrap(), p);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Program::decode("").is_err());
        assert!(Program::decode("in:0|5").is_err()); // undefined output reg
        assert!(Program::decode("u:nosuch:0|0").is_err());
        assert!(Program::decode("b:add:0:1|0").is_err()); // forward reference
        assert!(Program::decode("in:0;u:relu:0").is_err()); // missing output
    }

    #[test]
    fn eval_matches_composition() {
        let p = relu_of_sum();
        let a = TensorData::from_vec(vec![1.0f32, -5.0], Shape::from([2])).unwrap();
        let b = TensorData::from_vec(vec![2.0f32, 2.0], Shape::from([2])).unwrap();
        let r = p.eval(&[&a, &b]).unwrap();
        assert_eq!(r.to_f64_vec(), vec![3.0, 0.0]);
    }

    #[test]
    fn eval_broadcasts() {
        let p = Program {
            instrs: vec![Instr::Input(0), Instr::Input(1), Instr::Binary(BinaryOp::Mul, 0, 1)],
            output: 2,
        };
        let a = TensorData::from_vec(vec![1.0f32, 2.0], Shape::from([2, 1])).unwrap();
        let b = TensorData::scalar(10.0f32);
        let r = p.eval(&[&a, &b]).unwrap();
        assert_eq!(r.shape().dims(), &[2, 1]);
        assert_eq!(r.to_f64_vec(), vec![10.0, 20.0]);
    }

    #[test]
    fn op_count_ignores_inputs() {
        assert_eq!(relu_of_sum().op_count(), 2);
    }

    #[test]
    fn validate_bounds() {
        let p = relu_of_sum();
        assert!(p.validate(2).is_ok());
        assert!(p.validate(1).is_err()); // input 1 out of range
    }

    // -- compiled executor --

    fn f32s(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i % 97) as f32 - 48.0) * 0.125).collect()
    }

    fn tensor(v: Vec<f32>) -> TensorData {
        let n = v.len();
        TensorData::from_vec(v, Shape::from([n])).unwrap()
    }

    fn bits(t: &TensorData) -> Vec<u32> {
        t.as_slice::<f32>().unwrap().iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn compiled_output_writes_out_tile_directly() {
        let c = relu_of_sum().compile();
        assert_eq!(c.op_count(), 2);
        assert_eq!(c.out, Slot::Out);
        // add needs one scratch buffer; relu writes the output directly.
        assert_eq!(c.scratch_buffers(), 1);
    }

    #[test]
    fn compiled_matches_interpreter_bitwise_across_tile_boundaries() {
        let c = relu_of_sum().compile();
        // Odd lengths around the tile and lane widths.
        for n in [0usize, 1, 7, 2048, 2049, 4096, 4097, 10_000] {
            let a = tensor(f32s(n));
            let b = tensor(f32s(n).iter().map(|x| -x * 0.5).collect());
            let tiled = c.eval(&[&a, &b]).unwrap();
            let interp = c.program().eval(&[&a, &b]).unwrap();
            assert_eq!(bits(&tiled), bits(&interp), "n = {n}");
        }
    }

    #[test]
    fn compiled_long_chain_recycles_buffers() {
        // in0; r1=neg(in0); r2=square(r1); r3=add(r2,in0); r4=relu(r3);
        // r5=mul(r4,r2)... a chain with overlapping lifetimes.
        let p = Program {
            instrs: vec![
                Instr::Input(0),
                Instr::Unary(UnaryOp::Neg, 0),
                Instr::Unary(UnaryOp::Square, 1),
                Instr::Binary(BinaryOp::Add, 2, 0),
                Instr::Unary(UnaryOp::Relu, 3),
                Instr::Binary(BinaryOp::Mul, 4, 2),
                Instr::Unary(UnaryOp::Sigmoid, 5),
            ],
            output: 6,
        };
        let c = p.compile();
        // r2 lives across two steps, so the plan needs >1 buffer, but far
        // fewer than one per instruction.
        assert!(c.scratch_buffers() >= 2 && c.scratch_buffers() <= 3, "{}", c.scratch_buffers());
        let a = tensor(f32s(5000));
        let tiled = c.eval(&[&a]).unwrap();
        let interp = c.program().eval(&[&a]).unwrap();
        assert_eq!(bits(&tiled), bits(&interp));
    }

    #[test]
    fn compiled_output_is_input_edge_case() {
        // `in:0|0` — the output aliases an input; eval must copy.
        let c = Program::decode("in:0|0").unwrap().compile();
        let a = tensor(f32s(3000));
        let r = c.eval(&[&a]).unwrap();
        assert_eq!(bits(&r), bits(&a));
    }

    #[test]
    fn compiled_mixed_shape_falls_back() {
        let c = Program::decode("in:0;in:1;b:mul:0:1|2").unwrap().compile();
        let a = TensorData::from_vec(vec![1.0f32, 2.0], Shape::from([2, 1])).unwrap();
        let b = TensorData::scalar(10.0f32);
        let r = c.eval(&[&a, &b]).unwrap();
        assert_eq!(r.shape().dims(), &[2, 1]);
        assert_eq!(r.to_f64_vec(), vec![10.0, 20.0]);
    }

    #[test]
    fn compiled_missing_input_is_error() {
        let c = Program::decode("in:0;in:1;b:add:0:1|2").unwrap().compile();
        let a = tensor(f32s(4));
        assert!(c.eval(&[&a]).is_err());
    }

    #[test]
    fn force_interpreted_round_trips() {
        let prev = set_force_interpreted(true);
        assert!(force_interpreted());
        set_force_interpreted(prev);
    }

    #[test]
    fn compile_cache_returns_same_instance() {
        let text = "in:0;u:relu:0;u:neg:1|2";
        let a = compiled(text).unwrap();
        let b = compiled(text).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(compiled("garbage").is_err());
    }
}
