//! The instruction program carried by `fused_elementwise` nodes — this
//! workspace's XLA stand-in (§4.4: compiling staged computations provides
//! "operation fusion" among other optimizations).
//!
//! A program is a small SSA register machine over the elementwise op enums
//! from `tfe-tensor`. The fusion pass compiles a group of elementwise graph
//! nodes into one program; the runtime kernel evaluates the whole program
//! in a single pass, which is where the (real and modeled) memory-traffic
//! savings come from.

use tfe_tensor::elementwise::{binary, unary, BinaryOp, UnaryOp};
use tfe_tensor::{Result as TResult, TensorData, TensorError};

/// One instruction; instruction `i` writes register `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Load fused-node input `k`.
    Input(usize),
    /// Apply a unary op to a register.
    Unary(UnaryOp, usize),
    /// Apply a binary op to two registers.
    Binary(BinaryOp, usize, usize),
}

/// A fused elementwise program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Instructions in execution order; instruction `i` defines register `i`.
    pub instrs: Vec<Instr>,
    /// Register holding the result.
    pub output: usize,
}

impl Program {
    /// Validate internal references.
    ///
    /// # Errors
    /// Out-of-range register or input references.
    pub fn validate(&self, num_inputs: usize) -> Result<(), String> {
        for (i, instr) in self.instrs.iter().enumerate() {
            match instr {
                Instr::Input(k) => {
                    if *k >= num_inputs {
                        return Err(format!("instr {i} reads input {k} of {num_inputs}"));
                    }
                }
                Instr::Unary(_, a) => {
                    if *a >= i {
                        return Err(format!("instr {i} reads undefined register {a}"));
                    }
                }
                Instr::Binary(_, a, b) => {
                    if *a >= i || *b >= i {
                        return Err(format!("instr {i} reads undefined register {a}/{b}"));
                    }
                }
            }
        }
        if self.output >= self.instrs.len() {
            return Err(format!("output register {} undefined", self.output));
        }
        Ok(())
    }

    /// Serialize to the compact string stored in the node attribute, e.g.
    /// `in:0;in:1;b:add:0:1;u:relu:2|3`.
    pub fn encode(&self) -> String {
        let body: Vec<String> = self
            .instrs
            .iter()
            .map(|i| match i {
                Instr::Input(k) => format!("in:{k}"),
                Instr::Unary(op, a) => format!("u:{}:{a}", op.name()),
                Instr::Binary(op, a, b) => format!("b:{}:{a}:{b}", op.name()),
            })
            .collect();
        format!("{}|{}", body.join(";"), self.output)
    }

    /// Parse the string produced by [`Program::encode`].
    ///
    /// # Errors
    /// Malformed text.
    pub fn decode(text: &str) -> Result<Program, String> {
        let (body, out) = text.rsplit_once('|').ok_or("missing output register")?;
        let output: usize = out.parse().map_err(|_| "bad output register".to_string())?;
        let mut instrs = Vec::new();
        for part in body.split(';') {
            let fields: Vec<&str> = part.split(':').collect();
            let instr = match fields.as_slice() {
                ["in", k] => Instr::Input(k.parse().map_err(|_| "bad input index")?),
                ["u", name, a] => Instr::Unary(
                    UnaryOp::from_name(name).ok_or_else(|| format!("unknown unary {name}"))?,
                    a.parse().map_err(|_| "bad register")?,
                ),
                ["b", name, a, b] => Instr::Binary(
                    BinaryOp::from_name(name).ok_or_else(|| format!("unknown binary {name}"))?,
                    a.parse().map_err(|_| "bad register")?,
                    b.parse().map_err(|_| "bad register")?,
                ),
                _ => return Err(format!("bad instruction `{part}`")),
            };
            instrs.push(instr);
        }
        let p = Program { instrs, output };
        let max_input = p
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Input(k) => Some(*k + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        p.validate(max_input).map_err(|e| format!("invalid program: {e}"))?;
        Ok(p)
    }

    /// Evaluate against concrete inputs.
    ///
    /// # Errors
    /// Kernel errors (dtype/broadcast problems) from the underlying ops.
    pub fn eval(&self, inputs: &[&TensorData]) -> TResult<TensorData> {
        // Fast path: all-f32, identical shapes — evaluate in place over a
        // small pool of reused buffers, which is where fusion's real
        // memory-traffic win comes from.
        if let Some(out) = self.eval_fused_f32(inputs)? {
            return Ok(out);
        }
        self.eval_generic(inputs)
    }

    /// In-place fused evaluation for same-shape f32 operands. Returns
    /// `Ok(None)` when the inputs don't qualify (mixed shapes/dtypes), in
    /// which case the generic per-instruction path runs instead.
    fn eval_fused_f32(&self, inputs: &[&TensorData]) -> TResult<Option<TensorData>> {
        use tfe_tensor::DType;
        let Some(first) = inputs.first() else { return Ok(None) };
        let shape = first.shape().clone();
        for t in inputs {
            if t.dtype() != DType::F32 || t.shape() != &shape {
                return Ok(None);
            }
        }
        // Only plain elementwise instructions qualify (they all do today,
        // but stay conservative about future instruction kinds).
        let n = shape.num_elements();
        // Registers: last-use analysis lets buffers be recycled.
        let mut last_use = vec![0usize; self.instrs.len()];
        for (i, instr) in self.instrs.iter().enumerate() {
            match instr {
                Instr::Input(_) => {}
                Instr::Unary(_, a) => last_use[*a] = i,
                Instr::Binary(_, a, b) => {
                    last_use[*a] = i;
                    last_use[*b] = i;
                }
            }
        }
        last_use[self.output] = usize::MAX;
        let mut regs: Vec<Option<Vec<f32>>> = vec![None; self.instrs.len()];
        let mut free: Vec<Vec<f32>> = Vec::new();
        for (i, instr) in self.instrs.iter().enumerate() {
            let mut buf = free.pop().unwrap_or_else(|| vec![0.0f32; n]);
            match instr {
                Instr::Input(k) => {
                    let src = inputs[*k].as_slice::<f32>()?;
                    buf.copy_from_slice(src);
                }
                Instr::Unary(op, a) => {
                    let src = regs[*a].as_ref().expect("register defined");
                    for (o, &x) in buf.iter_mut().zip(src.iter()) {
                        *o = op.eval_f32(x);
                    }
                }
                Instr::Binary(op, a, b) => {
                    let (sa, sb) = (
                        regs[*a].as_ref().expect("register defined"),
                        regs[*b].as_ref().expect("register defined"),
                    );
                    for ((o, &x), &y) in buf.iter_mut().zip(sa.iter()).zip(sb.iter()) {
                        *o = op.eval_f32(x, y);
                    }
                }
            }
            regs[i] = Some(buf);
            // Recycle registers whose last consumer was this instruction.
            for (r, lu) in last_use.iter().enumerate() {
                if *lu == i && r != i {
                    if let Some(b) = regs[r].take() {
                        free.push(b);
                    }
                }
            }
        }
        let out = regs[self.output].take().expect("output register");
        Ok(Some(TensorData::from_vec(out, shape)?))
    }

    fn eval_generic(&self, inputs: &[&TensorData]) -> TResult<TensorData> {
        let mut regs: Vec<TensorData> = Vec::with_capacity(self.instrs.len());
        for instr in &self.instrs {
            let v = match instr {
                Instr::Input(k) => inputs
                    .get(*k)
                    .ok_or_else(|| {
                        TensorError::InvalidArgument(format!("fused program input {k} missing"))
                    })?
                    .to_owned()
                    .clone(),
                Instr::Unary(op, a) => unary(&regs[*a], *op)?,
                Instr::Binary(op, a, b) => binary(&regs[*a], &regs[*b], *op)?,
            };
            regs.push(v);
        }
        Ok(regs.swap_remove(self.output))
    }

    /// Number of non-input instructions (the "fused op count").
    pub fn op_count(&self) -> usize {
        self.instrs.iter().filter(|i| !matches!(i, Instr::Input(_))).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_tensor::Shape;

    fn relu_of_sum() -> Program {
        Program {
            instrs: vec![
                Instr::Input(0),
                Instr::Input(1),
                Instr::Binary(BinaryOp::Add, 0, 1),
                Instr::Unary(UnaryOp::Relu, 2),
            ],
            output: 3,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = relu_of_sum();
        let text = p.encode();
        assert_eq!(text, "in:0;in:1;b:add:0:1;u:relu:2|3");
        assert_eq!(Program::decode(&text).unwrap(), p);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Program::decode("").is_err());
        assert!(Program::decode("in:0|5").is_err()); // undefined output reg
        assert!(Program::decode("u:nosuch:0|0").is_err());
        assert!(Program::decode("b:add:0:1|0").is_err()); // forward reference
        assert!(Program::decode("in:0;u:relu:0").is_err()); // missing output
    }

    #[test]
    fn eval_matches_composition() {
        let p = relu_of_sum();
        let a = TensorData::from_vec(vec![1.0f32, -5.0], Shape::from([2])).unwrap();
        let b = TensorData::from_vec(vec![2.0f32, 2.0], Shape::from([2])).unwrap();
        let r = p.eval(&[&a, &b]).unwrap();
        assert_eq!(r.to_f64_vec(), vec![3.0, 0.0]);
    }

    #[test]
    fn eval_broadcasts() {
        let p = Program {
            instrs: vec![Instr::Input(0), Instr::Input(1), Instr::Binary(BinaryOp::Mul, 0, 1)],
            output: 2,
        };
        let a = TensorData::from_vec(vec![1.0f32, 2.0], Shape::from([2, 1])).unwrap();
        let b = TensorData::scalar(10.0f32);
        let r = p.eval(&[&a, &b]).unwrap();
        assert_eq!(r.shape().dims(), &[2, 1]);
        assert_eq!(r.to_f64_vec(), vec![10.0, 20.0]);
    }

    #[test]
    fn op_count_ignores_inputs() {
        assert_eq!(relu_of_sum().op_count(), 2);
    }

    #[test]
    fn validate_bounds() {
        let p = relu_of_sum();
        assert!(p.validate(2).is_ok());
        assert!(p.validate(1).is_err()); // input 1 out of range
    }
}
