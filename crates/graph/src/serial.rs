//! Graph (de)serialization — the basis of "serializing the program for use
//! without a Python interpreter" (§4.3): a trace plus its constants can be
//! written to disk and executed by a runtime with no tracer present.

use crate::ir::{FunctionLibrary, GraphFunction, Node, NodeId, TensorRef};
use std::sync::Arc;
use tfe_encode::Value;
use tfe_ops::{AttrValue, Attrs, SymShape};
use tfe_tensor::{DType, Shape, TensorData};

/// Serialization failures.
#[derive(Debug, Clone, PartialEq)]
pub struct SerialError(pub String);

impl std::fmt::Display for SerialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "graph serialization error: {}", self.0)
    }
}

impl std::error::Error for SerialError {}

fn err(msg: impl Into<String>) -> SerialError {
    SerialError(msg.into())
}

/// Encode a tensor as a JSON value (dtype, dims, row-major data).
pub fn tensor_to_value(t: &TensorData) -> Value {
    let data = match t.dtype() {
        DType::I32 | DType::I64 => {
            Value::Array(t.to_i64_vec().into_iter().map(Value::Int).collect())
        }
        DType::Bool => {
            Value::Array(t.to_f64_vec().into_iter().map(|v| Value::Bool(v != 0.0)).collect())
        }
        _ => Value::Array(t.to_f64_vec().into_iter().map(Value::Float).collect()),
    };
    Value::object([
        ("dtype".to_string(), Value::str(t.dtype().name())),
        (
            "shape".to_string(),
            Value::Array(t.shape().dims().iter().map(|&d| Value::Int(d as i64)).collect()),
        ),
        ("data".to_string(), data),
    ])
}

/// Decode a tensor produced by [`tensor_to_value`].
///
/// # Errors
/// Malformed structure.
pub fn tensor_from_value(v: &Value) -> Result<TensorData, SerialError> {
    let dtype = v
        .get("dtype")
        .and_then(Value::as_str)
        .and_then(DType::from_name)
        .ok_or_else(|| err("bad tensor dtype"))?;
    let dims =
        v.get("shape").and_then(Value::as_i64_array).ok_or_else(|| err("bad tensor shape"))?;
    if dims.iter().any(|&d| d < 0) {
        return Err(err("negative tensor dimension"));
    }
    // Checked product: a hostile shape like [i64::MAX, 8] must not overflow
    // into a bogus (or panicking) element count.
    let mut n_elements: usize = 1;
    for &d in &dims {
        n_elements =
            n_elements.checked_mul(d as usize).ok_or_else(|| err("tensor shape overflows"))?;
    }
    let shape = Shape::new(dims.iter().map(|&d| d as usize).collect::<Vec<_>>());
    let data: Vec<f64> = v
        .get("data")
        .and_then(Value::as_array)
        .ok_or_else(|| err("bad tensor data"))?
        .iter()
        .map(|e| {
            e.as_f64()
                .or_else(|| e.as_bool().map(|b| if b { 1.0 } else { 0.0 }))
                .ok_or_else(|| err("bad tensor element"))
        })
        .collect::<Result<_, _>>()?;
    if data.len() != n_elements {
        return Err(err("tensor data length mismatch"));
    }
    Ok(TensorData::from_f64_vec(dtype, data, shape))
}

fn attr_to_value(a: &AttrValue) -> Value {
    match a {
        AttrValue::Int(v) => {
            Value::object([("t".to_string(), Value::str("i")), ("v".to_string(), Value::Int(*v))])
        }
        AttrValue::Float(v) => {
            Value::object([("t".to_string(), Value::str("f")), ("v".to_string(), Value::Float(*v))])
        }
        AttrValue::Bool(v) => {
            Value::object([("t".to_string(), Value::str("b")), ("v".to_string(), Value::Bool(*v))])
        }
        AttrValue::Str(v) => Value::object([
            ("t".to_string(), Value::str("s")),
            ("v".to_string(), Value::str(v.clone())),
        ]),
        AttrValue::IntList(v) => Value::object([
            ("t".to_string(), Value::str("il")),
            ("v".to_string(), Value::Array(v.iter().map(|&i| Value::Int(i)).collect())),
        ]),
        AttrValue::FloatList(v) => Value::object([
            ("t".to_string(), Value::str("fl")),
            ("v".to_string(), Value::Array(v.iter().map(|&f| Value::Float(f)).collect())),
        ]),
        AttrValue::DType(v) => Value::object([
            ("t".to_string(), Value::str("dt")),
            ("v".to_string(), Value::str(v.name())),
        ]),
    }
}

fn attr_from_value(v: &Value) -> Result<AttrValue, SerialError> {
    let t = v.get("t").and_then(Value::as_str).ok_or_else(|| err("missing attr tag"))?;
    let payload = v.get("v").ok_or_else(|| err("missing attr payload"))?;
    Ok(match t {
        "i" => AttrValue::Int(payload.as_i64().ok_or_else(|| err("bad int attr"))?),
        "f" => AttrValue::Float(payload.as_f64().ok_or_else(|| err("bad float attr"))?),
        "b" => AttrValue::Bool(payload.as_bool().ok_or_else(|| err("bad bool attr"))?),
        "s" => AttrValue::Str(payload.as_str().ok_or_else(|| err("bad str attr"))?.to_string()),
        "il" => AttrValue::IntList(payload.as_i64_array().ok_or_else(|| err("bad int list"))?),
        "fl" => AttrValue::FloatList(payload.as_f64_array().ok_or_else(|| err("bad float list"))?),
        "dt" => AttrValue::DType(
            payload.as_str().and_then(DType::from_name).ok_or_else(|| err("bad dtype attr"))?,
        ),
        other => return Err(err(format!("unknown attr tag `{other}`"))),
    })
}

fn sym_shape_to_value(s: &SymShape) -> Value {
    Value::Array(s.dims().iter().map(|d| d.map_or(Value::Null, |v| Value::Int(v as i64))).collect())
}

fn sym_shape_from_value(v: &Value) -> Result<SymShape, SerialError> {
    let arr = v.as_array().ok_or_else(|| err("bad shape"))?;
    let dims: Result<Vec<Option<usize>>, SerialError> = arr
        .iter()
        .map(|d| match d {
            Value::Null => Ok(None),
            other => other.as_i64().map(|v| Some(v as usize)).ok_or_else(|| err("bad shape dim")),
        })
        .collect();
    Ok(SymShape::new(dims?))
}

/// Encode a full attribute map as a JSON object (used by the distributed
/// wire protocol as well as graph serialization).
pub fn attrs_to_value(attrs: &Attrs) -> Value {
    Value::object(attrs.iter().map(|(k, v)| (k.clone(), attr_to_value(v))))
}

/// Decode an attribute map produced by [`attrs_to_value`].
///
/// # Errors
/// Malformed structure or unknown attribute tags.
pub fn attrs_from_value(v: &Value) -> Result<Attrs, SerialError> {
    let obj = v.as_object().ok_or_else(|| err("attrs must be an object"))?;
    let mut attrs = Attrs::new();
    for (k, av) in obj {
        attrs.set(k, attr_from_value(av)?);
    }
    Ok(attrs)
}

fn tensor_ref_to_value(t: &TensorRef) -> Value {
    Value::Array(vec![Value::Int(t.node.0 as i64), Value::Int(t.output as i64)])
}

fn tensor_ref_from_value(v: &Value) -> Result<TensorRef, SerialError> {
    let pair = v.as_i64_array().ok_or_else(|| err("bad tensor ref"))?;
    if pair.len() != 2 {
        return Err(err("tensor ref must be [node, output]"));
    }
    Ok(TensorRef { node: NodeId(pair[0] as usize), output: pair[1] as usize })
}

/// Serialize one graph function.
pub fn function_to_value(f: &GraphFunction) -> Value {
    let nodes: Vec<Value> = f
        .nodes
        .iter()
        .map(|n| {
            Value::object([
                ("op".to_string(), Value::str(n.op.clone())),
                (
                    "inputs".to_string(),
                    Value::Array(n.inputs.iter().map(tensor_ref_to_value).collect()),
                ),
                (
                    "attrs".to_string(),
                    Value::object(n.attrs.iter().map(|(k, v)| (k.clone(), attr_to_value(v)))),
                ),
                (
                    "outputs".to_string(),
                    Value::Array(
                        n.outputs
                            .iter()
                            .map(|(d, s)| {
                                Value::Array(vec![Value::str(d.name()), sym_shape_to_value(s)])
                            })
                            .collect(),
                    ),
                ),
                ("stateful".to_string(), Value::Bool(n.stateful)),
                (
                    "control".to_string(),
                    Value::Array(n.control_inputs.iter().map(|c| Value::Int(c.0 as i64)).collect()),
                ),
            ])
        })
        .collect();
    Value::object([
        ("name".to_string(), Value::str(f.name.clone())),
        ("nodes".to_string(), Value::Array(nodes)),
        (
            "inputs".to_string(),
            Value::Array(f.inputs.iter().map(|id| Value::Int(id.0 as i64)).collect()),
        ),
        ("outputs".to_string(), Value::Array(f.outputs.iter().map(tensor_ref_to_value).collect())),
        ("num_captures".to_string(), Value::Int(f.num_captures as i64)),
        (
            "constants".to_string(),
            Value::Array(f.constants.iter().map(|c| tensor_to_value(c)).collect()),
        ),
    ])
}

/// Deserialize one graph function.
///
/// # Errors
/// Structural problems in the encoded value.
pub fn function_from_value(v: &Value) -> Result<GraphFunction, SerialError> {
    let name = v.get("name").and_then(Value::as_str).ok_or_else(|| err("missing name"))?;
    let nodes_v = v.get("nodes").and_then(Value::as_array).ok_or_else(|| err("missing nodes"))?;
    let mut nodes = Vec::with_capacity(nodes_v.len());
    // Payloads written before sequencing edges existed lack the per-node
    // "control" field; re-derive the edges from program order in that case.
    let mut legacy_controls = true;
    for nv in nodes_v {
        let op = nv.get("op").and_then(Value::as_str).ok_or_else(|| err("missing op"))?.to_string();
        let inputs: Result<Vec<TensorRef>, SerialError> = nv
            .get("inputs")
            .and_then(Value::as_array)
            .ok_or_else(|| err("missing inputs"))?
            .iter()
            .map(tensor_ref_from_value)
            .collect();
        let attrs_obj =
            nv.get("attrs").and_then(Value::as_object).ok_or_else(|| err("missing attrs"))?;
        let mut attrs = Attrs::new();
        for (k, av) in attrs_obj {
            attrs.set(k, attr_from_value(av)?);
        }
        let outputs: Result<Vec<(DType, SymShape)>, SerialError> = nv
            .get("outputs")
            .and_then(Value::as_array)
            .ok_or_else(|| err("missing outputs"))?
            .iter()
            .map(|ov| {
                let pair = ov.as_array().ok_or_else(|| err("bad output sig"))?;
                if pair.len() != 2 {
                    return Err(err("bad output sig arity"));
                }
                let dt = pair[0]
                    .as_str()
                    .and_then(DType::from_name)
                    .ok_or_else(|| err("bad output dtype"))?;
                Ok((dt, sym_shape_from_value(&pair[1])?))
            })
            .collect();
        let stateful =
            nv.get("stateful").and_then(Value::as_bool).ok_or_else(|| err("missing stateful"))?;
        let control_inputs = match nv.get("control") {
            Some(cv) => {
                legacy_controls = false;
                cv.as_i64_array()
                    .ok_or_else(|| err("bad control list"))?
                    .into_iter()
                    .map(|i| NodeId(i as usize))
                    .collect()
            }
            // Payload predates control edges; recomputed below once all
            // nodes are decoded.
            None => Vec::new(),
        };
        nodes.push(Node {
            op,
            inputs: inputs?,
            attrs,
            outputs: outputs?,
            stateful,
            control_inputs,
        });
    }
    if legacy_controls {
        let recomputed = crate::sequencing::sequence_control_edges(&nodes);
        for (n, ctrl) in nodes.iter_mut().zip(recomputed) {
            n.control_inputs = ctrl;
        }
    }
    let inputs: Vec<NodeId> = v
        .get("inputs")
        .and_then(Value::as_i64_array)
        .ok_or_else(|| err("missing input list"))?
        .into_iter()
        .map(|i| NodeId(i as usize))
        .collect();
    let outputs: Result<Vec<TensorRef>, SerialError> = v
        .get("outputs")
        .and_then(Value::as_array)
        .ok_or_else(|| err("missing output list"))?
        .iter()
        .map(tensor_ref_from_value)
        .collect();
    let num_captures =
        v.get("num_captures").and_then(Value::as_i64).ok_or_else(|| err("missing num_captures"))?
            as usize;
    let constants: Result<Vec<Arc<TensorData>>, SerialError> = v
        .get("constants")
        .and_then(Value::as_array)
        .ok_or_else(|| err("missing constants"))?
        .iter()
        .map(|c| tensor_from_value(c).map(Arc::new))
        .collect();
    let f = GraphFunction {
        name: name.to_string(),
        nodes,
        inputs,
        outputs: outputs?,
        num_captures,
        constants: constants?,
    };
    // Structural validation: every reference must be in range and point
    // backwards (topological order).
    for (i, node) in f.nodes.iter().enumerate() {
        for t in &node.inputs {
            if t.node.0 >= i {
                return Err(err(format!("node {i} has forward/self reference")));
            }
            if t.output >= f.nodes[t.node.0].outputs.len() {
                return Err(err(format!("node {i} references bad output {t:?}")));
            }
        }
        for c in &node.control_inputs {
            if c.0 >= i {
                return Err(err(format!("node {i} has forward/self control reference")));
            }
        }
    }
    for t in &f.outputs {
        if t.node.0 >= f.nodes.len() || t.output >= f.nodes[t.node.0].outputs.len() {
            return Err(err("function output out of range"));
        }
    }
    for id in &f.inputs {
        if id.0 >= f.nodes.len() || f.nodes[id.0].op != "placeholder" {
            return Err(err("function input is not a placeholder"));
        }
    }
    // A negative serialized num_captures wraps to a huge usize; either way it
    // must not exceed the input count or arg-signature slicing underflows.
    if f.num_captures > f.inputs.len() {
        return Err(err(format!(
            "num_captures {} exceeds input count {}",
            f.num_captures,
            f.inputs.len()
        )));
    }
    Ok(f)
}

/// Serialize a whole library (a function plus its callees).
pub fn library_to_value(lib: &FunctionLibrary) -> Value {
    let functions: Vec<Value> = lib
        .names()
        .into_iter()
        .filter_map(|n| lib.get(&n))
        .map(|f| function_to_value(&f))
        .collect();
    Value::object([("functions".to_string(), Value::Array(functions))])
}

/// Deserialize a library.
///
/// # Errors
/// Structural problems in any function.
pub fn library_from_value(v: &Value) -> Result<FunctionLibrary, SerialError> {
    let lib = FunctionLibrary::new();
    let funcs =
        v.get("functions").and_then(Value::as_array).ok_or_else(|| err("missing functions"))?;
    for fv in funcs {
        lib.insert(function_from_value(fv)?);
    }
    Ok(lib)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use tfe_ops::SymShape;

    fn sample_fn() -> GraphFunction {
        let mut b = GraphBuilder::new("sample");
        let x = b.placeholder(DType::F32, SymShape::new(vec![None, Some(3)])).unwrap();
        let c = b.constant(Arc::new(TensorData::scalar(2.5f32))).unwrap();
        let m = b.add_node("mul", vec![x, c], Attrs::new()).unwrap()[0];
        let r =
            b.add_node("reduce_sum", vec![m], Attrs::new().with("axes", vec![1i64])).unwrap()[0];
        b.finish(vec![r], 0)
    }

    #[test]
    fn tensor_round_trip_all_dtypes() {
        for t in [
            TensorData::from_vec(vec![1.5f32, -2.0], Shape::from([2])).unwrap(),
            TensorData::from_vec(vec![1.5f64, -2.0], Shape::from([2])).unwrap(),
            TensorData::from_vec(vec![1i32, -2], Shape::from([2])).unwrap(),
            TensorData::from_vec(vec![i64::from(i32::MAX) + 1, -2], Shape::from([2])).unwrap(),
            TensorData::from_vec(vec![true, false], Shape::from([2])).unwrap(),
            TensorData::scalar(7.0f32),
        ] {
            let v = tensor_to_value(&t);
            let back = tensor_from_value(&v).unwrap();
            assert_eq!(back, t);
            // And through actual JSON text.
            let reparsed = Value::parse(&v.to_json()).unwrap();
            assert_eq!(tensor_from_value(&reparsed).unwrap(), t);
        }
    }

    #[test]
    fn function_round_trip() {
        let f = sample_fn();
        let v = function_to_value(&f);
        let text = v.to_json_pretty();
        let back = function_from_value(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back.name, f.name);
        assert_eq!(back.nodes.len(), f.nodes.len());
        assert_eq!(back.inputs, f.inputs);
        assert_eq!(back.outputs, f.outputs);
        assert_eq!(back.output_sigs(), f.output_sigs());
        assert_eq!(back.constants.len(), 1);
        assert_eq!(back.constants[0].scalar_f64().unwrap(), 2.5);
        // Attrs survive.
        let rs = back.nodes.iter().find(|n| n.op == "reduce_sum").unwrap();
        assert_eq!(rs.attrs.int_list("axes").unwrap(), &[1]);
        // Unknown dim survives.
        assert_eq!(back.arg_sigs()[0].1, SymShape::new(vec![None, Some(3)]));
    }

    #[test]
    fn library_round_trip() {
        let lib = FunctionLibrary::new();
        lib.insert(sample_fn());
        let mut b = GraphBuilder::new("other");
        let x = b.placeholder(DType::F64, SymShape::scalar()).unwrap();
        let y = b.add_node("neg", vec![x], Attrs::new()).unwrap()[0];
        lib.insert(b.finish(vec![y], 0));
        let v = library_to_value(&lib);
        let back = library_from_value(&Value::parse(&v.to_json()).unwrap()).unwrap();
        assert_eq!(back.names(), vec!["other".to_string(), "sample".to_string()]);
    }

    fn stateful_fn() -> GraphFunction {
        // read v1 -> assign v1 -> read v1: the second read carries a
        // control edge on the assign.
        let mut b = GraphBuilder::new("stateful");
        let read_attrs = || {
            Attrs::new()
                .with("var_id", 1i64)
                .with("dtype", DType::F32)
                .with("shape", Vec::<i64>::new())
        };
        let r1 = b.add_node("read_variable", vec![], read_attrs()).unwrap()[0];
        let _w = b.add_node("assign", vec![r1], Attrs::new().with("var_id", 1i64)).unwrap();
        let r2 = b.add_node("read_variable", vec![], read_attrs()).unwrap()[0];
        b.finish(vec![r2], 0)
    }

    #[test]
    fn control_edges_round_trip() {
        let f = stateful_fn();
        assert!(f.nodes.iter().any(|n| !n.control_inputs.is_empty()));
        let v = function_to_value(&f);
        let back = function_from_value(&Value::parse(&v.to_json()).unwrap()).unwrap();
        for (a, b) in f.nodes.iter().zip(&back.nodes) {
            assert_eq!(a.control_inputs, b.control_inputs);
        }
    }

    #[test]
    fn legacy_payload_recomputes_control_edges() {
        let f = stateful_fn();
        let mut v = function_to_value(&f);
        // Strip the "control" field to mimic a payload written before
        // sequencing edges existed.
        if let Value::Object(map) = &mut v {
            if let Some(Value::Array(nodes)) = map.get_mut("nodes") {
                for nv in nodes {
                    if let Value::Object(n) = nv {
                        n.remove("control");
                    }
                }
            }
        }
        let back = function_from_value(&v).unwrap();
        for (a, b) in f.nodes.iter().zip(&back.nodes) {
            assert_eq!(a.control_inputs, b.control_inputs);
        }
    }

    #[test]
    fn validation_rejects_forward_control_reference() {
        let f = stateful_fn();
        let mut v = function_to_value(&f);
        if let Value::Object(map) = &mut v {
            if let Some(Value::Array(nodes)) = map.get_mut("nodes") {
                if let Value::Object(n0) = &mut nodes[0] {
                    n0.insert("control".to_string(), Value::Array(vec![Value::Int(99)]));
                }
            }
        }
        assert!(function_from_value(&v).is_err());
    }

    #[test]
    fn validation_rejects_corrupt_graphs() {
        let f = sample_fn();
        let mut v = function_to_value(&f);
        // Corrupt an input reference to point forward.
        if let Value::Object(map) = &mut v {
            if let Some(Value::Array(nodes)) = map.get_mut("nodes") {
                if let Value::Object(n1) = &mut nodes[2] {
                    n1.insert(
                        "inputs".to_string(),
                        Value::Array(vec![Value::Array(vec![Value::Int(99), Value::Int(0)])]),
                    );
                }
            }
        }
        assert!(function_from_value(&v).is_err());
        assert!(function_from_value(&Value::Null).is_err());
        assert!(tensor_from_value(
            &Value::parse(r#"{"dtype":"f99","shape":[],"data":[]}"#).unwrap()
        )
        .is_err());
    }
}
