//! The dataflow-graph intermediate representation.
//!
//! A [`GraphFunction`] is the paper's central staged artifact (§4.1, §4.6):
//! "a graph with named inputs and outputs, representing the exact
//! computation of interest".

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use tfe_ops::{Attrs, SymShape};
use tfe_tensor::{DType, TensorData};

/// Index of a node within its graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A reference to the `output`-th output of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorRef {
    /// Producing node.
    pub node: NodeId,
    /// Output index on that node.
    pub output: usize,
}

impl TensorRef {
    /// Output 0 of `node` — the overwhelmingly common case.
    pub fn first(node: NodeId) -> TensorRef {
        TensorRef { node, output: 0 }
    }
}

/// One operation instance in a graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Operation name (must exist in the op registry).
    pub op: String,
    /// Input tensors.
    pub inputs: Vec<TensorRef>,
    /// Static attributes.
    pub attrs: Attrs,
    /// Inferred output signature.
    pub outputs: Vec<(DType, SymShape)>,
    /// Whether this node has side effects (resolved at build time; `call`
    /// nodes take it from their `stateful` attribute).
    pub stateful: bool,
    /// Sequencing (control) edges: earlier stateful nodes that must finish
    /// before this node runs, beyond its data inputs. Always empty on
    /// stateless nodes; computed by the builder (see `sequencing`).
    pub control_inputs: Vec<NodeId>,
}

impl Node {
    /// dtype/shape of output `i`.
    ///
    /// # Panics
    /// `i` out of range.
    pub fn output_sig(&self, i: usize) -> (DType, SymShape) {
        (self.outputs[i].0, self.outputs[i].1.clone())
    }
}

/// A dataflow graph function: nodes plus named inputs and outputs.
#[derive(Clone)]
pub struct GraphFunction {
    /// Function name (unique within a [`FunctionLibrary`]).
    pub name: String,
    /// Nodes in topological (construction) order. Node `inputs` always
    /// reference earlier nodes.
    pub nodes: Vec<Node>,
    /// Input placeholders, in argument order. The last
    /// [`num_captures`](GraphFunction::num_captures) are lexically captured
    /// values appended by the tracer (§4.6 "Lexical closure").
    pub inputs: Vec<NodeId>,
    /// Output tensors.
    pub outputs: Vec<TensorRef>,
    /// How many trailing inputs are captures.
    pub num_captures: usize,
    /// Constant pool: `const` nodes hold an index into this vector (attr
    /// `value_index`).
    pub constants: Vec<Arc<TensorData>>,
}

impl GraphFunction {
    /// Whether any node is stateful (the function has side effects).
    pub fn is_stateful(&self) -> bool {
        self.nodes.iter().any(|n| n.stateful)
    }

    /// The node behind a [`NodeId`].
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Stable human-readable label for one node of the plan, e.g.
    /// `train_step__0/%3:matmul` — the name profiler timelines thread into
    /// their per-node spans.
    ///
    /// # Panics
    /// `id` out of range.
    pub fn node_label(&self, id: NodeId) -> String {
        format!("{}/%{}:{}", self.name, id.0, self.nodes[id.0].op)
    }

    /// dtype/shape of a tensor reference.
    pub fn sig(&self, t: TensorRef) -> (DType, SymShape) {
        self.node(t.node).output_sig(t.output)
    }

    /// Signature of the function's declared (non-capture) arguments.
    pub fn arg_sigs(&self) -> Vec<(DType, SymShape)> {
        self.inputs[..self.inputs.len() - self.num_captures]
            .iter()
            .map(|&id| self.node(id).output_sig(0))
            .collect()
    }

    /// Signature of the function outputs.
    pub fn output_sigs(&self) -> Vec<(DType, SymShape)> {
        self.outputs.iter().map(|&t| self.sig(t)).collect()
    }

    /// Number of op nodes that the dataflow executor would run (everything
    /// except placeholders).
    pub fn executable_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.op != "placeholder").count()
    }

    /// Names of callee functions referenced by `call`/`cond`/`while_loop`
    /// nodes (non-recursive).
    pub fn callee_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        for n in &self.nodes {
            for key in ["function", "then_fn", "else_fn", "cond_fn", "body_fn"] {
                if let Some(tfe_ops::AttrValue::Str(s)) = n.attrs.get(key) {
                    if !out.contains(s) {
                        out.push(s.clone());
                    }
                }
            }
        }
        out
    }

    /// Consumers of every node output: map from (node, output) to the list
    /// of (consumer node, input index).
    pub fn consumers(&self) -> HashMap<TensorRef, Vec<(NodeId, usize)>> {
        let mut map: HashMap<TensorRef, Vec<(NodeId, usize)>> = HashMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            for (slot, &input) in n.inputs.iter().enumerate() {
                map.entry(input).or_default().push((NodeId(i), slot));
            }
        }
        map
    }

    /// Deduplicated predecessor nodes of `id`: the producers of its data
    /// inputs plus its control inputs. This is the dependency set the
    /// scheduler counts down before a node becomes ready.
    pub fn predecessors(&self, id: NodeId) -> Vec<NodeId> {
        let n = self.node(id);
        let mut preds: Vec<NodeId> = n.inputs.iter().map(|t| t.node).collect();
        preds.extend(n.control_inputs.iter().copied());
        preds.sort_unstable();
        preds.dedup();
        preds
    }

    /// A structural fingerprint of the whole function: ops, dataflow,
    /// attributes, signatures, control edges, outputs, and constant values.
    /// Two functions with equal hashes are (modulo collisions) the same
    /// graph, so the optimizer's fixpoint driver iterates its pass sweep
    /// until this value stops changing. Uses `DefaultHasher` with its fixed
    /// default keys, so the value is stable across processes.
    pub fn structural_hash(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.nodes.len().hash(&mut h);
        for n in &self.nodes {
            n.op.hash(&mut h);
            for t in &n.inputs {
                t.node.0.hash(&mut h);
                t.output.hash(&mut h);
            }
            n.attrs.hash(&mut h);
            n.outputs.hash(&mut h);
            n.stateful.hash(&mut h);
            for c in &n.control_inputs {
                c.0.hash(&mut h);
            }
        }
        for id in &self.inputs {
            id.0.hash(&mut h);
        }
        for t in &self.outputs {
            t.node.0.hash(&mut h);
            t.output.hash(&mut h);
        }
        self.num_captures.hash(&mut h);
        self.constants.len().hash(&mut h);
        for c in &self.constants {
            c.dtype().hash(&mut h);
            c.shape().dims().hash(&mut h);
            // Constant payloads are append-only across passes, so hashing a
            // bounded prefix (plus dtype/shape/pool position above) is
            // enough to distinguish sweeps without rehashing big weights.
            for v in c.to_f64_vec().iter().take(4096) {
                v.to_bits().hash(&mut h);
            }
        }
        h.finish()
    }

    /// Render a compact, human-readable listing (one node per line) — the
    /// debugging view of Figure 2's graphs.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "function {}({} args, {} captures) -> {} outputs\n",
            self.name,
            self.inputs.len() - self.num_captures,
            self.num_captures,
            self.outputs.len()
        ));
        for (i, n) in self.nodes.iter().enumerate() {
            let ins: Vec<String> = n
                .inputs
                .iter()
                .map(|t| {
                    if t.output == 0 {
                        format!("%{}", t.node.0)
                    } else {
                        format!("%{}:{}", t.node.0, t.output)
                    }
                })
                .collect();
            let attrs = if n.attrs.is_empty() {
                String::new()
            } else {
                let parts: Vec<String> = n.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!(" {{{}}}", parts.join(", "))
            };
            let ctrl = if n.control_inputs.is_empty() {
                String::new()
            } else {
                let deps: Vec<String> =
                    n.control_inputs.iter().map(|c| format!("^%{}", c.0)).collect();
                format!(" after [{}]", deps.join(", "))
            };
            let sig: Vec<String> = n.outputs.iter().map(|(d, s)| format!("{d}{s}")).collect();
            out.push_str(&format!(
                "  %{i} = {}({}){attrs}{ctrl} : [{}]\n",
                n.op,
                ins.join(", "),
                sig.join(", ")
            ));
        }
        let outs: Vec<String> = self.outputs.iter().map(|t| format!("%{}", t.node.0)).collect();
        out.push_str(&format!("  return {}\n", outs.join(", ")));
        out
    }

    /// Render the graph in Graphviz DOT format, for inspecting a suspicious
    /// concrete function (`dot -Tsvg`): one box per node labeled with its
    /// op and output signature, solid edges for dataflow (labeled with the
    /// output index when not 0), dashed edges for sequencing (control)
    /// dependencies, and double-drawn boxes for the function outputs.
    pub fn to_dot(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::new();
        out.push_str(&format!("digraph \"{}\" {{\n", esc(&self.name)));
        out.push_str("  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
        let output_nodes: std::collections::HashSet<usize> =
            self.outputs.iter().map(|t| t.node.0).collect();
        for (i, n) in self.nodes.iter().enumerate() {
            let sig: Vec<String> = n.outputs.iter().map(|(d, s)| format!("{d}{s}")).collect();
            let label = format!("%{i} {}\\n{}", esc(&n.op), esc(&sig.join(", ")));
            let mut style = Vec::new();
            if n.op == "placeholder" {
                style.push("style=filled, fillcolor=lightblue");
            } else if n.stateful {
                style.push("style=filled, fillcolor=mistyrose");
            }
            if output_nodes.contains(&i) {
                style.push("peripheries=2");
            }
            let style =
                if style.is_empty() { String::new() } else { format!(", {}", style.join(", ")) };
            out.push_str(&format!("  n{i} [label=\"{label}\"{style}];\n"));
            for t in &n.inputs {
                if t.output == 0 {
                    out.push_str(&format!("  n{} -> n{i};\n", t.node.0));
                } else {
                    out.push_str(&format!("  n{} -> n{i} [label=\":{}\"];\n", t.node.0, t.output));
                }
            }
            for c in &n.control_inputs {
                out.push_str(&format!("  n{} -> n{i} [style=dashed];\n", c.0));
            }
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Debug for GraphFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GraphFunction({}, {} nodes, {} inputs, {} outputs)",
            self.name,
            self.nodes.len(),
            self.inputs.len(),
            self.outputs.len()
        )
    }
}

/// A shared library of graph functions, used to resolve `call` nodes.
///
/// §5 notes that function composition falls out of executing functions via
/// an operation; the library is the name→function mapping that operation
/// consults. It is also the unit serialized for deployment (§4.3).
#[derive(Default, Clone)]
pub struct FunctionLibrary {
    inner: Arc<parking_lot::RwLock<HashMap<String, Arc<GraphFunction>>>>,
}

impl FunctionLibrary {
    /// An empty library.
    pub fn new() -> FunctionLibrary {
        FunctionLibrary::default()
    }

    /// Insert (or replace) a function.
    pub fn insert(&self, f: GraphFunction) -> Arc<GraphFunction> {
        let f = Arc::new(f);
        self.inner.write().insert(f.name.clone(), f.clone());
        f
    }

    /// Look up by name.
    pub fn get(&self, name: &str) -> Option<Arc<GraphFunction>> {
        self.inner.read().get(name).cloned()
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

impl fmt::Debug for FunctionLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FunctionLibrary({:?})", self.names())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use tfe_tensor::Shape;

    fn simple_fn() -> GraphFunction {
        // f(a, b) = relu(a + b)
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, SymShape::known(&Shape::from([2]))).unwrap();
        let y = b.placeholder(DType::F32, SymShape::known(&Shape::from([2]))).unwrap();
        let s = b.add_node("add", vec![x, y], Attrs::new()).unwrap()[0];
        let r = b.add_node("relu", vec![s], Attrs::new()).unwrap()[0];
        b.finish(vec![r], 0)
    }

    #[test]
    fn signatures() {
        let f = simple_fn();
        assert_eq!(f.arg_sigs().len(), 2);
        assert_eq!(f.output_sigs().len(), 1);
        assert_eq!(f.output_sigs()[0].0, DType::F32);
        assert!(!f.is_stateful());
        assert_eq!(f.executable_node_count(), 2);
    }

    #[test]
    fn consumers_map() {
        let f = simple_fn();
        let consumers = f.consumers();
        // The add node output feeds relu.
        let add_ref = TensorRef::first(NodeId(2));
        assert_eq!(consumers.get(&add_ref).map(|v| v.len()), Some(1));
    }

    #[test]
    fn dump_is_readable() {
        let f = simple_fn();
        let d = f.dump();
        assert!(d.contains("function f(2 args, 0 captures) -> 1 outputs"));
        assert!(d.contains("add(%0, %1)"));
        assert!(d.contains("return %3"));
    }

    #[test]
    fn library_round_trip() {
        let lib = FunctionLibrary::new();
        assert!(lib.is_empty());
        lib.insert(simple_fn());
        assert_eq!(lib.len(), 1);
        assert!(lib.get("f").is_some());
        assert!(lib.get("g").is_none());
        assert_eq!(lib.names(), vec!["f".to_string()]);
        // Clones share contents.
        let lib2 = lib.clone();
        assert!(lib2.get("f").is_some());
    }
}
