//! Graph optimization passes.
//!
//! These are the optimizations the paper attributes to staging (§4.1:
//! "inter-op parallelism and optimizations like constant-folding and buffer
//! reuse"; §5: "non-stateful operations that are not reachable from the
//! outputs of a function are pruned"). Fusion is the XLA stand-in (§4.4).
//!
//! The driver is a *fixpoint loop*: one sweep runs every enabled pass once,
//! the graph is fingerprinted with [`GraphFunction::structural_hash`], and
//! sweeps repeat until the hash stabilizes (or
//! [`OptimizeOptions::max_sweeps`] is hit). Iteration is what lets the
//! passes compound — an algebraic rewrite exposes a constant subgraph that
//! folds on the next sweep, folding exposes dead work for the pruner, and
//! so on. Every pass is monotone (it only removes or simplifies work), so
//! the loop cannot oscillate; the cap is a backstop, not a tuning knob.
//!
//! Elementwise fusion is deliberately *outside* the loop: it is a backend
//! lowering whose `fused_elementwise` programs are opaque to the scalar
//! passes, so it runs once after convergence.

use crate::ir::{GraphFunction, Node, NodeId, TensorRef};
use crate::program::{Instr, Program};
use crate::sequencing::{classify, sequence_control_edges, Access, Resource};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;
use tfe_ops::algebra::{
    compose_perms, identity_operand, is_identity_perm, is_swap_perm, IdentitySide,
};
use tfe_ops::{AttrValue, Attrs};
use tfe_tensor::elementwise::{BinaryOp, UnaryOp};
use tfe_tensor::{DType, Shape, TensorData};

/// Names of the seven pipeline passes, in sweep order (fusion last, outside
/// the fixpoint loop). These are the keys of [`OptimizeStats::rewrites`]
/// and the `pass` label values of `tfe_pass_pipeline_rewrites_total`.
pub const PASS_NAMES: [&str; 7] = [
    "propagate_constants",
    "fold_constants",
    "simplify_algebraic",
    "cse",
    "eliminate_dead_stores",
    "prune",
    "fuse_elementwise",
];

/// Options controlling [`optimize`].
#[derive(Debug, Clone)]
pub struct OptimizeOptions {
    /// Drop stateless nodes unreachable from the outputs.
    pub prune: bool,
    /// Deduplicate identical stateless nodes.
    pub cse: bool,
    /// Evaluate stateless nodes with all-constant inputs at optimization
    /// time (requires an evaluator; skipped otherwise).
    pub fold_constants: bool,
    /// Fold tensor-metadata ops (`shape_of`, `rank_of`, `size_of`) whose
    /// answer is statically known from the inferred signatures.
    pub propagate_constants: bool,
    /// Algebraic identities: `x + 0`, `x - 0`, `x * 1`, `x / 1`, `identity`
    /// bypass, double-transpose cancellation, and absorbing rank-2
    /// transposes into `matmul`'s `transpose_a`/`transpose_b` flags.
    pub algebraic_simplify: bool,
    /// Drop variable stores that are overwritten before any read.
    pub dead_store_elim: bool,
    /// Fuse chains of elementwise ops into `fused_elementwise` nodes.
    pub fuse_elementwise: bool,
    /// Skip folding results larger than this many elements.
    pub fold_size_limit: usize,
    /// Iterate the sweep to a structural-hash fixpoint. When off, exactly
    /// one sweep runs (the pre-fixpoint pipeline behavior).
    pub fixpoint: bool,
    /// Upper bound on sweeps (at least 1 is always run). The loop normally
    /// exits much earlier via the hash check.
    pub max_sweeps: usize,
}

impl Default for OptimizeOptions {
    fn default() -> OptimizeOptions {
        OptimizeOptions {
            prune: true,
            cse: true,
            fold_constants: true,
            propagate_constants: true,
            algebraic_simplify: true,
            dead_store_elim: true,
            fuse_elementwise: false, // opt-in: the "XLA" path (TPU) turns it on
            fold_size_limit: 65_536,
            fixpoint: true,
            max_sweeps: 8,
        }
    }
}

impl OptimizeOptions {
    /// Everything on — the XLA-style pipeline used for TPU placement.
    pub fn aggressive() -> OptimizeOptions {
        OptimizeOptions { fuse_elementwise: true, ..OptimizeOptions::default() }
    }

    /// Everything off (identity pipeline), for ablations.
    pub fn none() -> OptimizeOptions {
        OptimizeOptions {
            prune: false,
            cse: false,
            fold_constants: false,
            propagate_constants: false,
            algebraic_simplify: false,
            dead_store_elim: false,
            fuse_elementwise: false,
            fold_size_limit: 0,
            fixpoint: false,
            max_sweeps: 1,
        }
    }

    /// Exactly one named pass enabled (see [`PASS_NAMES`]), single sweep —
    /// the configuration the differential fuzz harness runs per-pass.
    ///
    /// # Panics
    /// Unknown pass name.
    pub fn only(pass: &str) -> OptimizeOptions {
        let mut o = OptimizeOptions {
            fold_size_limit: OptimizeOptions::default().fold_size_limit,
            ..OptimizeOptions::none()
        };
        match pass {
            "prune" => o.prune = true,
            "cse" => o.cse = true,
            "fold_constants" => o.fold_constants = true,
            "propagate_constants" => o.propagate_constants = true,
            "simplify_algebraic" => o.algebraic_simplify = true,
            "eliminate_dead_stores" => o.dead_store_elim = true,
            "fuse_elementwise" => o.fuse_elementwise = true,
            other => panic!("unknown pass {other:?}"),
        }
        o
    }
}

/// What one [`optimize_with_stats`] run did: how many sweeps the fixpoint
/// loop took, whether it actually converged (as opposed to hitting
/// [`OptimizeOptions::max_sweeps`]), and how many rewrites each pass
/// applied, keyed by [`PASS_NAMES`] entries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Full sweeps executed (the last one is the no-change sweep that
    /// proves convergence).
    pub sweeps: u64,
    /// Whether the structural hash stabilized before the sweep cap.
    pub converged: bool,
    /// Rewrites per pass (absent key = zero).
    pub rewrites: BTreeMap<&'static str, u64>,
}

impl OptimizeStats {
    /// Rewrites applied by one pass (0 when the pass never fired).
    pub fn rewrites_for(&self, pass: &str) -> u64 {
        self.rewrites.get(pass).copied().unwrap_or(0)
    }

    /// Total rewrites across all passes.
    pub fn total_rewrites(&self) -> u64 {
        self.rewrites.values().sum()
    }
}

fn record(stats: &mut OptimizeStats, pass: &'static str, count: u64) {
    if count == 0 {
        return;
    }
    *stats.rewrites.entry(pass).or_insert(0) += count;
    tfe_metrics::counter_vec(
        "tfe_pass_pipeline_rewrites_total",
        "Graph rewrites applied by the optimizer, by pass",
        "pass",
    )
    .with(pass)
    .add(count);
}

/// Evaluates a single node on constant inputs (supplied by the runtime,
/// which owns the kernels). Returning `Err` skips folding that node.
pub type NodeEvaluator<'a> =
    dyn Fn(&Node, &[Arc<TensorData>]) -> Result<Vec<TensorData>, String> + 'a;

/// Run the configured pass pipeline. See [`optimize_with_stats`] for the
/// variant that also reports sweep and rewrite counts.
pub fn optimize(
    f: &GraphFunction,
    options: &OptimizeOptions,
    evaluator: Option<&NodeEvaluator>,
) -> GraphFunction {
    optimize_with_stats(f, options, evaluator).0
}

/// Run the pass pipeline to a structural-hash fixpoint and report what
/// happened. Each sweep runs the enabled passes once in [`PASS_NAMES`]
/// order; sweeps repeat until the hash stops changing, `max_sweeps` is
/// reached, or `fixpoint` is off. Elementwise fusion runs once after the
/// loop (it is a lowering, not a simplification — see the module docs).
pub fn optimize_with_stats(
    f: &GraphFunction,
    options: &OptimizeOptions,
    evaluator: Option<&NodeEvaluator>,
) -> (GraphFunction, OptimizeStats) {
    tfe_metrics::static_counter!(
        "tfe_pass_pipeline_runs_total",
        "Functions run through the optimizer pass pipeline"
    )
    .inc();
    let mut stats = OptimizeStats::default();
    let mut g = f.clone();
    let cap = options.max_sweeps.max(1) as u64;
    loop {
        let before = g.structural_hash();
        g = sweep(g, options, evaluator, &mut stats);
        stats.sweeps += 1;
        tfe_metrics::static_counter!(
            "tfe_pass_pipeline_sweeps_total",
            "Optimizer pass-pipeline sweeps executed"
        )
        .inc();
        if g.structural_hash() == before {
            stats.converged = true;
            break;
        }
        if !options.fixpoint || stats.sweeps >= cap {
            break;
        }
    }
    if !stats.converged {
        tfe_metrics::static_counter!(
            "tfe_pass_pipeline_capped_total",
            "Optimizer runs that hit the sweep cap before converging"
        )
        .inc();
    }
    if options.fuse_elementwise {
        let (h, n) = fuse_elementwise_counted(&g);
        record(&mut stats, "fuse_elementwise", n);
        g = h;
    }
    (g, stats)
}

/// One full pass sweep, in [`PASS_NAMES`] order (minus fusion).
fn sweep(
    mut g: GraphFunction,
    options: &OptimizeOptions,
    evaluator: Option<&NodeEvaluator>,
    stats: &mut OptimizeStats,
) -> GraphFunction {
    if options.propagate_constants {
        let (h, n) = propagate_constants_counted(&g);
        record(stats, "propagate_constants", n);
        g = h;
    }
    if options.fold_constants {
        if let Some(eval) = evaluator {
            let (h, n) = fold_constants_counted(&g, eval, options.fold_size_limit);
            record(stats, "fold_constants", n);
            g = h;
        }
    }
    if options.algebraic_simplify {
        let (h, n) = simplify_algebraic_counted(&g);
        record(stats, "simplify_algebraic", n);
        g = h;
    }
    if options.cse {
        let (h, n) = cse_counted(&g);
        record(stats, "cse", n);
        g = h;
    }
    if options.dead_store_elim {
        let (h, n) = eliminate_dead_stores_counted(&g);
        record(stats, "eliminate_dead_stores", n);
        g = h;
    }
    if options.prune {
        let (h, n) = prune_counted(&g);
        record(stats, "prune", n);
        g = h;
    }
    g
}

/// Rebuild a function keeping only nodes in `keep` (which must be closed
/// under input dependencies), remapping references.
fn rebuild(f: &GraphFunction, keep: &[bool]) -> GraphFunction {
    let mut remap: HashMap<usize, usize> = HashMap::new();
    let mut nodes = Vec::new();
    for (i, node) in f.nodes.iter().enumerate() {
        if keep[i] {
            let mut n = node.clone();
            for input in &mut n.inputs {
                input.node = NodeId(remap[&input.node.0]);
            }
            // Control targets are stateful, which `keep` always retains.
            for ctrl in &mut n.control_inputs {
                *ctrl = NodeId(remap[&ctrl.0]);
            }
            remap.insert(i, nodes.len());
            nodes.push(n);
        }
    }
    let inputs = f.inputs.iter().map(|id| NodeId(remap[&id.0])).collect();
    let outputs = f
        .outputs
        .iter()
        .map(|t| TensorRef { node: NodeId(remap[&t.node.0]), output: t.output })
        .collect();
    GraphFunction {
        name: f.name.clone(),
        nodes,
        inputs,
        outputs,
        num_captures: f.num_captures,
        constants: f.constants.clone(),
    }
}

/// Drop stateless nodes not reachable from the outputs (or from stateful
/// nodes). Placeholders always survive: they define the call signature.
pub fn prune(f: &GraphFunction) -> GraphFunction {
    prune_counted(f).0
}

fn prune_counted(f: &GraphFunction) -> (GraphFunction, u64) {
    let mut keep = vec![false; f.nodes.len()];
    let mut stack: Vec<usize> = Vec::new();
    for t in &f.outputs {
        stack.push(t.node.0);
    }
    for (i, n) in f.nodes.iter().enumerate() {
        if n.stateful || n.op == "placeholder" {
            stack.push(i);
        }
    }
    while let Some(i) = stack.pop() {
        if keep[i] {
            continue;
        }
        keep[i] = true;
        for input in &f.nodes[i].inputs {
            stack.push(input.node.0);
        }
    }
    let dropped = keep.iter().filter(|&&k| !k).count() as u64;
    if dropped == 0 {
        return (f.clone(), 0);
    }
    (rebuild(f, &keep), dropped)
}

fn const_key(f: &GraphFunction, node: &Node) -> Option<String> {
    let idx = match node.attrs.get("value_index") {
        Some(AttrValue::Int(i)) => *i as usize,
        _ => return None,
    };
    let value = f.constants.get(idx)?;
    if value.num_elements() > 1024 {
        return None; // don't hash big constants
    }
    let bits: Vec<String> =
        value.to_f64_vec().iter().map(|v| format!("{:x}", v.to_bits())).collect();
    Some(format!("{}:{}:{}", value.dtype(), value.shape(), bits.join(",")))
}

/// Common-subexpression elimination over stateless nodes.
pub fn cse(f: &GraphFunction) -> GraphFunction {
    cse_counted(f).0
}

fn cse_counted(f: &GraphFunction) -> (GraphFunction, u64) {
    let mut replacement: HashMap<usize, usize> = HashMap::new(); // old -> old
    let mut seen: HashMap<String, usize> = HashMap::new();
    for (i, node) in f.nodes.iter().enumerate() {
        if node.stateful || node.op == "placeholder" {
            continue;
        }
        let key = if node.op == "const" {
            match const_key(f, node) {
                Some(k) => format!("const|{k}"),
                None => continue,
            }
        } else {
            let inputs: Vec<String> = node
                .inputs
                .iter()
                .map(|t| {
                    let root = *replacement.get(&t.node.0).unwrap_or(&t.node.0);
                    format!("{root}:{}", t.output)
                })
                .collect();
            let attrs: Vec<String> = node.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{}|{}|{}", node.op, inputs.join(","), attrs.join(","))
        };
        match seen.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                replacement.insert(i, *e.get());
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(i);
            }
        }
    }
    if replacement.is_empty() {
        return (f.clone(), 0);
    }
    let merged = replacement.len() as u64;
    let mut g = f.clone();
    for node in &mut g.nodes {
        for input in &mut node.inputs {
            if let Some(&r) = replacement.get(&input.node.0) {
                input.node = NodeId(r);
            }
        }
    }
    for out in &mut g.outputs {
        if let Some(&r) = replacement.get(&out.node.0) {
            out.node = NodeId(r);
        }
    }
    (prune(&g), merged)
}

/// Evaluate stateless nodes whose inputs are all constants, replacing their
/// outputs with `const` nodes.
pub fn fold_constants(
    f: &GraphFunction,
    evaluator: &NodeEvaluator,
    size_limit: usize,
) -> GraphFunction {
    fold_constants_counted(f, evaluator, size_limit).0
}

fn fold_constants_counted(
    f: &GraphFunction,
    evaluator: &NodeEvaluator,
    size_limit: usize,
) -> (GraphFunction, u64) {
    // Map from (node, output) to the constant value it produces, if known.
    let mut known: HashMap<TensorRef, Arc<TensorData>> = HashMap::new();
    for (i, node) in f.nodes.iter().enumerate() {
        if node.op == "const" {
            if let Some(AttrValue::Int(idx)) = node.attrs.get("value_index") {
                known.insert(TensorRef::first(NodeId(i)), f.constants[*idx as usize].clone());
            }
            continue;
        }
        if node.stateful
            || node.op == "placeholder"
            || matches!(node.op.as_str(), "call" | "cond" | "while_loop" | "host_func" | "copy")
        {
            continue;
        }
        let inputs: Option<Vec<Arc<TensorData>>> =
            node.inputs.iter().map(|t| known.get(t).cloned()).collect();
        let Some(inputs) = inputs else { continue };
        if node.inputs.is_empty()
            && node.op != "const"
            && node.op != "fill"
            && node.op != "eye"
            && node.op != "range"
        {
            continue; // placeholders handled above; other 0-ary ops stateful
        }
        let Ok(values) = evaluator(&node.clone(), &inputs) else { continue };
        if values.iter().any(|v| v.num_elements() > size_limit) {
            continue;
        }
        for (out, value) in values.into_iter().enumerate() {
            known.insert(TensorRef { node: NodeId(i), output: out }, Arc::new(value));
        }
    }
    materialize_known(f, &known)
}

/// Replace every non-`const` node all of whose outputs appear in `known`
/// with fresh `const` nodes, then prune. The shared back half of
/// [`fold_constants`] and [`propagate_constants`]; returns the rewritten
/// graph plus the number of nodes replaced (0 leaves `f` untouched).
fn materialize_known(
    f: &GraphFunction,
    known: &HashMap<TensorRef, Arc<TensorData>>,
) -> (GraphFunction, u64) {
    let fully_known = |i: usize, node: &Node| {
        node.op != "const"
            && !node.outputs.is_empty()
            && (0..node.outputs.len())
                .all(|out| known.contains_key(&TensorRef { node: NodeId(i), output: out }))
    };
    if !f.nodes.iter().enumerate().any(|(i, n)| fully_known(i, n)) {
        return (f.clone(), 0);
    }
    let mut folded_nodes = 0u64;
    let mut g = f.clone();
    // Replace references to folded outputs (of non-const nodes) with fresh
    // const nodes, then prune. Appending the const nodes at the end would
    // break the "inputs reference earlier nodes" invariant for consumers in
    // between, so we instead rebuild the node list with const nodes
    // inserted at the folded node's position.
    let mut new_nodes: Vec<Node> = Vec::new();
    let mut remap: HashMap<TensorRef, TensorRef> = HashMap::new();
    let mut node_remap: HashMap<usize, usize> = HashMap::new();
    let mut constants = f.constants.clone();
    for (i, node) in f.nodes.iter().enumerate() {
        let folded: Vec<(usize, Arc<TensorData>)> = (0..node.outputs.len())
            .filter_map(|out| {
                known.get(&TensorRef { node: NodeId(i), output: out }).map(|v| (out, v.clone()))
            })
            .collect();
        if node.op != "const" && folded.len() == node.outputs.len() && !folded.is_empty() {
            // Fully folded: emit const nodes instead of the op.
            folded_nodes += 1;
            for (out, value) in folded {
                let dims: Vec<i64> = value.shape().dims().iter().map(|&d| d as i64).collect();
                let idx = constants.len();
                constants.push(value.clone());
                let sig = (value.dtype(), tfe_ops::SymShape::known(value.shape()));
                let cnode = Node {
                    op: "const".to_string(),
                    inputs: Vec::new(),
                    attrs: Attrs::new()
                        .with("dtype", value.dtype())
                        .with("shape", dims)
                        .with("value_index", idx as i64),
                    outputs: vec![sig],
                    stateful: false,
                    control_inputs: Vec::new(),
                };
                let new_id = NodeId(new_nodes.len());
                new_nodes.push(cnode);
                remap.insert(TensorRef { node: NodeId(i), output: out }, TensorRef::first(new_id));
            }
        } else {
            let mut n = node.clone();
            for input in &mut n.inputs {
                // Producers are earlier in the list, so remap is populated.
                *input = remap[input];
            }
            // Control targets are stateful and never folded, so they are
            // always present in node_remap.
            for ctrl in &mut n.control_inputs {
                *ctrl = NodeId(node_remap[&ctrl.0]);
            }
            let new_id = NodeId(new_nodes.len());
            node_remap.insert(i, new_id.0);
            for out in 0..n.outputs.len() {
                remap.insert(
                    TensorRef { node: NodeId(i), output: out },
                    TensorRef { node: new_id, output: out },
                );
            }
            new_nodes.push(n);
        }
    }
    g.nodes = new_nodes;
    g.constants = constants;
    g.inputs = f.inputs.iter().map(|id| remap[&TensorRef::first(*id)].node).collect();
    g.outputs = f.outputs.iter().map(|t| remap[t]).collect();
    (prune(&g), folded_nodes)
}

/// Fold tensor-metadata ops whose answer is already statically known from
/// the inferred signatures: `shape_of` and `size_of` when every dimension
/// of the input is known, `rank_of` always (rank is static in this IR).
/// The folded scalars then feed [`fold_constants`] on the next sweep —
/// this pass is the canonical reason the driver iterates.
pub fn propagate_constants(f: &GraphFunction) -> GraphFunction {
    propagate_constants_counted(f).0
}

fn propagate_constants_counted(f: &GraphFunction) -> (GraphFunction, u64) {
    let mut known: HashMap<TensorRef, Arc<TensorData>> = HashMap::new();
    for (i, node) in f.nodes.iter().enumerate() {
        if node.stateful || node.inputs.len() != 1 {
            continue;
        }
        let (_, shape) = f.sig(node.inputs[0]);
        let value = match node.op.as_str() {
            "shape_of" => {
                let dims: Option<Vec<i64>> =
                    shape.dims().iter().map(|d| d.map(|x| x as i64)).collect();
                dims.and_then(|d| {
                    let rank = d.len();
                    TensorData::from_vec(d, Shape::from([rank])).ok()
                })
            }
            "rank_of" => Some(TensorData::scalar(shape.rank() as i64)),
            "size_of" => shape.num_elements().map(|n| TensorData::scalar(n as i64)),
            _ => None,
        };
        if let Some(v) = value {
            known.insert(TensorRef::first(NodeId(i)), Arc::new(v));
        }
    }
    materialize_known(f, &known)
}

/// Algebraic simplification: identity-element rewrites (`x + 0`, `x - 0`,
/// `x * 1`, `x / 1`, honoring commutativity via the op's
/// [`identity_operand`] table), `identity` bypass, double-transpose
/// composition/cancellation, and absorption of rank-2 transposes into
/// `matmul`'s `transpose_a`/`transpose_b` flags (the packed gemm handles
/// all four combinations natively).
///
/// Identity-element rewrites only fire when the surviving operand's
/// signature equals the node's output signature — a broadcast like
/// `mul(scalar_x, ones_of_shape_2)` changes shape and must stay.
/// `x * 0` is deliberately not rewritten: it is an annihilator, not an
/// identity, and folding it would change NaN/Inf propagation.
pub fn simplify_algebraic(f: &GraphFunction) -> GraphFunction {
    simplify_algebraic_counted(f).0
}

fn simplify_algebraic_counted(f: &GraphFunction) -> (GraphFunction, u64) {
    fn resolve(redirect: &HashMap<TensorRef, TensorRef>, mut t: TensorRef) -> TensorRef {
        while let Some(&r) = redirect.get(&t) {
            t = r;
        }
        t
    }
    fn const_value(f: &GraphFunction, t: TensorRef) -> Option<Arc<TensorData>> {
        if t.output != 0 {
            return None;
        }
        let n = &f.nodes[t.node.0];
        if n.op != "const" {
            return None;
        }
        match n.attrs.get("value_index") {
            Some(AttrValue::Int(i)) => f.constants.get(*i as usize).cloned(),
            _ => None,
        }
    }
    fn is_uniform(v: &TensorData, c: f64) -> bool {
        if v.dtype() == DType::Bool || v.num_elements() == 0 || v.num_elements() > 4096 {
            return false;
        }
        v.to_f64_vec().iter().all(|&x| x == c)
    }
    fn perm_of(n: &Node) -> Option<Vec<i64>> {
        n.attrs.int_list("perm").ok().map(<[i64]>::to_vec)
    }

    let mut g = f.clone();
    let mut redirect: HashMap<TensorRef, TensorRef> = HashMap::new();
    let mut rewrites = 0u64;
    for i in 0..g.nodes.len() {
        // Rewire this node through every redirect recorded so far (its
        // producers all have smaller indices, so their redirects exist).
        let inputs: Vec<TensorRef> =
            g.nodes[i].inputs.iter().map(|&t| resolve(&redirect, t)).collect();
        g.nodes[i].inputs = inputs.clone();
        if g.nodes[i].stateful {
            continue;
        }
        let out = TensorRef::first(NodeId(i));
        let op = g.nodes[i].op.clone();
        match op.as_str() {
            "identity" if inputs.len() == 1 && g.nodes[i].outputs.len() == 1 => {
                if g.sig(inputs[0]) == g.nodes[i].output_sig(0) {
                    redirect.insert(out, inputs[0]);
                    rewrites += 1;
                }
            }
            "transpose" if inputs.len() == 1 && inputs[0].output == 0 => {
                let src = inputs[0].node.0;
                if g.nodes[src].op == "transpose" {
                    let composed = match (perm_of(&g.nodes[src]), perm_of(&g.nodes[i])) {
                        (Some(pi), Some(po)) => compose_perms(&pi, &po),
                        _ => None,
                    };
                    if let Some(q) = composed {
                        let inner_in = g.nodes[src].inputs[0];
                        if is_identity_perm(&q) {
                            redirect.insert(out, inner_in);
                        } else {
                            g.nodes[i].inputs[0] = inner_in;
                            g.nodes[i].attrs.set("perm", q);
                        }
                        rewrites += 1;
                    }
                }
            }
            "matmul" if inputs.len() == 2 => {
                for (slot, flag) in [(0usize, "transpose_a"), (1usize, "transpose_b")] {
                    let src = g.nodes[i].inputs[slot];
                    if src.output != 0 || g.nodes[src.node.0].op != "transpose" {
                        continue;
                    }
                    let Some(p) = perm_of(&g.nodes[src.node.0]) else { continue };
                    if !is_swap_perm(&p) {
                        continue;
                    }
                    let absorbed = g.nodes[src.node.0].inputs[0];
                    let cur = g.nodes[i].attrs.bool_or(flag, false).unwrap_or(false);
                    g.nodes[i].inputs[slot] = absorbed;
                    g.nodes[i].attrs.set(flag, !cur);
                    rewrites += 1;
                }
            }
            _ => {
                let Some((side, ident)) = identity_operand(&op) else { continue };
                if inputs.len() != 2 || g.nodes[i].outputs.len() != 1 {
                    continue;
                }
                let candidates: &[(usize, usize)] = match side {
                    IdentitySide::Either => &[(0, 1), (1, 0)],
                    IdentitySide::Rhs => &[(1, 0)],
                };
                for &(ci, xi) in candidates {
                    let Some(v) = const_value(&g, inputs[ci]) else { continue };
                    if !is_uniform(&v, ident) {
                        continue;
                    }
                    if g.sig(inputs[xi]) != g.nodes[i].output_sig(0) {
                        continue;
                    }
                    redirect.insert(out, inputs[xi]);
                    rewrites += 1;
                    break;
                }
            }
        }
    }
    if rewrites == 0 {
        return (f.clone(), 0);
    }
    let outs: Vec<TensorRef> = g.outputs.iter().map(|&t| resolve(&redirect, t)).collect();
    g.outputs = outs;
    // Bypassed nodes are now unreferenced; prune keeps the pass idempotent.
    (prune(&g), rewrites)
}

/// Dead-store elimination over the sequencing model: an `assign`/
/// `assign_add`/`assign_sub` is dead when a *later* plain `assign` to the
/// same variable overwrites it with no intervening read of that variable
/// and no intervening barrier. The final store to each variable always
/// survives — variables outlive the function, so its value is observable.
/// RNG and IO writes are never dropped. Control edges are recomputed for
/// the surviving program order, and the value chain that fed a dropped
/// store is left to the pruner (which this pass invokes).
pub fn eliminate_dead_stores(f: &GraphFunction) -> GraphFunction {
    eliminate_dead_stores_counted(f).0
}

fn eliminate_dead_stores_counted(f: &GraphFunction) -> (GraphFunction, u64) {
    let mut dead = vec![false; f.nodes.len()];
    // Variables a later plain `assign` fully overwrites, with no read or
    // barrier in between (reverse program-order scan).
    let mut clobbered: HashSet<i64> = HashSet::new();
    for i in (0..f.nodes.len()).rev() {
        let n = &f.nodes[i];
        match classify(&n.op, &n.attrs, n.stateful) {
            Access::Pure => {}
            Access::Barrier => clobbered.clear(),
            Access::Read(Resource::Var(v)) => {
                clobbered.remove(&v);
            }
            Access::Read(_) => {}
            Access::Write(Resource::Var(v)) => {
                if clobbered.contains(&v) {
                    // A dropped read-modify-write also drops its read, so
                    // the clobber window stays open past it.
                    dead[i] = true;
                } else if n.op == "assign" {
                    clobbered.insert(v);
                }
            }
            // RNG and IO writes advance observable streams; keep them.
            Access::Write(_) => {}
        }
    }
    // A store whose outputs are consumed or returned must stay, whatever
    // the chain says (assign ops produce no outputs today; this guards a
    // future change).
    if dead.iter().any(|&d| d) {
        let consumed: HashSet<usize> =
            f.nodes.iter().flat_map(|n| n.inputs.iter().map(|t| t.node.0)).collect();
        let escaped: HashSet<usize> = f.outputs.iter().map(|t| t.node.0).collect();
        for (i, d) in dead.iter_mut().enumerate() {
            if *d && (consumed.contains(&i) || escaped.contains(&i)) {
                *d = false;
            }
        }
    }
    let count = dead.iter().filter(|&&d| d).count() as u64;
    if count == 0 {
        return (f.clone(), 0);
    }
    let mut remap: HashMap<usize, usize> = HashMap::new();
    let mut nodes: Vec<Node> = Vec::new();
    for (i, node) in f.nodes.iter().enumerate() {
        if dead[i] {
            continue;
        }
        let mut n = node.clone();
        for input in &mut n.inputs {
            input.node = NodeId(remap[&input.node.0]);
        }
        // Recomputed below for the surviving program order.
        n.control_inputs.clear();
        remap.insert(i, nodes.len());
        nodes.push(n);
    }
    let ctrl = sequence_control_edges(&nodes);
    for (n, c) in nodes.iter_mut().zip(ctrl) {
        n.control_inputs = c;
    }
    let g = GraphFunction {
        name: f.name.clone(),
        nodes,
        inputs: f.inputs.iter().map(|id| NodeId(remap[&id.0])).collect(),
        outputs: f
            .outputs
            .iter()
            .map(|t| TensorRef { node: NodeId(remap[&t.node.0]), output: t.output })
            .collect(),
        num_captures: f.num_captures,
        constants: f.constants.clone(),
    };
    (prune(&g), count)
}

fn elementwise_kind(node: &Node) -> Option<()> {
    if node.outputs.len() != 1 {
        return None;
    }
    let dt = node.outputs[0].0;
    if dt == DType::Bool {
        return None;
    }
    if UnaryOp::from_name(&node.op).is_some() && node.inputs.len() == 1 {
        return Some(());
    }
    if BinaryOp::from_name(&node.op).is_some() && node.inputs.len() == 2 {
        return Some(());
    }
    None
}

/// Fuse maximal groups of elementwise nodes into `fused_elementwise` nodes.
///
/// A node joins its consumer's group when every consumer is the same group
/// and the node is not a function output — so each group has a single sink
/// whose value escapes.
///
/// Group assignment and emission use ordered (BTree) containers keyed by
/// node index, so the output node order — and therefore
/// [`GraphFunction::structural_hash`] — is a pure function of the input
/// graph. The fixpoint driver depends on that reproducibility.
pub fn fuse_elementwise(f: &GraphFunction) -> GraphFunction {
    fuse_elementwise_counted(f).0
}

fn fuse_elementwise_counted(f: &GraphFunction) -> (GraphFunction, u64) {
    let consumers = f.consumers();
    let output_set: HashSet<TensorRef> = f.outputs.iter().copied().collect();
    let n = f.nodes.len();
    // group id per node (sink's node index).
    let mut group: Vec<Option<usize>> = vec![None; n];
    for i in (0..n).rev() {
        let node = &f.nodes[i];
        if elementwise_kind(node).is_none() {
            continue;
        }
        let out_ref = TensorRef::first(NodeId(i));
        let cons = consumers.get(&out_ref);
        let escapes = output_set.contains(&out_ref);
        let consumer_groups: Option<BTreeSet<usize>> = cons
            .map(|list| list.iter().filter_map(|(c, _)| group[c.0]).collect::<BTreeSet<usize>>());
        let all_consumers_one_group = match (&cons, &consumer_groups) {
            (Some(list), Some(gs)) if !list.is_empty() => {
                gs.len() == 1 && list.iter().all(|(c, _)| group[c.0].is_some())
            }
            _ => false,
        };
        if !escapes && all_consumers_one_group {
            group[i] = consumer_groups.and_then(|gs| gs.into_iter().next());
        } else {
            group[i] = Some(i); // start a group with this node as sink
        }
    }
    // Collect members per sink, in topological order.
    let mut members: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, g) in group.iter().enumerate() {
        if let Some(g) = g {
            members.entry(*g).or_default().push(i);
        }
    }
    // Only fuse groups with >= 2 members.
    let fuse_groups: BTreeMap<usize, Vec<usize>> =
        members.into_iter().filter(|(_, m)| m.len() >= 2).collect();
    if fuse_groups.is_empty() {
        return (f.clone(), 0);
    }
    let in_fused: BTreeSet<usize> = fuse_groups.values().flatten().copied().collect();

    let mut new_nodes: Vec<Node> = Vec::new();
    let mut remap: HashMap<TensorRef, TensorRef> = HashMap::new();
    let mut node_remap: HashMap<usize, usize> = HashMap::new();
    for (i, node) in f.nodes.iter().enumerate() {
        if in_fused.contains(&i) && !fuse_groups.contains_key(&i) {
            continue; // interior member: folded into its sink
        }
        if let Some(member_list) = fuse_groups.get(&i) {
            // Emit the fused node at the sink's position.
            let mut prog_inputs: Vec<TensorRef> = Vec::new(); // external, old refs
            let mut reg_of: HashMap<TensorRef, usize> = HashMap::new();
            let mut instrs: Vec<Instr> = Vec::new();
            for &m in member_list {
                let mnode = &f.nodes[m];
                let mut arg_regs = Vec::with_capacity(mnode.inputs.len());
                for &input in &mnode.inputs {
                    let reg = if let Some(&r) = reg_of.get(&input) {
                        r
                    } else if in_fused.contains(&input.node.0) && group[input.node.0] == Some(i) {
                        unreachable!("group member consumed before definition")
                    } else {
                        // external input
                        let k = prog_inputs.iter().position(|&p| p == input).unwrap_or_else(|| {
                            prog_inputs.push(input);
                            prog_inputs.len() - 1
                        });
                        let reg = instrs.len();
                        instrs.push(Instr::Input(k));
                        reg_of.insert(input, reg);
                        reg
                    };
                    arg_regs.push(reg);
                }
                let reg = instrs.len();
                if let Some(op) = UnaryOp::from_name(&mnode.op) {
                    instrs.push(Instr::Unary(op, arg_regs[0]));
                } else if let Some(op) = BinaryOp::from_name(&mnode.op) {
                    instrs.push(Instr::Binary(op, arg_regs[0], arg_regs[1]));
                } else {
                    unreachable!("non-elementwise node in fusion group");
                }
                reg_of.insert(TensorRef::first(NodeId(m)), reg);
            }
            let output_reg = reg_of[&TensorRef::first(NodeId(i))];
            let program = Program { instrs, output: output_reg };
            let encoded = program.encode();
            // Compile at fusion time so the first kernel invocation — and
            // every one after — finds the decoded, slot-planned form in the
            // cache and never parses the attribute string.
            let _ = crate::program::compiled(&encoded);
            let sink = &f.nodes[i];
            let mapped_inputs: Vec<TensorRef> =
                prog_inputs.iter().map(|t| *remap.get(t).unwrap_or(t)).collect();
            let fused = Node {
                op: "fused_elementwise".to_string(),
                inputs: mapped_inputs,
                attrs: Attrs::new().with("program", encoded).with("out_dtype", sink.outputs[0].0),
                outputs: sink.outputs.clone(),
                stateful: false,
                control_inputs: Vec::new(),
            };
            let new_id = NodeId(new_nodes.len());
            node_remap.insert(i, new_id.0);
            new_nodes.push(fused);
            remap.insert(TensorRef::first(NodeId(i)), TensorRef::first(new_id));
        } else {
            let mut nclone = node.clone();
            for input in &mut nclone.inputs {
                if let Some(&r) = remap.get(input) {
                    *input = r;
                }
            }
            // Control targets are stateful and never fused away.
            for ctrl in &mut nclone.control_inputs {
                *ctrl = NodeId(node_remap[&ctrl.0]);
            }
            let new_id = NodeId(new_nodes.len());
            node_remap.insert(i, new_id.0);
            for out in 0..nclone.outputs.len() {
                remap.insert(
                    TensorRef { node: NodeId(i), output: out },
                    TensorRef { node: new_id, output: out },
                );
            }
            new_nodes.push(nclone);
        }
    }
    let fused_count = fuse_groups.len() as u64;
    let g = GraphFunction {
        name: f.name.clone(),
        nodes: new_nodes,
        inputs: f.inputs.iter().map(|id| TensorRef::first(*id)).map(|t| remap[&t].node).collect(),
        outputs: f.outputs.iter().map(|t| remap[t]).collect(),
        num_captures: f.num_captures,
        constants: f.constants.clone(),
    };
    (g, fused_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use tfe_ops::SymShape;
    use tfe_tensor::Shape;

    fn known(dims: &[usize]) -> SymShape {
        SymShape::known(&Shape::from(dims))
    }

    #[test]
    fn prune_drops_dead_stateless_nodes() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[2])).unwrap();
        let used = b.add_node("relu", vec![x], Attrs::new()).unwrap()[0];
        let _dead = b.add_node("exp", vec![x], Attrs::new()).unwrap();
        let f = b.finish(vec![used], 0);
        assert_eq!(f.executable_node_count(), 2);
        let g = prune(&f);
        assert_eq!(g.executable_node_count(), 1);
        assert_eq!(g.inputs.len(), 1);
        assert_eq!(g.output_sigs(), f.output_sigs());
    }

    #[test]
    fn prune_keeps_stateful_nodes() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[2])).unwrap();
        let y = b.add_node("relu", vec![x], Attrs::new()).unwrap()[0];
        // Dead assign (stateful) must survive.
        b.add_node("assign", vec![x], Attrs::new().with("var_id", 7i64)).unwrap();
        let f = b.finish(vec![y], 0);
        let g = prune(&f);
        assert!(g.nodes.iter().any(|n| n.op == "assign"));
    }

    #[test]
    fn cse_merges_duplicates() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[2])).unwrap();
        let a = b.add_node("relu", vec![x], Attrs::new()).unwrap()[0];
        let c = b.add_node("relu", vec![x], Attrs::new()).unwrap()[0];
        let out = b.add_node("add", vec![a, c], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![out], 0);
        let g = cse(&f);
        assert_eq!(g.nodes.iter().filter(|n| n.op == "relu").count(), 1);
        // add now consumes the same ref twice
        let add = g.nodes.iter().find(|n| n.op == "add").unwrap();
        assert_eq!(add.inputs[0], add.inputs[1]);
    }

    #[test]
    fn cse_respects_attrs_and_statefulness() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[2, 2])).unwrap();
        let t1 =
            b.add_node("reduce_sum", vec![x], Attrs::new().with("axes", vec![0i64])).unwrap()[0];
        let t2 =
            b.add_node("reduce_sum", vec![x], Attrs::new().with("axes", vec![1i64])).unwrap()[0];
        // Two RNG nodes must never merge.
        let r1 = b
            .add_node(
                "random_normal",
                vec![],
                Attrs::new().with("dtype", DType::F32).with("shape", vec![2i64]),
            )
            .unwrap()[0];
        let r2 = b
            .add_node(
                "random_normal",
                vec![],
                Attrs::new().with("dtype", DType::F32).with("shape", vec![2i64]),
            )
            .unwrap()[0];
        let s = b.add_node("add", vec![t1, t2], Attrs::new()).unwrap()[0];
        let s2 = b.add_node("add", vec![r1, r2], Attrs::new()).unwrap()[0];
        let out = b.add_node("add", vec![s, s2], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![out], 0);
        let g = cse(&f);
        assert_eq!(g.nodes.iter().filter(|n| n.op == "reduce_sum").count(), 2);
        assert_eq!(g.nodes.iter().filter(|n| n.op == "random_normal").count(), 2);
    }

    #[test]
    fn cse_dedupes_equal_constants() {
        let mut b = GraphBuilder::new("f");
        let c1 = b.constant(Arc::new(TensorData::scalar(5.0f32))).unwrap();
        let c2 = b.constant(Arc::new(TensorData::scalar(5.0f32))).unwrap();
        let out = b.add_node("add", vec![c1, c2], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![out], 0);
        let g = cse(&f);
        assert_eq!(g.nodes.iter().filter(|n| n.op == "const").count(), 1);
    }

    fn toy_evaluator(node: &Node, inputs: &[Arc<TensorData>]) -> Result<Vec<TensorData>, String> {
        // Enough kernels to test folding: add/sub/mul/relu on concrete data.
        match node.op.as_str() {
            "add" => {
                Ok(vec![tfe_tensor::elementwise::binary(&inputs[0], &inputs[1], BinaryOp::Add)
                    .map_err(|e| e.to_string())?])
            }
            "sub" => {
                Ok(vec![tfe_tensor::elementwise::binary(&inputs[0], &inputs[1], BinaryOp::Sub)
                    .map_err(|e| e.to_string())?])
            }
            "mul" => {
                Ok(vec![tfe_tensor::elementwise::binary(&inputs[0], &inputs[1], BinaryOp::Mul)
                    .map_err(|e| e.to_string())?])
            }
            "relu" => Ok(vec![tfe_tensor::elementwise::unary(&inputs[0], UnaryOp::Relu)
                .map_err(|e| e.to_string())?]),
            other => Err(format!("no fold kernel for {other}")),
        }
    }

    #[test]
    fn fold_constant_subgraph() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[2])).unwrap();
        let c1 = b.constant(Arc::new(TensorData::scalar(2.0f32))).unwrap();
        let c2 = b.constant(Arc::new(TensorData::scalar(3.0f32))).unwrap();
        let c3 = b.add_node("mul", vec![c1, c2], Attrs::new()).unwrap()[0]; // 6.0, foldable
        let out = b.add_node("add", vec![x, c3], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![out], 0);
        let g = fold_constants(&f, &toy_evaluator, 1024);
        // mul is gone; its value became a const.
        assert!(!g.nodes.iter().any(|n| n.op == "mul"));
        let add = g.nodes.iter().find(|n| n.op == "add").unwrap();
        let const_input = add.inputs[1];
        let cnode = g.node(const_input.node);
        assert_eq!(cnode.op, "const");
        let idx = match cnode.attrs.get("value_index") {
            Some(AttrValue::Int(i)) => *i as usize,
            _ => panic!("missing value_index"),
        };
        assert_eq!(g.constants[idx].scalar_f64().unwrap(), 6.0);
    }

    #[test]
    fn fold_skips_unsupported_and_stateful() {
        let mut b = GraphBuilder::new("f");
        let c1 = b.constant(Arc::new(TensorData::scalar(2.0f32))).unwrap();
        let e = b.add_node("exp", vec![c1], Attrs::new()).unwrap()[0]; // evaluator lacks exp
        let r = b
            .add_node(
                "random_normal",
                vec![],
                Attrs::new().with("dtype", DType::F32).with("shape", Vec::<i64>::new()),
            )
            .unwrap()[0];
        let out = b.add_node("add", vec![e, r], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![out], 0);
        let g = fold_constants(&f, &toy_evaluator, 1024);
        assert!(g.nodes.iter().any(|n| n.op == "exp"));
        assert!(g.nodes.iter().any(|n| n.op == "random_normal"));
    }

    #[test]
    fn fuse_simple_chain() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[4])).unwrap();
        let y = b.placeholder(DType::F32, known(&[4])).unwrap();
        let s = b.add_node("add", vec![x, y], Attrs::new()).unwrap()[0];
        let r = b.add_node("relu", vec![s], Attrs::new()).unwrap()[0];
        let e = b.add_node("exp", vec![r], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![e], 0);
        let g = fuse_elementwise(&f);
        let fused: Vec<&Node> = g.nodes.iter().filter(|n| n.op == "fused_elementwise").collect();
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].inputs.len(), 2);
        let program = Program::decode(match fused[0].attrs.get("program") {
            Some(AttrValue::Str(s)) => s,
            _ => panic!("missing program"),
        })
        .unwrap();
        assert_eq!(program.op_count(), 3);
        // Executable count dropped from 3 to 1.
        assert_eq!(g.executable_node_count(), 1);
    }

    #[test]
    fn fuse_respects_escaping_intermediates() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[4])).unwrap();
        let s = b.add_node("relu", vec![x], Attrs::new()).unwrap()[0];
        let e = b.add_node("exp", vec![s], Attrs::new()).unwrap()[0];
        // s escapes as a second output: the chain cannot fully fuse.
        let f = b.finish(vec![e, s], 0);
        let g = fuse_elementwise(&f);
        // relu must survive as its own node.
        assert!(g.nodes.iter().any(|n| n.op == "relu"));
        assert_eq!(g.outputs.len(), 2);
    }

    #[test]
    fn fuse_keeps_non_elementwise_boundaries() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[4, 4])).unwrap();
        let r = b.add_node("relu", vec![x], Attrs::new()).unwrap()[0];
        let m = b.add_node("matmul", vec![r, r], Attrs::new()).unwrap()[0];
        let t = b.add_node("tanh", vec![m], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![t], 0);
        let g = fuse_elementwise(&f);
        // Nothing to fuse: single elementwise nodes on each side of matmul.
        assert!(g.nodes.iter().any(|n| n.op == "matmul"));
        assert!(!g.nodes.iter().any(|n| n.op == "fused_elementwise"));
    }

    #[test]
    fn fused_program_evaluates_like_original() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[4])).unwrap();
        let y = b.placeholder(DType::F32, known(&[4])).unwrap();
        let s = b.add_node("add", vec![x, y], Attrs::new()).unwrap()[0];
        let sq = b.add_node("square", vec![s], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![sq], 0);
        let g = fuse_elementwise(&f);
        let fused = g.nodes.iter().find(|n| n.op == "fused_elementwise").unwrap();
        let program = Program::decode(match fused.attrs.get("program") {
            Some(AttrValue::Str(s)) => s,
            _ => panic!(),
        })
        .unwrap();
        let a = TensorData::from_vec(vec![1.0f32, 2.0, 3.0, -1.0], Shape::from([4])).unwrap();
        let c = TensorData::from_vec(vec![1.0f32, 1.0, 1.0, 1.0], Shape::from([4])).unwrap();
        let r = program.eval(&[&a, &c]).unwrap();
        assert_eq!(r.to_f64_vec(), vec![4.0, 9.0, 16.0, 0.0]);
    }

    #[test]
    fn optimize_pipeline_composes() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[4])).unwrap();
        let c1 = b.constant(Arc::new(TensorData::scalar(1.0f32))).unwrap();
        let c2 = b.constant(Arc::new(TensorData::scalar(1.0f32))).unwrap();
        let folded = b.add_node("add", vec![c1, c2], Attrs::new()).unwrap()[0];
        let a1 = b.add_node("add", vec![x, folded], Attrs::new()).unwrap()[0];
        let a2 = b.add_node("relu", vec![a1], Attrs::new()).unwrap()[0];
        let _dead = b.add_node("exp", vec![x], Attrs::new()).unwrap();
        let f = b.finish(vec![a2], 0);
        let g = optimize(&f, &OptimizeOptions::aggressive(), Some(&toy_evaluator));
        // dead exp pruned, consts folded+deduped, add+relu fused.
        assert!(!g.nodes.iter().any(|n| n.op == "exp"));
        assert!(g.nodes.iter().any(|n| n.op == "fused_elementwise"));
        assert!(g.executable_node_count() <= 2);
        // identity pipeline really is the identity
        let same = optimize(&f, &OptimizeOptions::none(), None);
        assert_eq!(same.nodes.len(), f.nodes.len());
    }

    fn const_payload(g: &GraphFunction, t: TensorRef) -> Vec<f64> {
        let n = g.node(t.node);
        assert_eq!(n.op, "const", "expected a const, got {}", n.op);
        match n.attrs.get("value_index") {
            Some(AttrValue::Int(i)) => g.constants[*i as usize].to_f64_vec(),
            _ => panic!("const without value_index"),
        }
    }

    #[test]
    fn propagate_folds_static_metadata() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[2, 3])).unwrap();
        let y = b.placeholder(DType::F32, SymShape::new(vec![None, Some(3)])).unwrap();
        let sx = b.add_node("shape_of", vec![x], Attrs::new()).unwrap()[0];
        let ry = b.add_node("rank_of", vec![y], Attrs::new()).unwrap()[0];
        let sy = b.add_node("shape_of", vec![y], Attrs::new()).unwrap()[0];
        let zy = b.add_node("size_of", vec![y], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![sx, ry, sy, zy], 0);
        let g = propagate_constants(&f);
        // Fully-known shape and (always-static) rank fold; the shape and
        // size of a partially-unknown input must survive to runtime.
        assert_eq!(const_payload(&g, g.outputs[0]), vec![2.0, 3.0]);
        assert_eq!(const_payload(&g, g.outputs[1]), vec![2.0]);
        assert_eq!(g.node(g.outputs[2].node).op, "shape_of");
        assert_eq!(g.node(g.outputs[3].node).op, "size_of");
    }

    #[test]
    fn algebraic_removes_identity_elements() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[2])).unwrap();
        let one = b.constant(Arc::new(TensorData::scalar(1.0f32))).unwrap();
        let zero = b.constant(Arc::new(TensorData::scalar(0.0f32))).unwrap();
        let m = b.add_node("mul", vec![one, x], Attrs::new()).unwrap()[0];
        let s = b.add_node("sub", vec![m, zero], Attrs::new()).unwrap()[0];
        let d = b.add_node("div", vec![s, one], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![d], 0);
        let g = simplify_algebraic(&f);
        // 1*x, -0, /1 all cancel; the output is the placeholder itself.
        assert_eq!(g.executable_node_count(), 0);
        assert_eq!(g.node(g.outputs[0].node).op, "placeholder");
    }

    #[test]
    fn algebraic_keeps_broadcasting_identities() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, SymShape::scalar()).unwrap();
        let ones = b
            .constant(Arc::new(TensorData::from_vec(vec![1.0f32, 1.0], Shape::from([2])).unwrap()))
            .unwrap();
        let m = b.add_node("mul", vec![x, ones], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![m], 0);
        let g = simplify_algebraic(&f);
        // mul(scalar, ones[2]) broadcasts to shape [2]; dropping it would
        // change the output shape.
        assert!(g.nodes.iter().any(|n| n.op == "mul"));
    }

    #[test]
    fn algebraic_cancels_double_transpose() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[2, 3])).unwrap();
        let perm = vec![1i64, 0];
        let t1 =
            b.add_node("transpose", vec![x], Attrs::new().with("perm", perm.clone())).unwrap()[0];
        let t2 = b.add_node("transpose", vec![t1], Attrs::new().with("perm", perm)).unwrap()[0];
        let f = b.finish(vec![t2], 0);
        let g = simplify_algebraic(&f);
        assert!(!g.nodes.iter().any(|n| n.op == "transpose"));
        assert_eq!(g.node(g.outputs[0].node).op, "placeholder");
    }

    #[test]
    fn algebraic_absorbs_transpose_into_matmul() {
        let mut b = GraphBuilder::new("f");
        let a = b.placeholder(DType::F32, known(&[2, 3])).unwrap();
        let c = b.placeholder(DType::F32, known(&[2, 4])).unwrap();
        let t =
            b.add_node("transpose", vec![a], Attrs::new().with("perm", vec![1i64, 0])).unwrap()[0];
        let m = b.add_node("matmul", vec![t, c], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![m], 0);
        assert_eq!(f.sig(m).1, known(&[3, 4]));
        let g = simplify_algebraic(&f);
        assert!(!g.nodes.iter().any(|n| n.op == "transpose"));
        let mm = g.nodes.iter().find(|n| n.op == "matmul").unwrap();
        assert_eq!(mm.attrs.bool_or("transpose_a", false), Ok(true));
        // Result signature is unchanged by the absorption.
        assert_eq!(g.output_sigs(), f.output_sigs());
    }

    fn var_write(b: &mut GraphBuilder, op: &str, var: i64, value: TensorRef) {
        b.add_node(op, vec![value], Attrs::new().with("var_id", var)).unwrap();
    }

    #[test]
    fn dse_drops_overwritten_stores() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, SymShape::scalar()).unwrap();
        let y = b.add_node("relu", vec![x], Attrs::new()).unwrap()[0];
        var_write(&mut b, "assign", 7, y); // clobbered below, never read
        var_write(&mut b, "assign_add", 7, x); // also clobbered
        var_write(&mut b, "assign", 7, x); // final store: must survive
        var_write(&mut b, "assign", 8, x); // different variable: untouched
        let f = b.finish(vec![x], 0);
        let g = eliminate_dead_stores(&f);
        assert_eq!(g.nodes.iter().filter(|n| n.op == "assign").count(), 2);
        assert!(!g.nodes.iter().any(|n| n.op == "assign_add"));
        // The relu that only fed the dead store is gone too.
        assert!(!g.nodes.iter().any(|n| n.op == "relu"));
    }

    #[test]
    fn dse_keeps_read_and_rmw_stores() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, SymShape::scalar()).unwrap();
        var_write(&mut b, "assign", 7, x);
        let r = b
            .add_node(
                "read_variable",
                vec![],
                Attrs::new()
                    .with("var_id", 7i64)
                    .with("dtype", DType::F32)
                    .with("shape", Vec::<i64>::new()),
            )
            .unwrap()[0];
        var_write(&mut b, "assign", 7, x); // ok: read intervenes
        var_write(&mut b, "assign", 9, x);
        var_write(&mut b, "assign_add", 9, x); // reads 9: earlier store live
        let f = b.finish(vec![r], 0);
        let g = eliminate_dead_stores(&f);
        assert_eq!(g.nodes.len(), f.nodes.len());
        // Control edges survive re-sequencing: the read still waits on the
        // first assign.
        let recomputed = sequence_control_edges(&g.nodes);
        for (i, n) in g.nodes.iter().enumerate() {
            assert_eq!(n.control_inputs, recomputed[i], "node {i}");
        }
    }

    #[test]
    fn dse_treats_barriers_as_reads() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, SymShape::scalar()).unwrap();
        var_write(&mut b, "assign", 7, x);
        // A barrier (opaque stateful op) may read any variable.
        let sig = tfe_ops::catalog::encode_sig(&[(DType::F32, SymShape::scalar())]);
        b.add_node(
            "host_func",
            vec![x],
            Attrs::new().with("fn_id", 0i64).with("out_dtypes", sig.0).with("out_shapes", sig.1),
        )
        .unwrap();
        var_write(&mut b, "assign", 7, x);
        let f = b.finish(vec![x], 0);
        let g = eliminate_dead_stores(&f);
        assert_eq!(g.nodes.iter().filter(|n| n.op == "assign").count(), 2);
    }

    fn no_mul_evaluator(
        node: &Node,
        inputs: &[Arc<TensorData>],
    ) -> Result<Vec<TensorData>, String> {
        if node.op == "mul" {
            return Err("mul withheld to force multi-sweep folding".into());
        }
        toy_evaluator(node, inputs)
    }

    #[test]
    fn fixpoint_compounds_across_sweeps() {
        // x + ((2 * 1) - 2): the evaluator refuses `mul`, so sweep 1 can
        // only simplify 2*1 -> 2 algebraically; sweep 2 folds 2-2 -> 0;
        // then x+0 -> x. A single sweep cannot finish this.
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[2])).unwrap();
        let two = b.constant(Arc::new(TensorData::scalar(2.0f32))).unwrap();
        let one = b.constant(Arc::new(TensorData::scalar(1.0f32))).unwrap();
        let m = b.add_node("mul", vec![two, one], Attrs::new()).unwrap()[0];
        let d = b.add_node("sub", vec![m, two], Attrs::new()).unwrap()[0];
        let out = b.add_node("add", vec![x, d], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![out], 0);

        let single = OptimizeOptions { fixpoint: false, ..OptimizeOptions::default() };
        let (g1, s1) = optimize_with_stats(&f, &single, Some(&no_mul_evaluator));
        assert_eq!(s1.sweeps, 1);
        assert!(g1.executable_node_count() > 0, "one sweep must not finish");

        let (g, stats) =
            optimize_with_stats(&f, &OptimizeOptions::default(), Some(&no_mul_evaluator));
        assert!(stats.converged);
        assert_eq!(stats.sweeps, 3); // two productive sweeps + the proof sweep
        assert_eq!(g.executable_node_count(), 0);
        assert_eq!(g.node(g.outputs[0].node).op, "placeholder");
        assert_eq!(stats.rewrites_for("simplify_algebraic"), 2);
        assert_eq!(stats.rewrites_for("fold_constants"), 1);
        assert!(stats.total_rewrites() >= 3);
    }

    #[test]
    fn only_options_enable_a_single_pass() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[2])).unwrap();
        let a = b.add_node("relu", vec![x], Attrs::new()).unwrap()[0];
        let c = b.add_node("relu", vec![x], Attrs::new()).unwrap()[0];
        let out = b.add_node("add", vec![a, c], Attrs::new()).unwrap()[0];
        let _dead = b.add_node("exp", vec![x], Attrs::new()).unwrap();
        let f = b.finish(vec![out], 0);
        let pruned = optimize(&f, &OptimizeOptions::only("prune"), None);
        assert!(!pruned.nodes.iter().any(|n| n.op == "exp"));
        assert_eq!(pruned.nodes.iter().filter(|n| n.op == "relu").count(), 2);
        let deduped = optimize(&f, &OptimizeOptions::only("cse"), None);
        assert_eq!(deduped.nodes.iter().filter(|n| n.op == "relu").count(), 1);
    }

    #[test]
    fn fuse_hash_is_reproducible() {
        // A graph with several fusion groups and shared inputs; the fused
        // output must hash identically run after run.
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[4])).unwrap();
        let y = b.placeholder(DType::F32, known(&[4])).unwrap();
        let s = b.add_node("add", vec![x, y], Attrs::new()).unwrap()[0];
        let r = b.add_node("relu", vec![s], Attrs::new()).unwrap()[0];
        let e = b.add_node("exp", vec![y], Attrs::new()).unwrap()[0];
        let t = b.add_node("tanh", vec![e], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![r, t], 0);
        let h0 = fuse_elementwise(&f).structural_hash();
        for _ in 0..16 {
            assert_eq!(fuse_elementwise(&f).structural_hash(), h0);
        }
    }
}
