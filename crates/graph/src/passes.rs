//! Graph optimization passes.
//!
//! These are the optimizations the paper attributes to staging (§4.1:
//! "inter-op parallelism and optimizations like constant-folding and buffer
//! reuse"; §5: "non-stateful operations that are not reachable from the
//! outputs of a function are pruned"). Fusion is the XLA stand-in (§4.4).

use crate::ir::{GraphFunction, Node, NodeId, TensorRef};
use crate::program::{Instr, Program};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use tfe_ops::{AttrValue, Attrs};
use tfe_tensor::elementwise::{BinaryOp, UnaryOp};
use tfe_tensor::{DType, TensorData};

/// Options controlling [`optimize`].
#[derive(Debug, Clone)]
pub struct OptimizeOptions {
    /// Drop stateless nodes unreachable from the outputs.
    pub prune: bool,
    /// Deduplicate identical stateless nodes.
    pub cse: bool,
    /// Evaluate stateless nodes with all-constant inputs at optimization
    /// time (requires an evaluator; skipped otherwise).
    pub fold_constants: bool,
    /// Fuse chains of elementwise ops into `fused_elementwise` nodes.
    pub fuse_elementwise: bool,
    /// Skip folding results larger than this many elements.
    pub fold_size_limit: usize,
}

impl Default for OptimizeOptions {
    fn default() -> OptimizeOptions {
        OptimizeOptions {
            prune: true,
            cse: true,
            fold_constants: true,
            fuse_elementwise: false, // opt-in: the "XLA" path (TPU) turns it on
            fold_size_limit: 65_536,
        }
    }
}

impl OptimizeOptions {
    /// Everything on — the XLA-style pipeline used for TPU placement.
    pub fn aggressive() -> OptimizeOptions {
        OptimizeOptions { fuse_elementwise: true, ..OptimizeOptions::default() }
    }

    /// Everything off (identity pipeline), for ablations.
    pub fn none() -> OptimizeOptions {
        OptimizeOptions {
            prune: false,
            cse: false,
            fold_constants: false,
            fuse_elementwise: false,
            fold_size_limit: 0,
        }
    }
}

/// Evaluates a single node on constant inputs (supplied by the runtime,
/// which owns the kernels). Returning `Err` skips folding that node.
pub type NodeEvaluator<'a> =
    dyn Fn(&Node, &[Arc<TensorData>]) -> Result<Vec<TensorData>, String> + 'a;

/// Run the configured pass pipeline.
pub fn optimize(
    f: &GraphFunction,
    options: &OptimizeOptions,
    evaluator: Option<&NodeEvaluator>,
) -> GraphFunction {
    let mut g = f.clone();
    if options.cse {
        g = cse(&g);
    }
    if options.fold_constants {
        if let Some(eval) = evaluator {
            g = fold_constants(&g, eval, options.fold_size_limit);
        }
    }
    if options.fuse_elementwise {
        g = fuse_elementwise(&g);
    }
    if options.prune {
        g = prune(&g);
    }
    g
}

/// Rebuild a function keeping only nodes in `keep` (which must be closed
/// under input dependencies), remapping references.
fn rebuild(f: &GraphFunction, keep: &[bool]) -> GraphFunction {
    let mut remap: HashMap<usize, usize> = HashMap::new();
    let mut nodes = Vec::new();
    for (i, node) in f.nodes.iter().enumerate() {
        if keep[i] {
            let mut n = node.clone();
            for input in &mut n.inputs {
                input.node = NodeId(remap[&input.node.0]);
            }
            // Control targets are stateful, which `keep` always retains.
            for ctrl in &mut n.control_inputs {
                *ctrl = NodeId(remap[&ctrl.0]);
            }
            remap.insert(i, nodes.len());
            nodes.push(n);
        }
    }
    let inputs = f.inputs.iter().map(|id| NodeId(remap[&id.0])).collect();
    let outputs = f
        .outputs
        .iter()
        .map(|t| TensorRef { node: NodeId(remap[&t.node.0]), output: t.output })
        .collect();
    GraphFunction {
        name: f.name.clone(),
        nodes,
        inputs,
        outputs,
        num_captures: f.num_captures,
        constants: f.constants.clone(),
    }
}

/// Drop stateless nodes not reachable from the outputs (or from stateful
/// nodes). Placeholders always survive: they define the call signature.
pub fn prune(f: &GraphFunction) -> GraphFunction {
    let mut keep = vec![false; f.nodes.len()];
    let mut stack: Vec<usize> = Vec::new();
    for t in &f.outputs {
        stack.push(t.node.0);
    }
    for (i, n) in f.nodes.iter().enumerate() {
        if n.stateful || n.op == "placeholder" {
            stack.push(i);
        }
    }
    while let Some(i) = stack.pop() {
        if keep[i] {
            continue;
        }
        keep[i] = true;
        for input in &f.nodes[i].inputs {
            stack.push(input.node.0);
        }
    }
    rebuild(f, &keep)
}

fn const_key(f: &GraphFunction, node: &Node) -> Option<String> {
    let idx = match node.attrs.get("value_index") {
        Some(AttrValue::Int(i)) => *i as usize,
        _ => return None,
    };
    let value = f.constants.get(idx)?;
    if value.num_elements() > 1024 {
        return None; // don't hash big constants
    }
    let bits: Vec<String> =
        value.to_f64_vec().iter().map(|v| format!("{:x}", v.to_bits())).collect();
    Some(format!("{}:{}:{}", value.dtype(), value.shape(), bits.join(",")))
}

/// Common-subexpression elimination over stateless nodes.
pub fn cse(f: &GraphFunction) -> GraphFunction {
    let mut replacement: HashMap<usize, usize> = HashMap::new(); // old -> old
    let mut seen: HashMap<String, usize> = HashMap::new();
    for (i, node) in f.nodes.iter().enumerate() {
        if node.stateful || node.op == "placeholder" {
            continue;
        }
        let key = if node.op == "const" {
            match const_key(f, node) {
                Some(k) => format!("const|{k}"),
                None => continue,
            }
        } else {
            let inputs: Vec<String> = node
                .inputs
                .iter()
                .map(|t| {
                    let root = *replacement.get(&t.node.0).unwrap_or(&t.node.0);
                    format!("{root}:{}", t.output)
                })
                .collect();
            let attrs: Vec<String> = node.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{}|{}|{}", node.op, inputs.join(","), attrs.join(","))
        };
        match seen.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                replacement.insert(i, *e.get());
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(i);
            }
        }
    }
    if replacement.is_empty() {
        return f.clone();
    }
    let mut g = f.clone();
    for node in &mut g.nodes {
        for input in &mut node.inputs {
            if let Some(&r) = replacement.get(&input.node.0) {
                input.node = NodeId(r);
            }
        }
    }
    for out in &mut g.outputs {
        if let Some(&r) = replacement.get(&out.node.0) {
            out.node = NodeId(r);
        }
    }
    prune(&g)
}

/// Evaluate stateless nodes whose inputs are all constants, replacing their
/// outputs with `const` nodes.
pub fn fold_constants(
    f: &GraphFunction,
    evaluator: &NodeEvaluator,
    size_limit: usize,
) -> GraphFunction {
    let mut g = f.clone();
    // Map from (node, output) to the constant value it produces, if known.
    let mut known: HashMap<TensorRef, Arc<TensorData>> = HashMap::new();
    for (i, node) in f.nodes.iter().enumerate() {
        if node.op == "const" {
            if let Some(AttrValue::Int(idx)) = node.attrs.get("value_index") {
                known.insert(TensorRef::first(NodeId(i)), f.constants[*idx as usize].clone());
            }
            continue;
        }
        if node.stateful
            || node.op == "placeholder"
            || matches!(node.op.as_str(), "call" | "cond" | "while_loop" | "host_func" | "copy")
        {
            continue;
        }
        let inputs: Option<Vec<Arc<TensorData>>> =
            node.inputs.iter().map(|t| known.get(t).cloned()).collect();
        let Some(inputs) = inputs else { continue };
        if node.inputs.is_empty()
            && node.op != "const"
            && node.op != "fill"
            && node.op != "eye"
            && node.op != "range"
        {
            continue; // placeholders handled above; other 0-ary ops stateful
        }
        let Ok(values) = evaluator(&node.clone(), &inputs) else { continue };
        if values.iter().any(|v| v.num_elements() > size_limit) {
            continue;
        }
        for (out, value) in values.into_iter().enumerate() {
            known.insert(TensorRef { node: NodeId(i), output: out }, Arc::new(value));
        }
    }
    if known.is_empty() {
        return g;
    }
    // Replace references to folded outputs (of non-const nodes) with fresh
    // const nodes appended at the end, then prune. References from earlier
    // nodes to a later const are avoided by instead rewriting in place: we
    // append const nodes and remap, then rely on `rebuild` keeping
    // topological order... appending at the end would break the "inputs
    // reference earlier nodes" invariant for consumers in between, so we
    // instead rebuild the node list with const nodes inserted at the folded
    // node's position.
    let mut new_nodes: Vec<Node> = Vec::new();
    let mut remap: HashMap<TensorRef, TensorRef> = HashMap::new();
    let mut node_remap: HashMap<usize, usize> = HashMap::new();
    let mut constants = f.constants.clone();
    for (i, node) in f.nodes.iter().enumerate() {
        let folded: Vec<(usize, Arc<TensorData>)> = (0..node.outputs.len())
            .filter_map(|out| {
                known.get(&TensorRef { node: NodeId(i), output: out }).map(|v| (out, v.clone()))
            })
            .collect();
        if node.op != "const" && folded.len() == node.outputs.len() && !folded.is_empty() {
            // Fully folded: emit const nodes instead of the op.
            for (out, value) in folded {
                let dims: Vec<i64> = value.shape().dims().iter().map(|&d| d as i64).collect();
                let idx = constants.len();
                constants.push(value.clone());
                let sig = (value.dtype(), tfe_ops::SymShape::known(value.shape()));
                let cnode = Node {
                    op: "const".to_string(),
                    inputs: Vec::new(),
                    attrs: Attrs::new()
                        .with("dtype", value.dtype())
                        .with("shape", dims)
                        .with("value_index", idx as i64),
                    outputs: vec![sig],
                    stateful: false,
                    control_inputs: Vec::new(),
                };
                let new_id = NodeId(new_nodes.len());
                new_nodes.push(cnode);
                remap.insert(TensorRef { node: NodeId(i), output: out }, TensorRef::first(new_id));
            }
        } else {
            let mut n = node.clone();
            for input in &mut n.inputs {
                // Producers are earlier in the list, so remap is populated.
                *input = remap[input];
            }
            // Control targets are stateful and never folded, so they are
            // always present in node_remap.
            for ctrl in &mut n.control_inputs {
                *ctrl = NodeId(node_remap[&ctrl.0]);
            }
            let new_id = NodeId(new_nodes.len());
            node_remap.insert(i, new_id.0);
            for out in 0..n.outputs.len() {
                remap.insert(
                    TensorRef { node: NodeId(i), output: out },
                    TensorRef { node: new_id, output: out },
                );
            }
            new_nodes.push(n);
        }
    }
    g.nodes = new_nodes;
    g.constants = constants;
    g.inputs = f.inputs.iter().map(|id| remap[&TensorRef::first(*id)].node).collect();
    g.outputs = f.outputs.iter().map(|t| remap[t]).collect();
    prune(&g)
}

fn elementwise_kind(node: &Node) -> Option<()> {
    if node.outputs.len() != 1 {
        return None;
    }
    let dt = node.outputs[0].0;
    if dt == DType::Bool {
        return None;
    }
    if UnaryOp::from_name(&node.op).is_some() && node.inputs.len() == 1 {
        return Some(());
    }
    if BinaryOp::from_name(&node.op).is_some() && node.inputs.len() == 2 {
        return Some(());
    }
    None
}

/// Fuse maximal groups of elementwise nodes into `fused_elementwise` nodes.
///
/// A node joins its consumer's group when every consumer is the same group
/// and the node is not a function output — so each group has a single sink
/// whose value escapes.
pub fn fuse_elementwise(f: &GraphFunction) -> GraphFunction {
    let consumers = f.consumers();
    let output_set: HashSet<TensorRef> = f.outputs.iter().copied().collect();
    let n = f.nodes.len();
    // group id per node (sink's node index).
    let mut group: Vec<Option<usize>> = vec![None; n];
    for i in (0..n).rev() {
        let node = &f.nodes[i];
        if elementwise_kind(node).is_none() {
            continue;
        }
        let out_ref = TensorRef::first(NodeId(i));
        let cons = consumers.get(&out_ref);
        let escapes = output_set.contains(&out_ref);
        let consumer_groups: Option<HashSet<usize>> = cons
            .map(|list| list.iter().filter_map(|(c, _)| group[c.0]).collect::<HashSet<usize>>());
        let all_consumers_one_group = match (&cons, &consumer_groups) {
            (Some(list), Some(gs)) if !list.is_empty() => {
                gs.len() == 1 && list.iter().all(|(c, _)| group[c.0].is_some())
            }
            _ => false,
        };
        if !escapes && all_consumers_one_group {
            group[i] = consumer_groups.and_then(|gs| gs.into_iter().next());
        } else {
            group[i] = Some(i); // start a group with this node as sink
        }
    }
    // Collect members per sink, in topological order.
    let mut members: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, g) in group.iter().enumerate() {
        if let Some(g) = g {
            members.entry(*g).or_default().push(i);
        }
    }
    // Only fuse groups with >= 2 members.
    let fuse_groups: HashMap<usize, Vec<usize>> =
        members.into_iter().filter(|(_, m)| m.len() >= 2).collect();
    if fuse_groups.is_empty() {
        return f.clone();
    }
    let in_fused: HashSet<usize> = fuse_groups.values().flatten().copied().collect();

    let mut new_nodes: Vec<Node> = Vec::new();
    let mut remap: HashMap<TensorRef, TensorRef> = HashMap::new();
    let mut node_remap: HashMap<usize, usize> = HashMap::new();
    for (i, node) in f.nodes.iter().enumerate() {
        if in_fused.contains(&i) && !fuse_groups.contains_key(&i) {
            continue; // interior member: folded into its sink
        }
        if let Some(member_list) = fuse_groups.get(&i) {
            // Emit the fused node at the sink's position.
            let mut prog_inputs: Vec<TensorRef> = Vec::new(); // external, old refs
            let mut reg_of: HashMap<TensorRef, usize> = HashMap::new();
            let mut instrs: Vec<Instr> = Vec::new();
            for &m in member_list {
                let mnode = &f.nodes[m];
                let mut arg_regs = Vec::with_capacity(mnode.inputs.len());
                for &input in &mnode.inputs {
                    let reg = if let Some(&r) = reg_of.get(&input) {
                        r
                    } else if in_fused.contains(&input.node.0) && group[input.node.0] == Some(i) {
                        unreachable!("group member consumed before definition")
                    } else {
                        // external input
                        let k = prog_inputs.iter().position(|&p| p == input).unwrap_or_else(|| {
                            prog_inputs.push(input);
                            prog_inputs.len() - 1
                        });
                        let reg = instrs.len();
                        instrs.push(Instr::Input(k));
                        reg_of.insert(input, reg);
                        reg
                    };
                    arg_regs.push(reg);
                }
                let reg = instrs.len();
                if let Some(op) = UnaryOp::from_name(&mnode.op) {
                    instrs.push(Instr::Unary(op, arg_regs[0]));
                } else if let Some(op) = BinaryOp::from_name(&mnode.op) {
                    instrs.push(Instr::Binary(op, arg_regs[0], arg_regs[1]));
                } else {
                    unreachable!("non-elementwise node in fusion group");
                }
                reg_of.insert(TensorRef::first(NodeId(m)), reg);
            }
            let output_reg = reg_of[&TensorRef::first(NodeId(i))];
            let program = Program { instrs, output: output_reg };
            let sink = &f.nodes[i];
            let mapped_inputs: Vec<TensorRef> =
                prog_inputs.iter().map(|t| *remap.get(t).unwrap_or(t)).collect();
            let fused = Node {
                op: "fused_elementwise".to_string(),
                inputs: mapped_inputs,
                attrs: Attrs::new()
                    .with("program", program.encode())
                    .with("out_dtype", sink.outputs[0].0),
                outputs: sink.outputs.clone(),
                stateful: false,
                control_inputs: Vec::new(),
            };
            let new_id = NodeId(new_nodes.len());
            node_remap.insert(i, new_id.0);
            new_nodes.push(fused);
            remap.insert(TensorRef::first(NodeId(i)), TensorRef::first(new_id));
        } else {
            let mut nclone = node.clone();
            for input in &mut nclone.inputs {
                if let Some(&r) = remap.get(input) {
                    *input = r;
                }
            }
            // Control targets are stateful and never fused away.
            for ctrl in &mut nclone.control_inputs {
                *ctrl = NodeId(node_remap[&ctrl.0]);
            }
            let new_id = NodeId(new_nodes.len());
            node_remap.insert(i, new_id.0);
            for out in 0..nclone.outputs.len() {
                remap.insert(
                    TensorRef { node: NodeId(i), output: out },
                    TensorRef { node: new_id, output: out },
                );
            }
            new_nodes.push(nclone);
        }
    }
    GraphFunction {
        name: f.name.clone(),
        nodes: new_nodes,
        inputs: f.inputs.iter().map(|id| remap[&TensorRef::first(*id)].node).collect(),
        outputs: f.outputs.iter().map(|t| remap[t]).collect(),
        num_captures: f.num_captures,
        constants: f.constants.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use tfe_ops::SymShape;
    use tfe_tensor::Shape;

    fn known(dims: &[usize]) -> SymShape {
        SymShape::known(&Shape::from(dims))
    }

    #[test]
    fn prune_drops_dead_stateless_nodes() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[2])).unwrap();
        let used = b.add_node("relu", vec![x], Attrs::new()).unwrap()[0];
        let _dead = b.add_node("exp", vec![x], Attrs::new()).unwrap();
        let f = b.finish(vec![used], 0);
        assert_eq!(f.executable_node_count(), 2);
        let g = prune(&f);
        assert_eq!(g.executable_node_count(), 1);
        assert_eq!(g.inputs.len(), 1);
        assert_eq!(g.output_sigs(), f.output_sigs());
    }

    #[test]
    fn prune_keeps_stateful_nodes() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[2])).unwrap();
        let y = b.add_node("relu", vec![x], Attrs::new()).unwrap()[0];
        // Dead assign (stateful) must survive.
        b.add_node("assign", vec![x], Attrs::new().with("var_id", 7i64)).unwrap();
        let f = b.finish(vec![y], 0);
        let g = prune(&f);
        assert!(g.nodes.iter().any(|n| n.op == "assign"));
    }

    #[test]
    fn cse_merges_duplicates() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[2])).unwrap();
        let a = b.add_node("relu", vec![x], Attrs::new()).unwrap()[0];
        let c = b.add_node("relu", vec![x], Attrs::new()).unwrap()[0];
        let out = b.add_node("add", vec![a, c], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![out], 0);
        let g = cse(&f);
        assert_eq!(g.nodes.iter().filter(|n| n.op == "relu").count(), 1);
        // add now consumes the same ref twice
        let add = g.nodes.iter().find(|n| n.op == "add").unwrap();
        assert_eq!(add.inputs[0], add.inputs[1]);
    }

    #[test]
    fn cse_respects_attrs_and_statefulness() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[2, 2])).unwrap();
        let t1 =
            b.add_node("reduce_sum", vec![x], Attrs::new().with("axes", vec![0i64])).unwrap()[0];
        let t2 =
            b.add_node("reduce_sum", vec![x], Attrs::new().with("axes", vec![1i64])).unwrap()[0];
        // Two RNG nodes must never merge.
        let r1 = b
            .add_node(
                "random_normal",
                vec![],
                Attrs::new().with("dtype", DType::F32).with("shape", vec![2i64]),
            )
            .unwrap()[0];
        let r2 = b
            .add_node(
                "random_normal",
                vec![],
                Attrs::new().with("dtype", DType::F32).with("shape", vec![2i64]),
            )
            .unwrap()[0];
        let s = b.add_node("add", vec![t1, t2], Attrs::new()).unwrap()[0];
        let s2 = b.add_node("add", vec![r1, r2], Attrs::new()).unwrap()[0];
        let out = b.add_node("add", vec![s, s2], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![out], 0);
        let g = cse(&f);
        assert_eq!(g.nodes.iter().filter(|n| n.op == "reduce_sum").count(), 2);
        assert_eq!(g.nodes.iter().filter(|n| n.op == "random_normal").count(), 2);
    }

    #[test]
    fn cse_dedupes_equal_constants() {
        let mut b = GraphBuilder::new("f");
        let c1 = b.constant(Arc::new(TensorData::scalar(5.0f32))).unwrap();
        let c2 = b.constant(Arc::new(TensorData::scalar(5.0f32))).unwrap();
        let out = b.add_node("add", vec![c1, c2], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![out], 0);
        let g = cse(&f);
        assert_eq!(g.nodes.iter().filter(|n| n.op == "const").count(), 1);
    }

    fn toy_evaluator(node: &Node, inputs: &[Arc<TensorData>]) -> Result<Vec<TensorData>, String> {
        // Enough kernels to test folding: add/mul/relu on concrete data.
        match node.op.as_str() {
            "add" => {
                Ok(vec![tfe_tensor::elementwise::binary(&inputs[0], &inputs[1], BinaryOp::Add)
                    .map_err(|e| e.to_string())?])
            }
            "mul" => {
                Ok(vec![tfe_tensor::elementwise::binary(&inputs[0], &inputs[1], BinaryOp::Mul)
                    .map_err(|e| e.to_string())?])
            }
            "relu" => Ok(vec![tfe_tensor::elementwise::unary(&inputs[0], UnaryOp::Relu)
                .map_err(|e| e.to_string())?]),
            other => Err(format!("no fold kernel for {other}")),
        }
    }

    #[test]
    fn fold_constant_subgraph() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[2])).unwrap();
        let c1 = b.constant(Arc::new(TensorData::scalar(2.0f32))).unwrap();
        let c2 = b.constant(Arc::new(TensorData::scalar(3.0f32))).unwrap();
        let c3 = b.add_node("mul", vec![c1, c2], Attrs::new()).unwrap()[0]; // 6.0, foldable
        let out = b.add_node("add", vec![x, c3], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![out], 0);
        let g = fold_constants(&f, &toy_evaluator, 1024);
        // mul is gone; its value became a const.
        assert!(!g.nodes.iter().any(|n| n.op == "mul"));
        let add = g.nodes.iter().find(|n| n.op == "add").unwrap();
        let const_input = add.inputs[1];
        let cnode = g.node(const_input.node);
        assert_eq!(cnode.op, "const");
        let idx = match cnode.attrs.get("value_index") {
            Some(AttrValue::Int(i)) => *i as usize,
            _ => panic!("missing value_index"),
        };
        assert_eq!(g.constants[idx].scalar_f64().unwrap(), 6.0);
    }

    #[test]
    fn fold_skips_unsupported_and_stateful() {
        let mut b = GraphBuilder::new("f");
        let c1 = b.constant(Arc::new(TensorData::scalar(2.0f32))).unwrap();
        let e = b.add_node("exp", vec![c1], Attrs::new()).unwrap()[0]; // evaluator lacks exp
        let r = b
            .add_node(
                "random_normal",
                vec![],
                Attrs::new().with("dtype", DType::F32).with("shape", Vec::<i64>::new()),
            )
            .unwrap()[0];
        let out = b.add_node("add", vec![e, r], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![out], 0);
        let g = fold_constants(&f, &toy_evaluator, 1024);
        assert!(g.nodes.iter().any(|n| n.op == "exp"));
        assert!(g.nodes.iter().any(|n| n.op == "random_normal"));
    }

    #[test]
    fn fuse_simple_chain() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[4])).unwrap();
        let y = b.placeholder(DType::F32, known(&[4])).unwrap();
        let s = b.add_node("add", vec![x, y], Attrs::new()).unwrap()[0];
        let r = b.add_node("relu", vec![s], Attrs::new()).unwrap()[0];
        let e = b.add_node("exp", vec![r], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![e], 0);
        let g = fuse_elementwise(&f);
        let fused: Vec<&Node> = g.nodes.iter().filter(|n| n.op == "fused_elementwise").collect();
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].inputs.len(), 2);
        let program = Program::decode(match fused[0].attrs.get("program") {
            Some(AttrValue::Str(s)) => s,
            _ => panic!("missing program"),
        })
        .unwrap();
        assert_eq!(program.op_count(), 3);
        // Executable count dropped from 3 to 1.
        assert_eq!(g.executable_node_count(), 1);
    }

    #[test]
    fn fuse_respects_escaping_intermediates() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[4])).unwrap();
        let s = b.add_node("relu", vec![x], Attrs::new()).unwrap()[0];
        let e = b.add_node("exp", vec![s], Attrs::new()).unwrap()[0];
        // s escapes as a second output: the chain cannot fully fuse.
        let f = b.finish(vec![e, s], 0);
        let g = fuse_elementwise(&f);
        // relu must survive as its own node.
        assert!(g.nodes.iter().any(|n| n.op == "relu"));
        assert_eq!(g.outputs.len(), 2);
    }

    #[test]
    fn fuse_keeps_non_elementwise_boundaries() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[4, 4])).unwrap();
        let r = b.add_node("relu", vec![x], Attrs::new()).unwrap()[0];
        let m = b.add_node("matmul", vec![r, r], Attrs::new()).unwrap()[0];
        let t = b.add_node("tanh", vec![m], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![t], 0);
        let g = fuse_elementwise(&f);
        // Nothing to fuse: single elementwise nodes on each side of matmul.
        assert!(g.nodes.iter().any(|n| n.op == "matmul"));
        assert!(!g.nodes.iter().any(|n| n.op == "fused_elementwise"));
    }

    #[test]
    fn fused_program_evaluates_like_original() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[4])).unwrap();
        let y = b.placeholder(DType::F32, known(&[4])).unwrap();
        let s = b.add_node("add", vec![x, y], Attrs::new()).unwrap()[0];
        let sq = b.add_node("square", vec![s], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![sq], 0);
        let g = fuse_elementwise(&f);
        let fused = g.nodes.iter().find(|n| n.op == "fused_elementwise").unwrap();
        let program = Program::decode(match fused.attrs.get("program") {
            Some(AttrValue::Str(s)) => s,
            _ => panic!(),
        })
        .unwrap();
        let a = TensorData::from_vec(vec![1.0f32, 2.0, 3.0, -1.0], Shape::from([4])).unwrap();
        let c = TensorData::from_vec(vec![1.0f32, 1.0, 1.0, 1.0], Shape::from([4])).unwrap();
        let r = program.eval(&[&a, &c]).unwrap();
        assert_eq!(r.to_f64_vec(), vec![4.0, 9.0, 16.0, 0.0]);
    }

    #[test]
    fn optimize_pipeline_composes() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[4])).unwrap();
        let c1 = b.constant(Arc::new(TensorData::scalar(1.0f32))).unwrap();
        let c2 = b.constant(Arc::new(TensorData::scalar(1.0f32))).unwrap();
        let folded = b.add_node("add", vec![c1, c2], Attrs::new()).unwrap()[0];
        let a1 = b.add_node("add", vec![x, folded], Attrs::new()).unwrap()[0];
        let a2 = b.add_node("relu", vec![a1], Attrs::new()).unwrap()[0];
        let _dead = b.add_node("exp", vec![x], Attrs::new()).unwrap();
        let f = b.finish(vec![a2], 0);
        let g = optimize(&f, &OptimizeOptions::aggressive(), Some(&toy_evaluator));
        // dead exp pruned, consts folded+deduped, add+relu fused.
        assert!(!g.nodes.iter().any(|n| n.op == "exp"));
        assert!(g.nodes.iter().any(|n| n.op == "fused_elementwise"));
        assert!(g.executable_node_count() <= 2);
        // identity pipeline really is the identity
        let same = optimize(&f, &OptimizeOptions::none(), None);
        assert_eq!(same.nodes.len(), f.nodes.len());
    }
}
