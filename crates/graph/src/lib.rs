//! # tfe-graph
//!
//! Dataflow-graph IR for the `tf-eager` workspace: [`GraphFunction`]s (the
//! staged artifact of §4.1/§4.6 of the TensorFlow Eager paper — a graph
//! with named inputs and outputs), the [`GraphBuilder`] a tracing context
//! writes into, the optimization passes staging unlocks (pruning, CSE,
//! constant folding, buffer-reuse planning, and XLA-style elementwise
//! fusion), and hand-rolled JSON serialization for deployment without a
//! tracer.
//!
//! ```
//! use tfe_graph::{GraphBuilder, passes};
//! use tfe_ops::{Attrs, SymShape};
//! use tfe_tensor::{DType, Shape};
//!
//! # fn main() -> Result<(), tfe_ops::OpError> {
//! let mut b = GraphBuilder::new("f");
//! let x = b.placeholder(DType::F32, SymShape::known(&Shape::from([4])))?;
//! let y = b.add_node("relu", vec![x], Attrs::new())?[0];
//! let _dead = b.add_node("exp", vec![x], Attrs::new())?;
//! let f = b.finish(vec![y], 0);
//! let optimized = passes::prune(&f);
//! assert_eq!(optimized.executable_node_count(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod builder;
mod ir;
pub mod passes;
mod plan;
pub mod program;
pub mod sequencing;
pub mod serial;

pub use builder::GraphBuilder;
pub use ir::{FunctionLibrary, GraphFunction, Node, NodeId, TensorRef};
pub use plan::{plan_memory, MemoryPlan};
