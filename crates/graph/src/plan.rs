//! Liveness-based buffer-reuse planning — the "buffer reuse" optimization
//! §4.1 credits to representing computations as dataflow graphs before
//! executing them.
//!
//! The planner assigns each node output a buffer *slot* such that two
//! tensors share a slot only when their live ranges do not overlap (under
//! serial execution in node order). The serial graph executor in
//! `tfe-runtime` uses the plan as its value arena, and the plan's
//! `num_slots`/`peak` statistics feed the ablation benchmarks.

use crate::ir::{GraphFunction, TensorRef};
use std::collections::HashMap;

/// A buffer-reuse plan for serial execution in node order.
#[derive(Debug, Clone)]
pub struct MemoryPlan {
    /// Slot assigned to every node output.
    pub slot: HashMap<TensorRef, usize>,
    /// Total slots needed (== peak simultaneous live tensors).
    pub num_slots: usize,
    /// Total outputs planned (without reuse this many slots would be
    /// needed).
    pub num_tensors: usize,
}

impl MemoryPlan {
    /// Fraction of buffers saved by reuse (0 when nothing is saved).
    pub fn reuse_ratio(&self) -> f64 {
        if self.num_tensors == 0 {
            0.0
        } else {
            1.0 - self.num_slots as f64 / self.num_tensors as f64
        }
    }
}

/// Compute a buffer-reuse plan for `f` executed serially in node order.
///
/// Function outputs (and every output of a stateful node) are pinned: their
/// slots are never recycled.
pub fn plan_memory(f: &GraphFunction) -> MemoryPlan {
    // Last node index that reads each tensor.
    let mut last_use: HashMap<TensorRef, usize> = HashMap::new();
    for (i, node) in f.nodes.iter().enumerate() {
        for &input in &node.inputs {
            last_use.insert(input, i);
        }
    }
    for &out in &f.outputs {
        last_use.insert(out, usize::MAX);
    }

    let mut slot: HashMap<TensorRef, usize> = HashMap::new();
    let mut free: Vec<usize> = Vec::new();
    let mut next_slot = 0usize;
    let mut num_tensors = 0usize;
    for (i, node) in f.nodes.iter().enumerate() {
        for out in 0..node.outputs.len() {
            let t = TensorRef { node: crate::ir::NodeId(i), output: out };
            let s = free.pop().unwrap_or_else(|| {
                let s = next_slot;
                next_slot += 1;
                s
            });
            slot.insert(t, s);
            num_tensors += 1;
            // Dead-on-arrival outputs (no consumers, not function outputs)
            // free immediately.
            if !last_use.contains_key(&t) && !node.stateful {
                free.push(s);
            }
        }
        // Release inputs whose last use is this node.
        for &input in &node.inputs {
            if last_use.get(&input) == Some(&i) {
                // Only release once even if read twice by this node.
                if let Some(&s) = slot.get(&input) {
                    if !free.contains(&s) {
                        free.push(s);
                    }
                }
            }
        }
    }
    MemoryPlan { slot, num_slots: next_slot, num_tensors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use tfe_ops::{Attrs, SymShape};
    use tfe_tensor::{DType, Shape};

    fn known(dims: &[usize]) -> SymShape {
        SymShape::known(&Shape::from(dims))
    }

    #[test]
    fn chain_reuses_buffers() {
        // x -> relu -> exp -> tanh -> out : intermediates can ping-pong.
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[8])).unwrap();
        let mut cur = x;
        for op in ["relu", "exp", "tanh", "sigmoid", "square"] {
            cur = b.add_node(op, vec![cur], Attrs::new()).unwrap()[0];
        }
        let f = b.finish(vec![cur], 0);
        let plan = plan_memory(&f);
        assert_eq!(plan.num_tensors, 6); // placeholder + 5 ops
                                         // A chain needs at most 3 live buffers at once (input of the
                                         // current op, its output, and the pinned placeholder).
        assert!(plan.num_slots <= 3, "slots = {}", plan.num_slots);
        assert!(plan.reuse_ratio() > 0.4);
    }

    #[test]
    fn no_aliasing_of_live_tensors() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[8])).unwrap();
        let a = b.add_node("relu", vec![x], Attrs::new()).unwrap()[0];
        let c = b.add_node("exp", vec![x], Attrs::new()).unwrap()[0];
        let s = b.add_node("add", vec![a, c], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![s], 0);
        let plan = plan_memory(&f);
        // While computing `add`, both relu and exp outputs are live and must
        // not share a slot; the placeholder is also live until `exp` runs.
        assert_ne!(plan.slot[&a], plan.slot[&c]);
    }

    #[test]
    fn function_outputs_never_recycled() {
        let mut b = GraphBuilder::new("f");
        let x = b.placeholder(DType::F32, known(&[8])).unwrap();
        let a = b.add_node("relu", vec![x], Attrs::new()).unwrap()[0];
        let c = b.add_node("exp", vec![a], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![a, c], 0); // `a` is an output AND feeds exp
        let plan = plan_memory(&f);
        assert_ne!(plan.slot[&a], plan.slot[&c]);
        // x's slot may be reused by c, but never a's.
        let slots: std::collections::HashSet<usize> =
            [plan.slot[&a], plan.slot[&c]].into_iter().collect();
        assert_eq!(slots.len(), 2);
    }

    /// Property: the plan never assigns one slot to two simultaneously-live
    /// tensors, for a family of random DAGs.
    #[test]
    fn random_dags_are_alias_safe() {
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut rand = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..50 {
            let mut b = GraphBuilder::new("f");
            let mut refs = vec![b.placeholder(DType::F32, known(&[2])).unwrap()];
            let n = 3 + (rand() % 12) as usize;
            for _ in 0..n {
                let pick = |r: &mut dyn FnMut() -> u64, len: usize| (r() % len as u64) as usize;
                if rand() % 2 == 0 {
                    let a = refs[pick(&mut rand, refs.len())];
                    refs.push(b.add_node("relu", vec![a], Attrs::new()).unwrap()[0]);
                } else {
                    let a = refs[pick(&mut rand, refs.len())];
                    let c = refs[pick(&mut rand, refs.len())];
                    refs.push(b.add_node("add", vec![a, c], Attrs::new()).unwrap()[0]);
                }
            }
            let out = *refs.last().unwrap();
            let f = b.finish(vec![out], 0);
            let plan = plan_memory(&f);

            // Recompute liveness and check pairwise.
            let mut last_use: HashMap<TensorRef, usize> = HashMap::new();
            for (i, node) in f.nodes.iter().enumerate() {
                for &input in &node.inputs {
                    last_use.insert(input, i);
                }
            }
            for &o in &f.outputs {
                last_use.insert(o, usize::MAX);
            }
            let live_range = |t: TensorRef| -> (usize, usize) {
                (t.node.0, *last_use.get(&t).unwrap_or(&t.node.0))
            };
            let all: Vec<TensorRef> = plan.slot.keys().copied().collect();
            for (ai, &a) in all.iter().enumerate() {
                for &c in &all[ai + 1..] {
                    if plan.slot[&a] == plan.slot[&c] {
                        let (s1, e1) = live_range(a);
                        let (s2, e2) = live_range(c);
                        // Ranges may touch at a boundary (producer reuses a
                        // buffer freed by its own input) but not overlap.
                        assert!(
                            e1 <= s2 || e2 <= s1,
                            "aliased live tensors: {a:?} [{s1},{e1}] vs {c:?} [{s2},{e2}]"
                        );
                    }
                }
            }
        }
    }
}
