//! Sequencing (control) edges between stateful operations.
//!
//! TensorFlow Eager keeps program order for side-effecting operations by
//! threading control dependencies through the trace (§4.2 "state"): a
//! variable read must observe the most recent write, writes must wait for
//! earlier reads, and opaque effects (host calls, stateful function calls)
//! act as barriers. This module computes those edges so that the parallel
//! executor can run stateful graphs concurrently — stateless work proceeds
//! dataflow-style while each resource's access chain keeps program order —
//! instead of falling back to fully serial execution.
//!
//! The model is per-resource access chains:
//!
//! - `read_variable(var_id)` is a **read** of that variable,
//! - `assign`/`assign_add`/`assign_sub(var_id)` are **writes** to it,
//! - random ops (`random_normal`, `random_uniform`, `truncated_normal`,
//!   `dropout_mask`) are writes to the shared RNG stream,
//! - `print` is a write to the host's output stream,
//! - everything else stateful (`host_func`, stateful `call`/`cond`/
//!   `while_loop`, or a stateful op with no `var_id`) is a **barrier**
//!   touching the whole world.
//!
//! A read depends on the previous write to its resource; a write depends
//! on every read since the previous write (and on that write when there
//! were none); a barrier depends on every stateful node since the previous
//! barrier. Reads of the same resource, and any stateless work, carry no
//! mutual edges and may run concurrently. Every stateful graph is
//! sequenceable under this model — there is no fallback.

use crate::ir::{Node, NodeId};
use std::collections::HashMap;
use tfe_ops::{AttrValue, Attrs};

/// A unit of mutable state a node may touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// A runtime variable, keyed by its `var_id` attribute.
    Var(i64),
    /// The global random-number stream.
    Rng,
    /// The host's output stream (`print`).
    Io,
}

/// How a node interacts with mutable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// No side effects; never sequenced.
    Pure,
    /// Observes a resource without changing it.
    Read(Resource),
    /// Mutates a resource.
    Write(Resource),
    /// Opaque effects: ordered against every other stateful node.
    Barrier,
}

/// Classify a node's interaction with mutable state.
pub fn classify(op: &str, attrs: &Attrs, stateful: bool) -> Access {
    if !stateful {
        return Access::Pure;
    }
    let var = || match attrs.get("var_id") {
        Some(AttrValue::Int(id)) => Some(Resource::Var(*id)),
        _ => None,
    };
    match op {
        "read_variable" => var().map_or(Access::Barrier, Access::Read),
        "assign" | "assign_add" | "assign_sub" => var().map_or(Access::Barrier, Access::Write),
        "random_normal" | "random_uniform" | "truncated_normal" | "dropout_mask" => {
            Access::Write(Resource::Rng)
        }
        "print" => Access::Write(Resource::Io),
        // host_func, stateful call/cond/while_loop, and anything else
        // stateful we cannot see inside.
        _ => Access::Barrier,
    }
}

/// Incremental sequencing state: feed nodes in program order, get each
/// node's control dependencies back. Used by `GraphBuilder` while tracing
/// and by the deserializer when re-sequencing legacy payloads.
#[derive(Debug, Default)]
pub struct SequencingState {
    last_write: HashMap<Resource, NodeId>,
    reads_since_write: HashMap<Resource, Vec<NodeId>>,
    last_barrier: Option<NodeId>,
    stateful_since_barrier: Vec<NodeId>,
}

impl SequencingState {
    /// Fresh state (no stateful history).
    pub fn new() -> SequencingState {
        SequencingState::default()
    }

    /// Record node `id` with the given access pattern and return the
    /// control dependencies it must wait on. `data_inputs` lets the state
    /// drop edges already implied by a direct data input.
    pub fn sequence(&mut self, id: NodeId, access: Access, data_inputs: &[NodeId]) -> Vec<NodeId> {
        let mut deps: Vec<NodeId> = Vec::new();
        match access {
            Access::Pure => return deps,
            Access::Read(r) => {
                match self.last_write.get(&r) {
                    Some(&w) => deps.push(w),
                    None => deps.extend(self.last_barrier),
                }
                self.reads_since_write.entry(r).or_default().push(id);
            }
            Access::Write(r) => {
                let reads = self.reads_since_write.entry(r).or_default();
                if reads.is_empty() {
                    // No intervening reads: chain directly on the previous
                    // write (or the barrier that reset the chain).
                    match self.last_write.get(&r) {
                        Some(&w) => deps.push(w),
                        None => deps.extend(self.last_barrier),
                    }
                } else {
                    // Reads already depend on the previous write, so
                    // ordering behind them is enough.
                    deps.append(reads);
                }
                self.last_write.insert(r, id);
            }
            Access::Barrier => {
                if self.stateful_since_barrier.is_empty() {
                    deps.extend(self.last_barrier);
                } else {
                    deps.extend(self.stateful_since_barrier.iter().copied());
                }
                self.last_write.clear();
                self.reads_since_write.clear();
                self.stateful_since_barrier.clear();
                self.last_barrier = Some(id);
            }
        }
        if access != Access::Barrier {
            self.stateful_since_barrier.push(id);
        }
        deps.sort_unstable();
        deps.dedup();
        deps.retain(|d| !data_inputs.contains(d));
        deps
    }
}

/// Recompute the control edges of a whole node list (program order). Used
/// when deserializing graphs encoded before control edges existed.
pub fn sequence_control_edges(nodes: &[Node]) -> Vec<Vec<NodeId>> {
    let mut state = SequencingState::new();
    nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let access = classify(&n.op, &n.attrs, n.stateful);
            let data: Vec<NodeId> = n.inputs.iter().map(|t| t.node).collect();
            state.sequence(NodeId(i), access, &data)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use tfe_ops::SymShape;
    use tfe_tensor::DType;

    fn read(b: &mut GraphBuilder, var: i64) -> crate::ir::TensorRef {
        b.add_node(
            "read_variable",
            vec![],
            Attrs::new()
                .with("var_id", var)
                .with("dtype", DType::F32)
                .with("shape", Vec::<i64>::new()),
        )
        .unwrap()[0]
    }

    fn assign(b: &mut GraphBuilder, var: i64, value: crate::ir::TensorRef) -> NodeId {
        let id = NodeId(b.num_nodes());
        b.add_node("assign", vec![value], Attrs::new().with("var_id", var)).unwrap();
        id
    }

    #[test]
    fn classify_covers_the_catalog() {
        let v = Attrs::new().with("var_id", 3i64);
        assert_eq!(classify("add", &Attrs::new(), false), Access::Pure);
        assert_eq!(classify("read_variable", &v, true), Access::Read(Resource::Var(3)));
        assert_eq!(classify("assign_add", &v, true), Access::Write(Resource::Var(3)));
        assert_eq!(classify("random_normal", &Attrs::new(), true), Access::Write(Resource::Rng));
        assert_eq!(classify("print", &Attrs::new(), true), Access::Write(Resource::Io));
        assert_eq!(classify("host_func", &Attrs::new(), true), Access::Barrier);
        assert_eq!(classify("call", &Attrs::new(), true), Access::Barrier);
        // Missing var_id degrades to a barrier, never to Pure.
        assert_eq!(classify("assign", &Attrs::new(), true), Access::Barrier);
    }

    #[test]
    fn read_write_read_chains_in_program_order() {
        let mut b = GraphBuilder::new("f");
        let r1 = read(&mut b, 1);
        let w = assign(&mut b, 1, r1);
        let r2 = read(&mut b, 1);
        let f = b.finish(vec![r2], 0);
        // Write waits on the first read via its data edge (no duplicate
        // control edge), second read waits on the write.
        assert!(f.nodes[w.0].control_inputs.is_empty());
        assert_eq!(f.nodes[r2.node.0].control_inputs, vec![w]);
    }

    #[test]
    fn independent_variables_do_not_interfere() {
        let mut b = GraphBuilder::new("f");
        let r1 = read(&mut b, 1);
        let r2 = read(&mut b, 2);
        let w2 = assign(&mut b, 2, r2);
        let r1b = read(&mut b, 1);
        let f = b.finish(vec![r1, r1b], 0);
        assert!(f.nodes[r1.node.0].control_inputs.is_empty());
        assert!(f.nodes[r1b.node.0].control_inputs.is_empty());
        assert!(f.nodes[w2.0].control_inputs.is_empty()); // data edge on r2
    }

    #[test]
    fn concurrent_reads_then_write() {
        let mut b = GraphBuilder::new("f");
        let r1 = read(&mut b, 1);
        let r2 = read(&mut b, 1);
        let sum = b.add_node("add", vec![r1, r2], Attrs::new()).unwrap()[0];
        let w = assign(&mut b, 1, sum);
        let f = b.finish(vec![sum], 0);
        // Reads are unordered with each other; the write waits on both
        // (via control edges — its data input is the add node).
        assert!(f.nodes[r1.node.0].control_inputs.is_empty());
        assert!(f.nodes[r2.node.0].control_inputs.is_empty());
        assert_eq!(f.nodes[w.0].control_inputs, vec![r1.node, r2.node]);
    }

    #[test]
    fn rng_ops_form_a_chain() {
        let mut b = GraphBuilder::new("f");
        let shape: Vec<i64> = vec![2];
        let attrs = || Attrs::new().with("dtype", DType::F32).with("shape", shape.clone());
        let a = b.add_node("random_normal", vec![], attrs()).unwrap()[0];
        let c = b.add_node("random_uniform", vec![], attrs()).unwrap()[0];
        let s = b.add_node("add", vec![a, c], Attrs::new()).unwrap()[0];
        let f = b.finish(vec![s], 0);
        assert_eq!(f.nodes[c.node.0].control_inputs, vec![a.node]);
    }

    #[test]
    fn barriers_partition_the_chains() {
        let mut b = GraphBuilder::new("f");
        let r1 = read(&mut b, 1);
        let sig = tfe_ops::catalog::encode_sig(&[(DType::F32, SymShape::scalar())]);
        let h = b
            .add_node(
                "host_func",
                vec![r1],
                Attrs::new()
                    .with("fn_id", 0i64)
                    .with("out_dtypes", sig.0)
                    .with("out_shapes", sig.1),
            )
            .unwrap()[0];
        let r2 = read(&mut b, 1);
        let f = b.finish(vec![h, r2], 0);
        // The barrier waits on the read via its data edge; the read after
        // the barrier waits on the barrier.
        assert!(f.nodes[h.node.0].control_inputs.is_empty());
        assert_eq!(f.nodes[r2.node.0].control_inputs, vec![h.node]);
    }

    #[test]
    fn recompute_matches_builder() {
        let mut b = GraphBuilder::new("f");
        let r1 = read(&mut b, 1);
        let w = assign(&mut b, 1, r1);
        let r2 = read(&mut b, 1);
        let _ = w;
        let f = b.finish(vec![r2], 0);
        let recomputed = sequence_control_edges(&f.nodes);
        for (i, n) in f.nodes.iter().enumerate() {
            assert_eq!(n.control_inputs, recomputed[i], "node {i}");
        }
    }
}
