//! Incremental graph construction — the object a tracing context writes
//! into while it executes a Python(-style) function in a graph-building
//! context (§4.1, §4.6).

use crate::ir::{GraphFunction, Node, NodeId, TensorRef};
use crate::sequencing::{self, SequencingState};
use std::sync::Arc;
use tfe_ops::{AttrValue, Attrs, InferCtx, OpError, SymShape};
use tfe_tensor::{DType, TensorData};

/// Builds a [`GraphFunction`] node by node, running shape inference as it
/// goes (ops are validated at trace time, exactly as in TensorFlow Eager).
#[derive(Debug)]
pub struct GraphBuilder {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    constants: Vec<Arc<TensorData>>,
    sequencing: SequencingState,
}

impl GraphBuilder {
    /// Start a new function named `name`.
    pub fn new(name: &str) -> GraphBuilder {
        tfe_ops::ensure_standard_ops();
        GraphBuilder {
            name: name.to_string(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            constants: Vec::new(),
            sequencing: SequencingState::new(),
        }
    }

    /// The function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Add an argument placeholder.
    ///
    /// # Errors
    /// Propagates inference errors (none in practice for placeholders).
    pub fn placeholder(&mut self, dtype: DType, shape: SymShape) -> Result<TensorRef, OpError> {
        let dims: Vec<i64> = shape.dims().iter().map(|d| d.map_or(-1, |v| v as i64)).collect();
        let attrs = Attrs::new().with("dtype", dtype).with("shape", dims);
        let refs = self.add_node("placeholder", Vec::new(), attrs)?;
        let id = refs[0].node;
        self.inputs.push(id);
        Ok(refs[0])
    }

    /// Intern a constant tensor and add a `const` node for it.
    ///
    /// # Errors
    /// Propagates inference errors (none in practice).
    pub fn constant(&mut self, value: Arc<TensorData>) -> Result<TensorRef, OpError> {
        let dims: Vec<i64> = value.shape().dims().iter().map(|&d| d as i64).collect();
        let index = self.constants.len();
        self.constants.push(value.clone());
        let attrs = Attrs::new()
            .with("dtype", value.dtype())
            .with("shape", dims)
            .with("value_index", index as i64);
        let refs = self.add_node("const", Vec::new(), attrs)?;
        Ok(refs[0])
    }

    /// Append an op node; returns references to its outputs.
    ///
    /// # Errors
    /// Unknown ops, arity violations, or shape-inference failures — i.e.
    /// the same errors eager execution would raise, surfaced at trace time.
    pub fn add_node(
        &mut self,
        op: &str,
        inputs: Vec<TensorRef>,
        attrs: Attrs,
    ) -> Result<Vec<TensorRef>, OpError> {
        let def = tfe_ops::global().lookup(op)?;
        let mut dtypes = Vec::with_capacity(inputs.len());
        let mut shapes = Vec::with_capacity(inputs.len());
        for t in &inputs {
            let node = self
                .nodes
                .get(t.node.0)
                .ok_or_else(|| OpError::Invalid(format!("dangling input {:?}", t)))?;
            let (d, s) = node
                .outputs
                .get(t.output)
                .cloned()
                .ok_or_else(|| OpError::Invalid(format!("bad output index {:?}", t)))?;
            dtypes.push(d);
            shapes.push(s);
        }
        let outputs = def.infer(&InferCtx { dtypes: &dtypes, shapes: &shapes, attrs: &attrs })?;
        // `call`-like nodes carry statefulness as an attribute set by the
        // tracer from the callee's own statefulness.
        let attr_stateful = matches!(attrs.get("stateful"), Some(AttrValue::Bool(true)));
        let stateful = def.is_stateful() || attr_stateful;
        let id = NodeId(self.nodes.len());
        // Sequencing edges keep stateful ops in program order (per
        // resource) so the parallel executor never needs a serial fallback.
        let access = sequencing::classify(op, &attrs, stateful);
        let data_inputs: Vec<NodeId> = inputs.iter().map(|t| t.node).collect();
        let control_inputs = self.sequencing.sequence(id, access, &data_inputs);
        self.nodes.push(Node {
            op: op.to_string(),
            inputs,
            attrs,
            outputs,
            stateful,
            control_inputs,
        });
        let n_out = self.nodes[id.0].outputs.len();
        Ok((0..n_out).map(|output| TensorRef { node: id, output }).collect())
    }

    /// dtype/shape of an existing tensor reference.
    ///
    /// # Panics
    /// Dangling reference.
    pub fn sig(&self, t: TensorRef) -> (DType, SymShape) {
        self.nodes[t.node.0].output_sig(t.output)
    }

    /// Finalize into a [`GraphFunction`], declaring `outputs`. The last
    /// `num_captures` placeholders are marked as captured inputs.
    pub fn finish(self, outputs: Vec<TensorRef>, num_captures: usize) -> GraphFunction {
        assert!(
            num_captures <= self.inputs.len(),
            "num_captures {} exceeds input count {}",
            num_captures,
            self.inputs.len()
        );
        GraphFunction {
            name: self.name,
            nodes: self.nodes,
            inputs: self.inputs,
            outputs,
            num_captures,
            constants: self.constants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_tensor::Shape;

    #[test]
    fn build_and_infer() {
        let mut b = GraphBuilder::new("t");
        let x = b.placeholder(DType::F32, SymShape::known(&Shape::from([4]))).unwrap();
        let y = b.constant(Arc::new(TensorData::scalar(2.0f32))).unwrap();
        let m = b.add_node("mul", vec![x, y], Attrs::new()).unwrap()[0];
        assert_eq!(b.sig(m).0, DType::F32);
        assert_eq!(b.sig(m).1, SymShape::known(&Shape::from([4])));
        let f = b.finish(vec![m], 0);
        assert_eq!(f.inputs.len(), 1);
        assert_eq!(f.constants.len(), 1);
        assert_eq!(f.outputs.len(), 1);
    }

    #[test]
    fn trace_time_errors() {
        let mut b = GraphBuilder::new("t");
        let x = b.placeholder(DType::F32, SymShape::known(&Shape::from([4]))).unwrap();
        let y = b.placeholder(DType::I32, SymShape::known(&Shape::from([4]))).unwrap();
        // dtype mismatch caught during tracing
        assert!(b.add_node("add", vec![x, y], Attrs::new()).is_err());
        // unknown op
        assert!(b.add_node("not_an_op", vec![x], Attrs::new()).is_err());
        // dangling ref
        let dangling = TensorRef::first(NodeId(99));
        assert!(b.add_node("relu", vec![dangling], Attrs::new()).is_err());
    }

    #[test]
    fn multi_output_nodes() {
        let mut b = GraphBuilder::new("t");
        let x = b.placeholder(DType::F32, SymShape::known(&Shape::from([2, 6]))).unwrap();
        let parts = b
            .add_node("split", vec![x], Attrs::new().with("num", 3i64).with("axis", 1i64))
            .unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[2].output, 2);
        assert_eq!(b.sig(parts[1]).1, SymShape::known(&Shape::from([2, 2])));
    }

    #[test]
    fn unknown_batch_flows_through() {
        let mut b = GraphBuilder::new("t");
        let x = b.placeholder(DType::F32, SymShape::new(vec![None, Some(3)])).unwrap();
        let w = b.placeholder(DType::F32, SymShape::known(&Shape::from([3, 5]))).unwrap();
        let y = b.add_node("matmul", vec![x, w], Attrs::new()).unwrap()[0];
        assert_eq!(b.sig(y).1, SymShape::new(vec![None, Some(5)]));
    }

    #[test]
    fn stateful_attr_propagates() {
        let mut b = GraphBuilder::new("t");
        let (d, s) = tfe_ops::catalog::encode_sig(&[(DType::F32, SymShape::scalar())]);
        let refs = b
            .add_node(
                "call",
                vec![],
                Attrs::new()
                    .with("function", "g")
                    .with("stateful", true)
                    .with("out_dtypes", d)
                    .with("out_shapes", s),
            )
            .unwrap();
        let f = b.finish(vec![refs[0]], 0);
        assert!(f.is_stateful());
        assert_eq!(f.callee_names(), vec!["g".to_string()]);
    }
}
