//! Tape-overhead ablations (DESIGN.md §6): what an active tape costs a
//! dispatch, and how exposing the tape (§4.2: "lets users control which
//! parts of the computation are traced") limits that cost.

use criterion::{criterion_group, criterion_main, Criterion};
use tfe_autodiff::GradientTape;
use tfe_runtime::api;
use tfe_tensor::DType;

fn bench_tape_dispatch(c: &mut Criterion) {
    tfe_core::init();
    let mut group = c.benchmark_group("tape_dispatch");
    let a = api::zeros(DType::F32, [256]);
    let b2 = api::ones(DType::F32, [256]);
    group.bench_function("no_tape", |bench| {
        bench.iter(|| api::add(&a, &b2).unwrap());
    });
    group.bench_function("tape_not_watching", |bench| {
        // The fine-grained control §4.2 highlights: an active tape that
        // watches nothing rejects records cheaply.
        let _tape = GradientTape::persistent();
        bench.iter(|| api::add(&a, &b2).unwrap());
    });
    group.bench_function("tape_watching", |bench| {
        let tape = GradientTape::persistent();
        tape.watch(&a);
        bench.iter(|| api::add(&a, &b2).unwrap());
    });
    group.bench_function("two_nested_tapes_watching", |bench| {
        let t1 = GradientTape::persistent();
        let t2 = GradientTape::persistent();
        t1.watch(&a);
        t2.watch(&a);
        bench.iter(|| api::add(&a, &b2).unwrap());
    });
    group.finish();
}

fn bench_variable_reads(c: &mut Criterion) {
    tfe_core::init();
    let mut group = c.benchmark_group("variable_read");
    let v = tfe_runtime::Variable::new(tfe_tensor::TensorData::zeros(DType::F32, [256]));
    group.bench_function("no_tape", |bench| {
        bench.iter(|| v.read().unwrap());
    });
    group.bench_function("auto_watching_tape", |bench| {
        let _tape = GradientTape::persistent();
        bench.iter(|| v.read().unwrap());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(12)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_tape_dispatch, bench_variable_reads
}
criterion_main!(benches);
