//! Real wall-clock micro-benchmarks of the dispatch path: eager op
//! execution across tensor sizes and the cost of gradient machinery.
//!
//! These complement the virtual-clock figure harness: they measure what
//! *this* runtime actually costs per operation — the quantity the
//! interpreter-overhead model of DESIGN.md §3 abstracts for the paper's
//! Python front-end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tfe_runtime::{api, context, ExecMode};
use tfe_tensor::DType;

fn bench_eager_dispatch(c: &mut Criterion) {
    tfe_core::init();
    let mut group = c.benchmark_group("eager_dispatch");
    for n in [1usize, 64, 4096, 262_144] {
        let a = api::zeros(DType::F32, [n]);
        let b = api::ones(DType::F32, [n]);
        group.bench_with_input(BenchmarkId::new("add", n), &n, |bench, _| {
            bench.iter(|| api::add(&a, &b).unwrap());
        });
    }
    let m = api::zeros(DType::F32, [64, 64]);
    group.bench_function("matmul_64x64", |bench| {
        bench.iter(|| api::matmul(&m, &m).unwrap());
    });
    group.finish();
}

fn bench_staged_dispatch(c: &mut Criterion) {
    tfe_core::init();
    context::reset_exec_stats();
    // The same op chain dispatched through the graph executor instead of
    // per-op eager dispatch, in both scheduling modes; the exec-stats line
    // printed afterwards shows nodes/kernels per call and queue behaviour.
    let mut group = c.benchmark_group("staged_dispatch");
    let f = tfe_core::function1("bench_staged_dispatch", |x| {
        let mut branches = Vec::new();
        for _ in 0..8 {
            branches.push(api::tanh(&api::exp(x)?)?);
        }
        let mut acc = branches[0].clone();
        for b in &branches[1..] {
            acc = api::add(&acc, b)?;
        }
        Ok(acc)
    });
    let x = api::zeros(DType::F32, [16_384]);
    f.call1(&x).unwrap(); // trace outside the timed region
    for (name, mode) in [("serial", ExecMode::SerialPlanned), ("parallel", ExecMode::Parallel)] {
        group.bench_function(name, |bench| {
            let prev = context::set_exec_mode(mode);
            bench.iter(|| f.call1(&x).unwrap());
            context::set_exec_mode(prev);
        });
    }
    group.finish();
    tfe_bench::report_exec_stats("staged_dispatch");
}

fn bench_profiler_overhead(c: &mut Criterion) {
    tfe_core::init();
    // The same eager dispatch with the profiler off (one relaxed atomic
    // load per probe site — the everyone-pays cost) and on (span recording
    // into the thread-local buffer). `profiler_smoke` asserts the disabled
    // delta stays under 2%; this group keeps both numbers visible.
    let mut group = c.benchmark_group("profiler_overhead");
    let a = api::zeros(DType::F32, [64]);
    let b = api::ones(DType::F32, [64]);
    group.bench_function("add_64_disabled", |bench| {
        bench.iter(|| api::add(&a, &b).unwrap());
    });
    group.bench_function("add_64_enabled", |bench| {
        tfe_profile::start();
        bench.iter(|| api::add(&a, &b).unwrap());
        tfe_profile::stop();
    });
    group.finish();
}

fn bench_gradient(c: &mut Criterion) {
    tfe_core::init();
    let mut group = c.benchmark_group("gradient");
    let x = api::zeros(DType::F32, [256]);
    group.bench_function("chain3_backward", |bench| {
        bench.iter(|| {
            let tape = tfe_autodiff::GradientTape::new();
            tape.watch(&x);
            let h = api::relu(&x).unwrap();
            let h = api::tanh(&h).unwrap();
            let y = api::reduce_sum(&api::square(&h).unwrap(), &[], false).unwrap();
            tape.gradient1(&y, &x).unwrap()
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(12)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_eager_dispatch, bench_staged_dispatch, bench_profiler_overhead, bench_gradient
}
criterion_main!(benches);
