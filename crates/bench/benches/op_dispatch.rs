//! Real wall-clock micro-benchmarks of the dispatch path: eager op
//! execution across tensor sizes and the cost of gradient machinery.
//!
//! These complement the virtual-clock figure harness: they measure what
//! *this* runtime actually costs per operation — the quantity the
//! interpreter-overhead model of DESIGN.md §3 abstracts for the paper's
//! Python front-end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tfe_runtime::api;
use tfe_tensor::DType;

fn bench_eager_dispatch(c: &mut Criterion) {
    tfe_core::init();
    let mut group = c.benchmark_group("eager_dispatch");
    for n in [1usize, 64, 4096, 262_144] {
        let a = api::zeros(DType::F32, [n]);
        let b = api::ones(DType::F32, [n]);
        group.bench_with_input(BenchmarkId::new("add", n), &n, |bench, _| {
            bench.iter(|| api::add(&a, &b).unwrap());
        });
    }
    let m = api::zeros(DType::F32, [64, 64]);
    group.bench_function("matmul_64x64", |bench| {
        bench.iter(|| api::matmul(&m, &m).unwrap());
    });
    group.finish();
}

fn bench_gradient(c: &mut Criterion) {
    tfe_core::init();
    let mut group = c.benchmark_group("gradient");
    let x = api::zeros(DType::F32, [256]);
    group.bench_function("chain3_backward", |bench| {
        bench.iter(|| {
            let tape = tfe_autodiff::GradientTape::new();
            tape.watch(&x);
            let h = api::relu(&x).unwrap();
            let h = api::tanh(&h).unwrap();
            let y = api::reduce_sum(&api::square(&h).unwrap(), &[], false).unwrap();
            tape.gradient1(&y, &x).unwrap()
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(12)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_eager_dispatch, bench_gradient
}
criterion_main!(benches);
