//! Per-probe cost of the always-on metrics layer: the quantities every
//! instrumented hot path pays unconditionally. `metrics_smoke` (the CI
//! gate) asserts the counter bump stays under 5 ns; this bench keeps the
//! full picture visible — counter vs gauge vs histogram, cached handle vs
//! macro expansion, and a snapshot/scrape for scale.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_probe_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_probe");

    // The macro expansion used at every instrumented call site: OnceLock
    // handle fetch + relaxed fetch_add.
    group.bench_function("counter_bump_static", |bench| {
        bench.iter(|| {
            tfe_metrics::static_counter!("tfe_bench_counter_total", "probe-cost bench counter")
                .inc();
        });
    });

    // The same bump through a pre-fetched handle (what FuncInner caches).
    let counter = tfe_metrics::counter("tfe_bench_counter2_total", "probe-cost bench counter 2");
    group.bench_function("counter_bump_handle", |bench| {
        bench.iter(|| counter.inc());
    });

    let gauge = tfe_metrics::gauge("tfe_bench_gauge", "probe-cost bench gauge");
    group.bench_function("gauge_set_max", |bench| {
        let mut i = 0i64;
        bench.iter(|| {
            i += 1;
            gauge.set_max(i % 1000);
        });
    });

    let hist = tfe_metrics::histogram(
        "tfe_bench_hist_ns",
        "probe-cost bench histogram",
        tfe_metrics::DEFAULT_NS_BUCKETS,
    );
    group.bench_function("histogram_observe", |bench| {
        let mut i = 0u64;
        bench.iter(|| {
            i = (i + 997) % 10_000_000;
            hist.observe(i);
        });
    });

    // Labeled-family child lookup (the cold path hot paths must avoid).
    let vec = tfe_metrics::counter_vec("tfe_bench_vec_total", "probe-cost bench family", "who");
    group.bench_function("counter_vec_with", |bench| {
        bench.iter(|| vec.with("bench").inc());
    });

    group.finish();
}

fn bench_scrape(c: &mut Criterion) {
    // Populate a few families so the scrape has realistic breadth.
    tfe_core::init();
    let x = tfe_runtime::api::zeros(tfe_tensor::DType::F32, [64]);
    let _ = tfe_runtime::api::relu(&x).unwrap();
    let mut group = c.benchmark_group("metrics_scrape");
    group.bench_function("snapshot", |bench| {
        bench.iter(tfe_metrics::snapshot);
    });
    group.bench_function("prometheus_text", |bench| {
        bench.iter(tfe_metrics::prometheus_text);
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_probe_cost, bench_scrape
}
criterion_main!(benches);
