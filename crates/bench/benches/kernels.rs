//! Criterion benchmarks for the intra-op parallel kernel layer: matmul,
//! conv2d, reductions and softmax, each measured with the full worker
//! pool and with intra-op parallelism pinned to one thread so the
//! speedup (and the small-tensor "stay serial" guarantee) is visible in
//! one report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tfe_parallel::set_intra_threads;
use tfe_tensor::reduce::{reduce, ReduceOp};
use tfe_tensor::{conv, matmul, softmax, Shape, TensorData};

fn f32_tensor(dims: &[usize]) -> TensorData {
    let n: usize = dims.iter().product();
    let v: Vec<f32> = (0..n).map(|i| ((i % 97) as f32 - 48.0) * 0.125).collect();
    TensorData::from_vec(v, Shape::new(dims.to_vec())).expect("f32 tensor")
}

/// Run `bench` once per intra-op thread mode ("par" and "serial1").
fn per_mode(group: &mut criterion::BenchmarkGroup<'_>, name: &str, mut body: impl FnMut()) {
    for mode in ["par", "serial1"] {
        group.bench_function(BenchmarkId::new(name, mode), |b| {
            let prev = if mode == "serial1" {
                set_intra_threads(Some(1))
            } else {
                set_intra_threads(None)
            };
            b.iter(&mut body);
            set_intra_threads(prev);
        });
    }
}

fn bench_matmul(c: &mut Criterion) {
    tfe_core::init();
    let mut group = c.benchmark_group("kernels/matmul");
    for n in [64usize, 256, 512] {
        let a = f32_tensor(&[n, n]);
        let b = f32_tensor(&[n, n]);
        per_mode(&mut group, &format!("{n}x{n}"), || {
            matmul::matmul(&a, &b, false, false).unwrap();
        });
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    tfe_core::init();
    let mut group = c.benchmark_group("kernels/conv2d");
    let x = f32_tensor(&[4, 16, 16, 8]);
    let f = f32_tensor(&[3, 3, 8, 16]);
    per_mode(&mut group, "4x16x16x8_k3x3x16", || {
        conv::conv2d(&x, &f, (1, 1), conv::Padding::Same).unwrap();
    });
    group.finish();
}

fn bench_reduce_softmax(c: &mut Criterion) {
    tfe_core::init();
    let mut group = c.benchmark_group("kernels/reduce_softmax");
    let big = f32_tensor(&[1 << 18]);
    per_mode(&mut group, "reduce_sum_256k", || {
        reduce(&big, &[], false, ReduceOp::Sum).unwrap();
    });
    let rows = f32_tensor(&[128, 512]);
    per_mode(&mut group, "softmax_128x512", || {
        softmax::softmax(&rows).unwrap();
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(12)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_matmul, bench_conv, bench_reduce_softmax
}
criterion_main!(benches);
