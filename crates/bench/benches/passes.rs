//! Ablations of the graph-optimization passes (DESIGN.md §6): each pass
//! on/off, measured as real executor wall-clock on a representative graph,
//! plus the pass pipelines themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use tfe_graph::{passes, GraphBuilder, GraphFunction};
use tfe_ops::{Attrs, SymShape};
use tfe_runtime::{executor, ExecMode};
use tfe_tensor::{DType, Shape, TensorData};

/// A graph with dead branches, duplicate subexpressions, constant
/// subgraphs, and a long fusable elementwise chain.
fn build_messy(n_chain: usize) -> GraphFunction {
    let mut b = GraphBuilder::new("messy");
    let x = b.placeholder(DType::F32, SymShape::known(&Shape::from([4096]))).unwrap();
    // Constant subgraph (foldable).
    let c1 = b.constant(Arc::new(TensorData::scalar(2.0f32))).unwrap();
    let c2 = b.constant(Arc::new(TensorData::scalar(3.0f32))).unwrap();
    let c = b.add_node("mul", vec![c1, c2], Attrs::new()).unwrap()[0];
    // Duplicate subexpressions (CSE fodder).
    let r1 = b.add_node("relu", vec![x], Attrs::new()).unwrap()[0];
    let r2 = b.add_node("relu", vec![x], Attrs::new()).unwrap()[0];
    let mut cur = b.add_node("add", vec![r1, r2], Attrs::new()).unwrap()[0];
    cur = b.add_node("mul", vec![cur, c], Attrs::new()).unwrap()[0];
    // Long elementwise chain (fusion fodder).
    for i in 0..n_chain {
        let op = ["tanh", "sigmoid", "square", "softplus"][i % 4];
        cur = b.add_node(op, vec![cur], Attrs::new()).unwrap()[0];
    }
    // Dead work (pruning fodder).
    let _dead = b.add_node("exp", vec![x], Attrs::new()).unwrap();
    let _dead2 = b.add_node("sin", vec![x], Attrs::new()).unwrap();
    b.finish(vec![cur], 0)
}

fn evaluator(
    node: &tfe_graph::Node,
    inputs: &[Arc<TensorData>],
) -> Result<Vec<TensorData>, String> {
    tfe_runtime::kernels::run_kernel(&node.op, &node.attrs, inputs).map_err(|e| e.to_string())
}

fn bench_pass_pipelines(c: &mut Criterion) {
    tfe_core::init();
    let f = build_messy(16);
    let mut group = c.benchmark_group("optimize_pipeline");
    group.bench_function("none", |b| {
        b.iter(|| passes::optimize(&f, &passes::OptimizeOptions::none(), None));
    });
    group.bench_function("default", |b| {
        b.iter(|| passes::optimize(&f, &passes::OptimizeOptions::default(), Some(&evaluator)));
    });
    group.bench_function("aggressive_with_fusion", |b| {
        b.iter(|| passes::optimize(&f, &passes::OptimizeOptions::aggressive(), Some(&evaluator)));
    });
    group.finish();
}

fn bench_executor_ablation(c: &mut Criterion) {
    tfe_core::init();
    let f = build_messy(16);
    let device = tfe_runtime::context::device_manager().host_cpu();
    let unopt = passes::optimize(&f, &passes::OptimizeOptions::none(), None);
    let opt = passes::optimize(&f, &passes::OptimizeOptions::default(), Some(&evaluator));
    let fused = passes::optimize(&f, &passes::OptimizeOptions::aggressive(), Some(&evaluator));
    let x = Arc::new(TensorData::zeros(DType::F32, [4096]));
    let mut group = c.benchmark_group("executor_graph_variants");
    for (name, g) in [("unoptimized", &unopt), ("optimized", &opt), ("fused", &fused)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                executor::run_function(
                    g,
                    std::slice::from_ref(&x),
                    &device,
                    ExecMode::SerialPlanned,
                )
                .unwrap()
            });
        });
    }
    // Serial (buffer reuse) vs parallel scheduling on a wide graph.
    let wide = {
        let mut b = GraphBuilder::new("wide");
        let x = b.placeholder(DType::F32, SymShape::known(&Shape::from([65_536]))).unwrap();
        let mut outs = Vec::new();
        for _ in 0..12 {
            let t = b.add_node("exp", vec![x], Attrs::new()).unwrap()[0];
            let t = b.add_node("tanh", vec![t], Attrs::new()).unwrap()[0];
            outs.push(t);
        }
        let mut acc = outs[0];
        for &o in &outs[1..] {
            acc = b.add_node("add", vec![acc, o], Attrs::new()).unwrap()[0];
        }
        b.finish(vec![acc], 0)
    };
    let big = Arc::new(TensorData::zeros(DType::F32, [65_536]));
    tfe_runtime::context::reset_exec_stats();
    group.bench_function("wide_serial", |b| {
        b.iter(|| {
            executor::run_function(
                &wide,
                std::slice::from_ref(&big),
                &device,
                ExecMode::SerialPlanned,
            )
            .unwrap()
        });
    });
    group.bench_function("wide_parallel", |b| {
        b.iter(|| {
            executor::run_function(&wide, std::slice::from_ref(&big), &device, ExecMode::Parallel)
                .unwrap()
        });
    });
    group.finish();
    tfe_bench::report_exec_stats("wide_graph");
}

fn bench_memory_planner(c: &mut Criterion) {
    tfe_core::init();
    let f = build_messy(64);
    let mut group = c.benchmark_group("memory_planner");
    group.bench_function("plan", |b| {
        b.iter(|| tfe_graph::plan_memory(&f));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(12)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_pass_pipelines, bench_executor_ablation, bench_memory_planner
}
criterion_main!(benches);
