//! Real wall-clock eager-vs-staged comparison (the §6 phenomenon measured
//! on this runtime itself, without the interpreter-overhead model): a small
//! MLP forward pass and the L2HMC update, run imperatively and through
//! `function`. Staging wins here too — from trace-cache hits replacing
//! per-op dispatch, pruning, and const folding — just by a smaller factor
//! than with a CPython front-end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use tfe_bench::workloads::L2hmcWorkload;
use tfe_nn::layers::Layer;
use tfe_nn::{mlp, Activation, Initializer};
use tfe_runtime::api;
use tfe_tensor::DType;

fn bench_mlp(c: &mut Criterion) {
    tfe_core::init();
    tfe_runtime::context::reset_exec_stats();
    let mut group = c.benchmark_group("mlp_forward");
    let model = Arc::new(mlp(32, &[64, 64, 64], 8, Activation::Relu, &mut Initializer::seeded(3)));
    let staged = {
        let model = model.clone();
        tfe_core::function1("bench_mlp", move |x| model.call(x, false))
    };
    for batch in [1usize, 32] {
        let x = api::zeros(DType::F32, [batch, 32]);
        group.bench_with_input(BenchmarkId::new("eager", batch), &batch, |b, _| {
            b.iter(|| model.call(&x, false).unwrap());
        });
        staged.call1(&x).unwrap(); // trace outside the timed region
        group.bench_with_input(BenchmarkId::new("staged", batch), &batch, |b, _| {
            b.iter(|| staged.call1(&x).unwrap());
        });
    }
    group.finish();
    tfe_bench::report_exec_stats("mlp_forward");
}

fn bench_l2hmc(c: &mut Criterion) {
    tfe_core::init();
    tfe_runtime::context::reset_exec_stats();
    let mut group = c.benchmark_group("l2hmc_step");
    group.sample_size(20);
    let w = L2hmcWorkload::new(5, 10);
    let x = w.chain(32);
    group.bench_function("eager", |b| {
        b.iter(|| w.eager_step(&x).unwrap());
    });
    w.staged_step(&x).unwrap(); // trace
    group.bench_function("staged", |b| {
        b.iter(|| w.staged_step(&x).unwrap());
    });
    group.finish();
    tfe_bench::report_exec_stats("l2hmc_step");
}

fn bench_trace_cache(c: &mut Criterion) {
    tfe_core::init();
    let mut group = c.benchmark_group("trace_cache");
    let f = tfe_core::function1("bench_cache", api::relu);
    let x = api::zeros(DType::F32, [16]);
    f.call1(&x).unwrap();
    group.bench_function("hit", |b| {
        b.iter(|| f.call1(&x).unwrap());
    });
    group.bench_function("miss_retrace", |b| {
        // Each iteration uses a fresh Func so every call is a cache miss:
        // measures binding-time analysis + tracing + optimization.
        b.iter_with_setup(
            || tfe_core::function1("bench_miss", api::relu),
            |f| f.call1(&x).unwrap(),
        );
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(12)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_mlp, bench_l2hmc, bench_trace_cache
}
criterion_main!(benches);
