//! Calibrated device + dispatch profiles for the three §6 experiments.
//!
//! The compute models are *effective* rooflines tuned so the harness lands
//! near the paper's reported examples/second on the paper's hardware; the
//! dispatch model's `interpreter_ns` stands in for CPython (see DESIGN.md
//! §3). Absolute agreement is not the bar — the reproduction target is the
//! *shape*: who wins, by what factor, and where the crossovers sit.

use tfe_device::{ComputeModel, DispatchModel};

/// Per-experiment simulation profile: a device plus host-side overheads.
#[derive(Debug, Clone)]
pub struct SimProfile {
    /// The accelerator/CPU compute model.
    pub compute: ComputeModel,
    /// Fraction of the smaller of (host time, device time) hidden by
    /// pipelined asynchronous dispatch: a run spans
    /// `max(host, device) + (1 - overlap) * min(host, device)`.
    /// GPUs dispatch asynchronously (high overlap); TPU per-op compilation
    /// and synchronous CPU kernels do not overlap.
    pub overlap: f64,
    /// Host dispatch overheads for eager execution.
    pub eager: DispatchModel,
    /// Host dispatch overheads when invoking staged functions from the
    /// TFE front-end (`TFE + function`).
    pub staged: DispatchModel,
    /// Host dispatch overheads for classic graph mode (`TF`):
    /// `session.run` has slightly different per-call costs but the same
    /// C++ executor underneath.
    pub graph_mode: DispatchModel,
}

/// Figure 3: ResNet-50 training on a GTX-1080-class GPU.
pub fn figure3_gpu() -> SimProfile {
    let compute = ComputeModel {
        flops_per_sec: 4.3e12,
        bytes_per_sec: 1.8e12,
        launch_ns: 1_000.0,
        min_kernel_ns: 2_000.0,
        saturation_flops: 5.0e8,
        min_utilization: 0.5,
    };
    let eager = DispatchModel {
        interpreter_ns: 7_800.0,
        executor_node_ns: 0.0,
        function_call_ns: 0.0,
        eager_compile_ns: 0.0,
        staged_call_latency_ns: 0.0,
    };
    let staged = DispatchModel {
        interpreter_ns: 7_800.0, // the single `call` op still crosses Python
        executor_node_ns: 1_000.0,
        function_call_ns: 60_000.0,
        eager_compile_ns: 0.0,
        staged_call_latency_ns: 0.0,
    };
    let graph_mode = DispatchModel {
        interpreter_ns: 7_800.0,
        executor_node_ns: 1_000.0,
        function_call_ns: 110_000.0, // session.run feed/fetch handling
        eager_compile_ns: 0.0,
        staged_call_latency_ns: 0.0,
    };
    SimProfile { compute, overlap: 0.6, eager, staged, graph_mode }
}

/// Table 1: ResNet-50 training on a Cloud-TPU-class accelerator.
pub fn table1_tpu() -> SimProfile {
    // XLA-compiled programs: fused kernels with tiny per-node residual
    // cost and high sustained utilization.
    let compute = ComputeModel {
        flops_per_sec: 1.35e13,
        bytes_per_sec: 3.0e12,
        launch_ns: 200.0,
        min_kernel_ns: 500.0,
        saturation_flops: 1.0e8,
        min_utilization: 0.8,
    };
    let eager = DispatchModel {
        interpreter_ns: 14_000.0,
        executor_node_ns: 0.0,
        function_call_ns: 0.0,
        // §4.4: per-op compilation + dispatch on a compile-required device
        // is the dominant eager cost.
        eager_compile_ns: 180_000.0,
        staged_call_latency_ns: 0.0,
    };
    let staged = DispatchModel {
        interpreter_ns: 10_000.0,
        executor_node_ns: 500.0,
        function_call_ns: 60_000.0,
        eager_compile_ns: 0.0,
        // One compiled-program launch per step (the Cloud-TPU round trip).
        staged_call_latency_ns: 38_000_000.0,
    };
    let graph_mode = staged.clone();
    // Per-op compilation blocks the dispatch thread: no overlap.
    SimProfile { compute, overlap: 0.0, eager, staged, graph_mode }
}

/// Figure 4: L2HMC on a Xeon-W-2135-class CPU.
pub fn figure4_cpu() -> SimProfile {
    let compute = ComputeModel {
        flops_per_sec: 6.0e10,
        bytes_per_sec: 5.0e10,
        launch_ns: 500.0,
        // TF-era CPU kernels on tiny tensors spend tens of microseconds in
        // allocation and Eigen dispatch; this floor is what the staged
        // executor pays per op and what bounds its examples/sec.
        min_kernel_ns: 25_000.0,
        saturation_flops: 2.0e5,
        min_utilization: 0.25,
    };
    let eager = DispatchModel {
        // Per-op CPython + EagerTensor + tape bookkeeping of 2017-era TFE
        // (the paper predates the later per-op fast path).
        interpreter_ns: 300_000.0,
        executor_node_ns: 0.0,
        function_call_ns: 0.0,
        eager_compile_ns: 0.0,
        staged_call_latency_ns: 0.0,
    };
    let staged = DispatchModel {
        interpreter_ns: 300_000.0,
        executor_node_ns: 2_000.0,
        function_call_ns: 60_000.0,
        eager_compile_ns: 0.0,
        staged_call_latency_ns: 0.0,
    };
    let graph_mode = DispatchModel { function_call_ns: 110_000.0, ..staged.clone() };
    // CPU kernels run on the dispatching thread: no overlap.
    SimProfile { compute, overlap: 0.0, eager, staged, graph_mode }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_internally_consistent() {
        for p in [figure3_gpu(), table1_tpu(), figure4_cpu()] {
            assert!(p.compute.flops_per_sec > 0.0);
            // Eager interpreter cost dwarfs the staged executor cost: the
            // mechanism behind every speed-up in §6.
            assert!(p.eager.interpreter_ns > 5.0 * p.staged.executor_node_ns);
            assert!((0.0..=1.0).contains(&p.overlap));
        }
        // TPU: per-op compile dominates even the interpreter.
        let tpu = table1_tpu();
        assert!(tpu.eager.eager_compile_ns > 10.0 * tpu.eager.interpreter_ns);
    }
}
