//! Measurement machinery: run a step function under the virtual clock and
//! report examples/second, following the paper's protocol ("each benchmark
//! run was 10 iterations, and an average of 3 runs was reported"; build and
//! optimization times excluded).

use crate::calibrate::SimProfile;
use tfe_device::{Device, DeviceName, DispatchModel, KernelMode, SimStats};
use tfe_runtime::context::{self, SimConfig};
use tfe_runtime::Result;

/// Which execution mode a measurement exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionConfig {
    /// Imperative TensorFlow Eager.
    Eager,
    /// TensorFlow Eager with the step staged via `function`.
    Staged,
    /// Classic graph mode (`TF`): same staged graph, session.run-style
    /// per-call costs.
    GraphMode,
}

impl ExecutionConfig {
    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ExecutionConfig::Eager => "TFE",
            ExecutionConfig::Staged => "TFE + function",
            ExecutionConfig::GraphMode => "TF",
        }
    }

    /// The dispatch model this mode uses from a profile.
    pub fn dispatch(self, profile: &SimProfile) -> DispatchModel {
        match self {
            ExecutionConfig::Eager => profile.eager.clone(),
            ExecutionConfig::Staged => profile.staged.clone(),
            ExecutionConfig::GraphMode => profile.graph_mode.clone(),
        }
    }
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Mode label.
    pub config: ExecutionConfig,
    /// Batch size (or sample count for L2HMC).
    pub batch: usize,
    /// Examples per virtual second (mean over runs).
    pub examples_per_sec: f64,
    /// Virtual seconds per step (mean).
    pub step_seconds: f64,
    /// Ops dispatched eagerly per step.
    pub eager_ops_per_step: f64,
    /// Staged nodes executed per step.
    pub staged_nodes_per_step: f64,
}

/// Print the executor's cumulative scheduling counters (see
/// [`tfe_runtime::context::exec_stats`]) under a benchmark tag, so bench
/// runs report what the scheduler actually did — nodes and kernels
/// executed, serial vs parallel runs, peak ready-queue depth and peak
/// live intermediate bytes — alongside the wall-clock numbers.
///
/// Call [`tfe_runtime::context::reset_exec_stats`] first to scope the
/// counters to one benchmark.
pub fn report_exec_stats(tag: &str) {
    let s = context::exec_stats();
    println!(
        "exec_stats[{tag}]: nodes={} kernels={} serial_runs={} parallel_runs={} \
         max_queue_depth={} peak_live_bytes={} intra_par={} intra_serial={} intra_tiles={}",
        s.nodes_executed,
        s.kernels_launched,
        s.serial_runs,
        s.parallel_runs,
        s.max_queue_depth,
        s.peak_live_bytes,
        s.intra_par_kernels,
        s.intra_serial_kernels,
        s.intra_tiles
    );
}

/// Register (idempotently) a simulated device and return it.
///
/// # Panics
/// Invalid device names (programmer error in the harness).
pub fn sim_device(name: &str, profile: &SimProfile, mode: KernelMode) -> Device {
    let parsed = DeviceName::parse(name).expect("valid device name");
    let device = Device::simulated(parsed.clone(), profile.compute.clone(), mode);
    let manager = context::device_manager();
    manager.register(device.clone()).ok();
    manager.find(&parsed).expect("registered device")
}

/// Run `step` under the profile's virtual clock and measure throughput.
///
/// `warmup` iterations run first (tracing/compilation happens there, and is
/// excluded, as in the paper); then `runs` runs of `iters` iterations each
/// are averaged.
///
/// # Errors
/// Propagates step failures.
#[allow(clippy::too_many_arguments)]
pub fn measure(
    config: ExecutionConfig,
    profile: &SimProfile,
    device: &Device,
    batch: usize,
    warmup: usize,
    runs: usize,
    iters: usize,
    mut step: impl FnMut() -> Result<()>,
) -> Result<Measurement> {
    let stats = SimStats::new();
    let previous = context::set_sim(Some(SimConfig {
        stats: stats.clone(),
        dispatch: config.dispatch(profile),
    }));
    let result = (|| -> Result<Measurement> {
        context::with_device_obj(device.clone(), || -> Result<()> {
            for _ in 0..warmup {
                step()?;
            }
            Ok(())
        })?;
        let mut total_secs = 0.0;
        let mut eager_ops = 0u64;
        let mut staged_nodes = 0u64;
        for _ in 0..runs {
            stats.reset();
            context::with_device_obj(device.clone(), || -> Result<()> {
                for _ in 0..iters {
                    step()?;
                }
                Ok(())
            })?;
            let host = stats.clock.now_secs();
            let device = stats.device_clock.now_secs();
            total_secs += host.max(device) + (1.0 - profile.overlap) * host.min(device);
            let counters = stats.counters();
            eager_ops += counters.eager_ops;
            staged_nodes += counters.staged_nodes;
        }
        let steps = (runs * iters) as f64;
        let step_seconds = total_secs / steps;
        Ok(Measurement {
            config,
            batch,
            examples_per_sec: batch as f64 / step_seconds,
            step_seconds,
            eager_ops_per_step: eager_ops as f64 / steps,
            staged_nodes_per_step: staged_nodes as f64 / steps,
        })
    })();
    context::set_sim(previous);
    result
}

/// Render a list of measurements as an aligned text table, grouped by mode.
pub fn render_table(title: &str, batches: &[usize], rows: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    out.push_str(&format!("{:<16}", "config"));
    for b in batches {
        out.push_str(&format!("{b:>10}"));
    }
    out.push('\n');
    for config in [ExecutionConfig::Eager, ExecutionConfig::Staged, ExecutionConfig::GraphMode] {
        let line: Vec<&Measurement> = rows.iter().filter(|m| m.config == config).collect();
        if line.is_empty() {
            continue;
        }
        out.push_str(&format!("{:<16}", config.label()));
        for b in batches {
            match line.iter().find(|m| m.batch == *b) {
                Some(m) => out.push_str(&format!("{:>10.1}", m.examples_per_sec)),
                None => out.push_str(&format!("{:>10}", "-")),
            }
        }
        out.push('\n');
    }
    // Percent improvement over eager (the bottom panel of Figure 3).
    let eager: Vec<&Measurement> =
        rows.iter().filter(|m| m.config == ExecutionConfig::Eager).collect();
    if !eager.is_empty() {
        out.push('\n');
        out.push_str(&format!("{:<16}", "% over TFE"));
        out.push('\n');
        for config in [ExecutionConfig::Staged, ExecutionConfig::GraphMode] {
            let line: Vec<&Measurement> = rows.iter().filter(|m| m.config == config).collect();
            if line.is_empty() {
                continue;
            }
            out.push_str(&format!("{:<16}", config.label()));
            for b in batches {
                let m = line.iter().find(|m| m.batch == *b);
                let e = eager.iter().find(|m| m.batch == *b);
                match (m, e) {
                    (Some(m), Some(e)) => {
                        let pct = (m.examples_per_sec / e.examples_per_sec - 1.0) * 100.0;
                        out.push_str(&format!("{pct:>9.1}%"));
                    }
                    _ => out.push_str(&format!("{:>10}", "-")),
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Encode measurements as a JSON value (for EXPERIMENTS.md bookkeeping).
pub fn to_json(experiment: &str, rows: &[Measurement]) -> tfe_encode::Value {
    use tfe_encode::Value;
    Value::object([
        ("experiment".to_string(), Value::str(experiment)),
        (
            "rows".to_string(),
            Value::Array(
                rows.iter()
                    .map(|m| {
                        Value::object([
                            ("config".to_string(), Value::str(m.config.label())),
                            ("batch".to_string(), Value::Int(m.batch as i64)),
                            ("examples_per_sec".to_string(), Value::Float(m.examples_per_sec)),
                            ("step_seconds".to_string(), Value::Float(m.step_seconds)),
                            ("eager_ops".to_string(), Value::Float(m.eager_ops_per_step)),
                            ("staged_nodes".to_string(), Value::Float(m.staged_nodes_per_step)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::figure4_cpu;
    use tfe_runtime::api;

    #[test]
    fn measure_counts_and_charges_time() {
        let profile = figure4_cpu();
        let device =
            sim_device("/job:localhost/task:0/device:CPU:9", &profile, KernelMode::Simulated);
        let a = api::scalar(1.0f32);
        let m = measure(ExecutionConfig::Eager, &profile, &device, 4, 1, 2, 5, || {
            let _ = api::add(&a, &a)?;
            Ok(())
        })
        .unwrap();
        assert!(m.examples_per_sec > 0.0);
        assert!(m.step_seconds > 0.0);
        assert!((m.eager_ops_per_step - 1.0).abs() < 1e-9);
        // Virtual, not wall-clock: one tiny op must cost at least the
        // interpreter overhead.
        assert!(m.step_seconds >= profile.eager.interpreter_ns / 1e9);
    }

    #[test]
    fn table_rendering_contains_modes() {
        let rows = vec![
            Measurement {
                config: ExecutionConfig::Eager,
                batch: 1,
                examples_per_sec: 10.0,
                step_seconds: 0.1,
                eager_ops_per_step: 5.0,
                staged_nodes_per_step: 0.0,
            },
            Measurement {
                config: ExecutionConfig::Staged,
                batch: 1,
                examples_per_sec: 20.0,
                step_seconds: 0.05,
                eager_ops_per_step: 1.0,
                staged_nodes_per_step: 5.0,
            },
        ];
        let t = render_table("Test", &[1], &rows);
        assert!(t.contains("TFE"));
        assert!(t.contains("TFE + function"));
        assert!(t.contains("100.0%"));
        let j = to_json("test", &rows);
        assert_eq!(j.get("experiment").and_then(tfe_encode::Value::as_str), Some("test"));
    }
}
