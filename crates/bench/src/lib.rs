//! # tfe-bench
//!
//! The evaluation harness: regenerates every table and figure of §6 of the
//! TensorFlow Eager paper (Figure 3, Table 1, Figure 4) under the virtual
//! clock, plus Criterion micro-benchmarks measuring the *real* wall-clock
//! costs of dispatch, tracing and graph optimization.
//!
//! See DESIGN.md §3 for the simulation substitution and EXPERIMENTS.md for
//! paper-vs-measured numbers.

#![warn(missing_docs)]

pub mod calibrate;
pub mod harness;
pub mod workloads;

pub use harness::{measure, report_exec_stats, ExecutionConfig, Measurement};
