//! The paper's benchmark workloads, packaged for the harness: the
//! ResNet-50 training step (Figure 3, Table 1) and the L2HMC sampler step
//! (Figure 4), each in eager and staged form.

use std::sync::Arc;
use tfe_core::Func;
use tfe_nn::l2hmc::{L2hmc, StronglyCorrelatedGaussian};
use tfe_nn::resnet::{self, ResNet};
use tfe_nn::{Initializer, Momentum};
use tfe_runtime::{Result, Tensor};
use tfe_tensor::{DType, Shape, TensorData};

/// ResNet-50 training workload: model + optimizer + a staged step.
pub struct ResnetWorkload {
    /// The model (shared by eager and staged paths).
    pub model: Arc<ResNet>,
    /// SGD with momentum, as in the reference ResNet training setup.
    pub optimizer: Arc<Momentum>,
    /// The staged training step (forward + gradients + update in one
    /// graph) — "converting the code to use function is simply a matter of
    /// decorating two functions" (§6).
    pub staged_step: Func,
    image_hw: usize,
    classes: usize,
}

impl ResnetWorkload {
    /// Build the full ResNet-50 (≈25.5M parameters). Constructing the
    /// variables takes a moment; do it once per process.
    pub fn resnet50() -> ResnetWorkload {
        Self::build(resnet::resnet50(1000, &mut Initializer::seeded(0)), 224, 1000)
    }

    /// A scaled-down variant for quick runs and tests.
    pub fn tiny() -> ResnetWorkload {
        Self::build(resnet::resnet_tiny(10, &mut Initializer::seeded(0)), 8, 10)
    }

    fn build(model: ResNet, image_hw: usize, classes: usize) -> ResnetWorkload {
        let model = Arc::new(model);
        let optimizer = Arc::new(Momentum::new(0.01, 0.9));
        let staged_step = {
            let model = model.clone();
            let optimizer = optimizer.clone();
            tfe_core::function("resnet_train_step", move |args| {
                let x = args[0].as_tensor().expect("images");
                let y = args[1].as_tensor().expect("labels");
                let loss = resnet::train_step(model.as_ref(), optimizer.as_ref(), x, y)?;
                Ok(vec![loss])
            })
        };
        ResnetWorkload { model, optimizer, staged_step, image_hw, classes }
    }

    /// A synthetic input batch (contents are irrelevant for throughput).
    ///
    /// # Errors
    /// Tensor construction failures.
    pub fn batch(&self, batch: usize) -> Result<(Tensor, Tensor)> {
        let hw = self.image_hw;
        let images = Tensor::from_data(TensorData::zeros(DType::F32, [batch, hw, hw, 3]));
        let labels = Tensor::from_data(TensorData::from_f64_vec(
            DType::I64,
            (0..batch).map(|i| (i % self.classes) as f64).collect(),
            Shape::from([batch]),
        ));
        Ok((images, labels))
    }

    /// One imperative training step.
    ///
    /// # Errors
    /// Execution failures.
    pub fn eager_step(&self, images: &Tensor, labels: &Tensor) -> Result<()> {
        resnet::train_step(self.model.as_ref(), self.optimizer.as_ref(), images, labels)?;
        Ok(())
    }

    /// One staged training step.
    ///
    /// # Errors
    /// Execution failures.
    pub fn staged_step(&self, images: &Tensor, labels: &Tensor) -> Result<()> {
        self.staged_step.call_tensors(&[images, labels])?;
        Ok(())
    }
}

/// L2HMC sampling workload: sampler + staged update.
pub struct L2hmcWorkload {
    /// The sampler.
    pub sampler: Arc<L2hmc>,
    /// The staged sampler step ("essentially running the entire update as
    /// a graph function", §6).
    pub staged_step: Func,
}

impl L2hmcWorkload {
    /// The §6 configuration: 2-D target, 10 leapfrog steps.
    pub fn paper() -> L2hmcWorkload {
        L2hmcWorkload::new(10, 10)
    }

    /// Custom step count / hidden width.
    pub fn new(n_steps: usize, hidden: usize) -> L2hmcWorkload {
        let sampler = Arc::new(L2hmc::new(
            Arc::new(StronglyCorrelatedGaussian::new()),
            hidden,
            n_steps,
            0.1,
            &mut Initializer::seeded(1),
        ));
        let staged_step = {
            let sampler = sampler.clone();
            tfe_core::function("l2hmc_sample_step", move |args| {
                let x = args[0].as_tensor().expect("x");
                let (x_next, prob) = sampler.sample_step(x)?;
                Ok(vec![x_next, prob])
            })
        };
        L2hmcWorkload { sampler, staged_step }
    }

    /// An initial chain state with `samples` parallel chains.
    pub fn chain(&self, samples: usize) -> Tensor {
        Tensor::from_data(TensorData::zeros(DType::F32, [samples, 2]))
    }

    /// One imperative sampler step.
    ///
    /// # Errors
    /// Execution failures.
    pub fn eager_step(&self, x: &Tensor) -> Result<()> {
        self.sampler.sample_step(x)?;
        Ok(())
    }

    /// One staged sampler step.
    ///
    /// # Errors
    /// Execution failures.
    pub fn staged_step(&self, x: &Tensor) -> Result<()> {
        self.staged_step.call_tensors(&[x])?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate;
    use crate::harness::{measure, sim_device, ExecutionConfig};
    use tfe_device::KernelMode;

    #[test]
    fn tiny_resnet_workload_measures() {
        let profile = calibrate::figure3_gpu();
        let device = sim_device("/gpu:3", &profile, KernelMode::CostOnly);
        let w = ResnetWorkload::tiny();
        let (x, y) = w.batch(2).unwrap();
        let eager =
            measure(ExecutionConfig::Eager, &profile, &device, 2, 1, 1, 2, || w.eager_step(&x, &y))
                .unwrap();
        let staged = measure(ExecutionConfig::Staged, &profile, &device, 2, 2, 1, 2, || {
            w.staged_step(&x, &y)
        })
        .unwrap();
        assert!(eager.eager_ops_per_step > 50.0, "{eager:?}");
        assert!(staged.staged_nodes_per_step > 50.0, "{staged:?}");
        // Staging must win on a small model with a Python-cost simulator.
        assert!(staged.examples_per_sec > eager.examples_per_sec, "{staged:?} vs {eager:?}");
    }

    #[test]
    fn l2hmc_workload_measures() {
        let profile = calibrate::figure4_cpu();
        let device =
            sim_device("/job:localhost/task:0/device:CPU:7", &profile, KernelMode::Simulated);
        let w = L2hmcWorkload::new(2, 4);
        let x = w.chain(8);
        let eager =
            measure(ExecutionConfig::Eager, &profile, &device, 8, 1, 1, 2, || w.eager_step(&x))
                .unwrap();
        let staged =
            measure(ExecutionConfig::Staged, &profile, &device, 8, 2, 1, 2, || w.staged_step(&x))
                .unwrap();
        assert!(eager.eager_ops_per_step > 30.0);
        assert!(staged.examples_per_sec > eager.examples_per_sec);
    }
}
