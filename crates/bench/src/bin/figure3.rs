//! Regenerates **Figure 3**: examples/second training ResNet-50 on a
//! (simulated) GTX-1080-class GPU for batch sizes 1–32, comparing TFE,
//! TFE + `function`, and TF, plus the percent-improvement panel.
//!
//! Run with `cargo run --release -p tfe-bench --bin figure3`.
//! Pass `--tiny` for a fast smoke run on the miniature ResNet.

use tfe_bench::calibrate;
use tfe_bench::harness::{measure, render_table, sim_device, ExecutionConfig, Measurement};
use tfe_bench::workloads::ResnetWorkload;
use tfe_device::KernelMode;

fn main() {
    tfe_core::init();
    let tiny = std::env::args().any(|a| a == "--tiny");
    let profile = calibrate::figure3_gpu();
    let device = sim_device("/gpu:0", &profile, KernelMode::CostOnly);

    eprintln!("building {} ...", if tiny { "tiny ResNet" } else { "ResNet-50" });
    let workload = if tiny { ResnetWorkload::tiny() } else { ResnetWorkload::resnet50() };
    let batches: &[usize] = &[1, 2, 4, 8, 16, 32];
    // Paper protocol: 10 iterations per run, average of 3 runs.
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, runs, iters) = if tiny || quick { (2, 1, 3) } else { (2, 3, 10) };

    let mut rows: Vec<Measurement> = Vec::new();
    for &batch in batches {
        let (x, y) = workload.batch(batch).expect("inputs");
        for config in [ExecutionConfig::Eager, ExecutionConfig::Staged, ExecutionConfig::GraphMode]
        {
            eprintln!("  batch {batch:>2}  {}", config.label());
            let m =
                measure(config, &profile, &device, batch, warmup, runs, iters, || match config {
                    ExecutionConfig::Eager => workload.eager_step(&x, &y),
                    _ => workload.staged_step(&x, &y),
                })
                .expect("measurement");
            rows.push(m);
        }
    }
    println!(
        "{}",
        render_table("Figure 3: ResNet-50 training on GPU (examples/sec)", batches, &rows)
    );
    println!(
        "paper (GTX 1080): TFE ~120 and TF ~125 ex/s at batch 32; staging wins \
         most at batch 1 and the gap vanishes as batch size grows."
    );
    let json = tfe_bench::harness::to_json("figure3", &rows);
    std::fs::write("figure3.json", json.to_json_pretty()).ok();
    eprintln!("wrote figure3.json");
}
