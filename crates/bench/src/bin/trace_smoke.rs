//! Causal-tracing smoke gate, run by `scripts/ci.sh`:
//!
//! 1. Asserts the flight recorder's *disabled* path stays within its
//!    budget: a probe site (`span` with both sinks off) may cost at most
//!    5 ns over the bare profiler-enabled check, mirroring the metrics
//!    registry's probe budget.
//! 2. Runs a batched serve workload (8 concurrent clients, async
//!    dispatch, parallel executor) under profiling and validates the
//!    chrome trace structurally: every request's flow events form one
//!    connected `s` → `t`* → `f` chain in timestamp order, every chain
//!    crosses >= 3 distinct thread rows (front door, batcher worker,
//!    stream thread), at least one chain reaches a pool worker (>= 4
//!    rows), and thread rows carry readable metadata names.
//! 3. Poisons a batch through a servable whose staged call fails and
//!    asserts the flight recorder dumped the failure post-mortem: reason
//!    `batch_poisoned`, the failing op named, the request's trace id
//!    attached, and the dump's records carrying that trace id.
//!
//! Exits non-zero (panics) on any violation.

use std::sync::{Arc, Barrier};
use std::time::Duration;
use tfe_core::{function1, TensorSpec};
use tfe_runtime::{api, context, ExecMode, Tensor};
use tfe_serve::{BatchPolicy, Dispatch, ModelRegistry, ServeError};
use tfe_tensor::DType;

const D: usize = 8;
const CONCURRENCY: usize = 8;
const REQS_PER_CLIENT: usize = 6;
const MODEL: &str = "trace_smoke_model";

fn example(i: usize) -> Tensor {
    let vals: Vec<f32> = (0..D).map(|j| ((i * 7 + j * 3) % 13) as f32 * 0.21 - 1.1).collect();
    api::constant(vals, [1, D]).expect("example")
}

/// Per-call cost of `f` in nanoseconds.
fn per_call_ns(iters: usize, f: impl Fn()) -> f64 {
    let t = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

fn check_flight_disabled_overhead() {
    assert!(!tfe_profile::enabled(), "profiler must start disabled");
    tfe_profile::set_flight_enabled(false);
    const ITERS: usize = 8_000_000;
    // Baseline: the profiler's own disabled probe (one relaxed load).
    let baseline_ns = per_call_ns(ITERS, || {
        std::hint::black_box(tfe_profile::enabled());
    });
    // A full probe site with both sinks off: profiler check + flight check.
    let probe_ns = per_call_ns(ITERS, || {
        std::hint::black_box(tfe_profile::span("serve", || unreachable!("closure must not run")));
    });
    let overhead = (probe_ns - baseline_ns).max(0.0);
    eprintln!(
        "flight disabled path: probe {probe_ns:.2} ns/call vs baseline {baseline_ns:.2} ns/call \
         ({overhead:.2} ns overhead)"
    );
    assert!(
        overhead < 5.0,
        "disabled flight recorder adds {overhead:.2} ns per probe site (budget: 5 ns)"
    );
    assert!(probe_ns < 25.0, "absolute disabled probe cost {probe_ns:.2} ns is implausibly high");
    tfe_profile::set_flight_enabled(true);
}

/// One request's flow events pulled out of the chrome trace.
#[derive(Default)]
struct Chain {
    starts: Vec<(i64, f64)>,
    steps: Vec<(i64, f64)>,
    ends: Vec<(i64, f64)>,
}

fn validate_trace(profile: &tfe_profile::Profile) {
    let json = profile.chrome_trace().to_json_pretty();
    let root = tfe_encode::Value::parse(&json).expect("chrome trace JSON must parse");
    let events = root
        .get("traceEvents")
        .and_then(tfe_encode::Value::as_array)
        .expect("traceEvents array missing");

    // Satellite: thread rows must be named for their roles.
    let mut row_names = Vec::new();
    for e in events {
        if e.get("ph").and_then(tfe_encode::Value::as_str) == Some("M")
            && e.get("name").and_then(tfe_encode::Value::as_str) == Some("thread_name")
        {
            if let Some(n) =
                e.get("args").and_then(|a| a.get("name")).and_then(tfe_encode::Value::as_str)
            {
                row_names.push(n.to_string());
            }
        }
    }
    assert!(
        row_names.iter().any(|n| n == &format!("serve:{MODEL}@v1")),
        "serve worker row must be named serve:{MODEL}@v1, rows: {row_names:?}"
    );
    assert!(
        row_names.iter().any(|n| n.starts_with("tfe-stream-")),
        "stream thread row missing, rows: {row_names:?}"
    );
    assert!(
        row_names.iter().any(|n| n.starts_with("pool-worker-")),
        "pool worker rows must be renamed pool-worker-K, rows: {row_names:?}"
    );

    // Collect flow events per trace id.
    let request_label = format!("request:{MODEL}@v1");
    let mut chains: std::collections::BTreeMap<i64, Chain> = Default::default();
    let mut serve_ids: std::collections::BTreeSet<i64> = Default::default();
    for e in events {
        let ph = e.get("ph").and_then(tfe_encode::Value::as_str);
        if !matches!(ph, Some("s") | Some("t") | Some("f")) {
            continue;
        }
        let id = e.get("id").and_then(tfe_encode::Value::as_i64).expect("flow event needs id");
        let tid = e.get("tid").and_then(tfe_encode::Value::as_i64).expect("flow event needs tid");
        let ts = e.get("ts").and_then(tfe_encode::Value::as_f64).expect("flow event needs ts");
        let chain = chains.entry(id).or_default();
        match ph {
            Some("s") => {
                let detail = e
                    .get("args")
                    .and_then(|a| a.get("detail"))
                    .and_then(tfe_encode::Value::as_str)
                    .unwrap_or("");
                if detail == request_label {
                    serve_ids.insert(id);
                }
                chain.starts.push((tid, ts));
            }
            Some("t") => chain.steps.push((tid, ts)),
            _ => chain.ends.push((tid, ts)),
        }
    }

    let expected = CONCURRENCY * REQS_PER_CLIENT;
    assert_eq!(
        serve_ids.len(),
        expected,
        "every serve request must open exactly one flow (got {} of {expected})",
        serve_ids.len()
    );

    // Structural check: each request's flow is one connected chain in
    // timestamp order, crossing >= 3 thread rows. Tolerance covers the
    // ns -> us float conversion.
    const EPS: f64 = 0.002;
    let mut max_rows = 0usize;
    for id in &serve_ids {
        let chain = &chains[id];
        assert_eq!(chain.starts.len(), 1, "trace {id}: exactly one flow start");
        assert_eq!(chain.ends.len(), 1, "trace {id}: exactly one flow finish");
        assert!(
            !chain.steps.is_empty(),
            "trace {id}: no flow steps — the request never visibly hopped threads"
        );
        let (start_tid, start_ts) = chain.starts[0];
        let (end_tid, end_ts) = chain.ends[0];
        assert_eq!(start_tid, end_tid, "trace {id}: must start and finish on the front door");
        for (tid, ts) in &chain.steps {
            assert!(
                *ts >= start_ts - EPS && *ts <= end_ts + EPS,
                "trace {id}: step on tid {tid} at {ts} falls outside [{start_ts}, {end_ts}]"
            );
        }
        let rows: std::collections::BTreeSet<i64> = chain
            .starts
            .iter()
            .chain(&chain.steps)
            .chain(&chain.ends)
            .map(|(tid, _)| *tid)
            .collect();
        assert!(
            rows.len() >= 3,
            "trace {id}: flow touches only {} thread rows (front door, batcher and \
             stream expected)",
            rows.len()
        );
        max_rows = max_rows.max(rows.len());
    }
    assert!(
        max_rows >= 4,
        "no request's flow reached a pool worker (max {max_rows} rows; expected front door + \
         batcher + stream + pool)"
    );

    // Per-trace summary: sane numbers for one real request.
    let sample = *serve_ids.iter().next().expect("non-empty");
    let report = profile.trace_report(sample as u64).expect("trace_report for a recorded request");
    assert!(report.total_ns > 0, "request must have measurable latency");
    assert!(report.threads >= 3, "report must see the cross-thread hops: {report}");
    assert!(report.hops >= 2, "report must count the flow steps: {report}");
    assert!(report.events > 0);
    eprintln!("{report}");
    eprintln!(
        "trace ok: {} request flows, widest chain {} thread rows, {} named rows",
        serve_ids.len(),
        max_rows,
        row_names.len()
    );
}

fn run_traced_workload() {
    let f = function1(MODEL, |x| {
        let w = api::constant(
            (0..D * D).map(|i| ((i % 5) as f32 - 2.0) * 0.17).collect::<Vec<f32>>(),
            [D, D],
        )?;
        api::relu(&api::matmul(x, &w)?)
    })
    .with_input_signature(vec![TensorSpec::new(DType::F32, vec![None, Some(D)])]);

    let registry = Arc::new(ModelRegistry::new());
    registry
        .register_with(
            MODEL,
            1,
            f,
            BatchPolicy {
                max_batch: CONCURRENCY,
                budget: Duration::from_millis(50),
                ewma_alpha: 0.25,
                // Async dispatch: the staged call hops batcher -> stream,
                // and the parallel executor fans nodes onto the pool.
                dispatch: Dispatch::Async,
            },
        )
        .expect("register");

    tfe_profile::start();
    let barrier = Arc::new(Barrier::new(CONCURRENCY));
    let handles: Vec<_> = (0..CONCURRENCY)
        .map(|c| {
            let registry = Arc::clone(&registry);
            let barrier = Arc::clone(&barrier);
            std::thread::Builder::new()
                .name(format!("trace-client-{c}"))
                .spawn(move || {
                    barrier.wait();
                    for r in 0..REQS_PER_CLIENT {
                        let x = example(c * REQS_PER_CLIENT + r);
                        let out = registry.infer(MODEL, &[&x]).expect("infer");
                        assert_eq!(out.len(), 1);
                    }
                })
                .expect("spawn client")
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let profile = tfe_profile::stop();
    registry.unregister(MODEL);

    validate_trace(&profile);
}

fn check_poison_dump() {
    // A servable whose staged call fails: matmul on [1, D] x [1, D] is a
    // shape error, surfaced as the batch's typed error.
    let poison = function1("trace_smoke_poison", |x| api::matmul(x, x));
    let registry = ModelRegistry::new();
    registry
        .register_with(
            "trace_smoke_poison",
            1,
            poison,
            BatchPolicy {
                max_batch: 4,
                budget: Duration::from_millis(50),
                ewma_alpha: 0.25,
                dispatch: Dispatch::Inherit,
            },
        )
        .expect("register poison model");
    let x = example(0);
    let err = registry.infer("trace_smoke_poison", &[&x]).expect_err("batch must fail");
    assert!(matches!(err, ServeError::Batch { .. }), "expected a typed batch error, got {err}");

    let dump = tfe_profile::recent_dumps()
        .into_iter()
        .rev()
        .find(|d| d.reason == "batch_poisoned")
        .expect("poisoned batch must leave a flight-recorder dump");
    assert!(!dump.op.is_empty(), "dump must name the failing op");
    assert!(dump.trace_id != 0, "dump must carry the request's trace id");
    assert!(
        dump.records.iter().any(|r| r.trace_id == dump.trace_id),
        "dump must contain causal history for trace {}: {} records",
        dump.trace_id,
        dump.records.len()
    );
    let json = dump.to_value().to_json_pretty();
    let parsed = tfe_encode::Value::parse(&json).expect("dump JSON parses");
    assert_eq!(parsed.get("reason").and_then(tfe_encode::Value::as_str), Some("batch_poisoned"));
    eprintln!(
        "poison dump ok: op `{}`, trace {}, {} records",
        dump.op,
        dump.trace_id,
        dump.records.len()
    );
    registry.unregister("trace_smoke_poison");
}

fn main() {
    // Before anything touches the worker pool: guarantee multiple workers
    // even on a single-core CI box.
    std::env::set_var("TFE_NUM_THREADS", "4");
    tfe_core::init();

    check_flight_disabled_overhead();

    let prev = context::set_exec_mode(ExecMode::Parallel);
    run_traced_workload();
    context::set_exec_mode(prev);

    check_poison_dump();
    println!("trace smoke: ok");
}
