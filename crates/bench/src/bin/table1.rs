//! Regenerates **Table 1**: examples/second training ResNet-50 on a
//! (simulated) Cloud-TPU-class accelerator, eager vs staged, batch 1–32.
//! Eager execution pays a per-op compile+dispatch penalty (§4.4); staging
//! compiles once (excluded, as in the paper) and amortizes a per-call
//! launch latency.
//!
//! Run with `cargo run --release -p tfe-bench --bin table1` (add `--tiny`
//! for a smoke run).

use tfe_bench::calibrate;
use tfe_bench::harness::{measure, sim_device, ExecutionConfig, Measurement};
use tfe_bench::workloads::ResnetWorkload;
use tfe_device::KernelMode;

fn main() {
    tfe_core::init();
    let tiny = std::env::args().any(|a| a == "--tiny");
    let profile = calibrate::table1_tpu();
    let device = sim_device("/tpu:0", &profile, KernelMode::CostOnly);

    eprintln!("building {} ...", if tiny { "tiny ResNet" } else { "ResNet-50" });
    let workload = if tiny { ResnetWorkload::tiny() } else { ResnetWorkload::resnet50() };
    let batches: &[usize] = &[1, 2, 4, 8, 16, 32];
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, runs, iters) = if tiny || quick { (2, 1, 3) } else { (2, 3, 10) };

    let mut rows: Vec<Measurement> = Vec::new();
    for &batch in batches {
        let (x, y) = workload.batch(batch).expect("inputs");
        for config in [ExecutionConfig::Eager, ExecutionConfig::Staged] {
            eprintln!("  batch {batch:>2}  {}", config.label());
            let m =
                measure(config, &profile, &device, batch, warmup, runs, iters, || match config {
                    ExecutionConfig::Eager => workload.eager_step(&x, &y),
                    _ => workload.staged_step(&x, &y),
                })
                .expect("measurement");
            rows.push(m);
        }
    }

    println!("## Table 1: ResNet-50 training on TPU (examples/sec)\n");
    print!("{:<28}", "batch size");
    for b in batches {
        print!("{b:>9}");
    }
    println!();
    for (label, config) in [
        ("TensorFlow Eager", ExecutionConfig::Eager),
        ("TFE with function", ExecutionConfig::Staged),
    ] {
        print!("{label:<28}");
        for b in batches {
            let m = rows.iter().find(|m| m.config == config && m.batch == *b);
            match m {
                Some(m) => print!("{:>9.1}", m.examples_per_sec),
                None => print!("{:>9}", "-"),
            }
        }
        println!();
    }
    println!(
        "\npaper: eager 1.06 → 30.3 ex/s, staged 21.7 → 241.9 ex/s across batch \
         1→32 — staging is an order of magnitude faster at every batch size."
    );
    let json = tfe_bench::harness::to_json("table1", &rows);
    std::fs::write("table1.json", json.to_json_pretty()).ok();
    eprintln!("wrote table1.json");
}
