//! Distribution smoke gate: boot real TCP workers on localhost, run
//! data-parallel training through both collectives, and validate the
//! whole distribution stack end to end —
//!
//! 1. **Bitwise training parity.** Two identically-seeded models, one
//!    trained over the 2-worker TCP cluster (parameter-server and then
//!    ring all-reduce), one through the single-process bit-reference;
//!    every variable and every reported loss must agree bit for bit.
//! 2. **Metric reconciliation.** For each worker, completed RPCs in
//!    `tfe_dist_rpcs_total` must equal the `tfe_dist_rpc_ns` histogram
//!    count, and wire bytes must have moved in both directions.
//! 3. **Chaos.** Killing a worker mid-run must surface a typed
//!    `DistError` on every RPC path within the configured deadline —
//!    never a hang — while the surviving worker keeps serving.
//!
//! Run with `cargo run --release -p tfe-bench --bin dist_smoke`.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tfe_dist::{Cluster, ClusterSpec, DistError, RemoteArg, RpcOptions, TransportKind};
use tfe_metrics::SampleValue;
use tfe_nn::optimizer::Sgd;
use tfe_nn::{mlp, mse_grad_fn, Activation, DataParallel, Initializer, Layer, Reduction};
use tfe_ops::Attrs;
use tfe_runtime::{api, Tensor, Variable};
use tfe_tensor::{DType, Shape};

const STEPS: usize = 4;

/// Seeded model + traced gradient function; returns its variables and the
/// concrete library name workers resolve.
fn setup(tag: &str, seed: u64) -> (Vec<Variable>, String) {
    let mut init = Initializer::seeded(seed);
    let model = Arc::new(mlp(4, &[8], 1, Activation::Tanh, &mut init));
    let vars = model.variables();
    let f = mse_grad_fn(&format!("smoke_grad_{tag}"), model, vars.clone());
    let conc = f
        .concrete_for(&[
            tfe_core::Arg::from(&api::zeros(DType::F32, [4, 4])),
            tfe_core::Arg::from(&api::zeros(DType::F32, [4, 1])),
        ])
        .expect("trace grad fn");
    (vars, conc.function.name.clone())
}

fn batch(seed: u64) -> (Tensor, Tensor) {
    let mut rng = tfe_tensor::rng::TensorRng::seed_from_u64(seed);
    let x = Tensor::from_data(rng.uniform(DType::F32, Shape::from([8, 4]), -1.0, 1.0).unwrap());
    let y = Tensor::from_data(rng.uniform(DType::F32, Shape::from([8, 1]), -1.0, 1.0).unwrap());
    (x, y)
}

fn var_bits(vars: &[Variable]) -> Vec<Vec<u64>> {
    vars.iter().map(|v| v.peek().to_f64_vec().iter().map(|f| f.to_bits()).collect()).collect()
}

/// Train one (reduction, transport) configuration distributed and its
/// identically-seeded twin through the local bit-reference; panic on any
/// bit of divergence. Returns ns/step for the distributed run.
fn train_parity(tag: &str, reduction: Reduction) -> f64 {
    let (vars_dist, name_dist) = setup(&format!("d_{tag}"), 42);
    let (vars_local, name_local) = setup(&format!("l_{tag}"), 42);
    assert_eq!(var_bits(&vars_dist), var_bits(&vars_local), "same seed must give same init");

    let spec =
        ClusterSpec::new().with_job("train", 2).expect("job").with_job("ps", 1).expect("job");
    let workers = vec![
        "/job:train/task:0/device:CPU:0".to_string(),
        "/job:train/task:1/device:CPU:0".to_string(),
    ];
    let tcp = Cluster::start_tcp(&spec).expect("TCP cluster boots");
    let dist = DataParallel::new(
        tcp,
        workers.clone(),
        reduction.clone(),
        &name_dist,
        vars_dist.clone(),
        Arc::new(Sgd::new(0.05)),
    )
    .expect("distributed trainer");
    // The reference trainer never sends an RPC after construction; give it
    // an in-process cluster just to satisfy the constructor's liveness ping.
    let local = DataParallel::new(
        Cluster::start(&spec),
        workers,
        reduction,
        &name_local,
        vars_local.clone(),
        Arc::new(Sgd::new(0.05)),
    )
    .expect("reference trainer");

    let started = Instant::now();
    let mut losses = Vec::new();
    for step in 0..STEPS {
        let (x, y) = batch(100 + step as u64);
        losses.push(dist.step(&x, &y).expect("distributed step"));
    }
    let ns_per_step = started.elapsed().as_nanos() as f64 / STEPS as f64;

    for (step, loss) in losses.iter().enumerate() {
        let (x, y) = batch(100 + step as u64);
        let l = local.local_step(&x, &y).expect("reference step");
        assert_eq!(loss.to_bits(), l.to_bits(), "{tag}: step {step} loss diverged ({loss} vs {l})");
    }
    assert_eq!(
        var_bits(&vars_dist),
        var_bits(&vars_local),
        "{tag}: variables diverged from the single-process reference"
    );
    assert!(losses[0] != losses[STEPS - 1], "{tag}: no training progress over {STEPS} steps");
    println!("dist smoke: {tag} trained {STEPS} steps bitwise-equal to local reference");
    ns_per_step
}

/// Every worker's RPC ledger must balance: completions == latency samples,
/// and bytes moved both ways over the wire.
fn reconcile_metrics() {
    let snap = tfe_metrics::snapshot();
    let histogram_count = |name: &str, label: &str| -> u64 {
        snap.family(name)
            .and_then(|fam| {
                fam.samples
                    .iter()
                    .find(|s| s.label.as_ref().is_some_and(|(_, v)| v == label))
                    .and_then(|s| match &s.value {
                        SampleValue::Histogram(h) => Some(h.count),
                        _ => None,
                    })
            })
            .unwrap_or(0)
    };
    for worker in ["train/0", "train/1", "ps/0"] {
        let rpcs = snap.counter_with("tfe_dist_rpcs_total", worker).unwrap_or(0);
        let samples = histogram_count("tfe_dist_rpc_ns", worker);
        assert!(rpcs > 0, "no RPCs recorded for {worker}");
        assert_eq!(rpcs, samples, "{worker}: {rpcs} completed RPCs but {samples} latency samples");
        let sent = snap.counter_with("tfe_dist_bytes_sent_total", worker).unwrap_or(0);
        let received = snap.counter_with("tfe_dist_bytes_received_total", worker).unwrap_or(0);
        assert!(sent > 0, "{worker}: no bytes sent");
        assert!(received > 0, "{worker}: no bytes received");
        println!("dist smoke: {worker} reconciled — {rpcs} RPCs, {sent} B out, {received} B back");
    }
}

/// Kill a TCP worker mid-run: every RPC path must return a typed error
/// within the deadline, and the survivor must keep serving.
fn chaos() {
    let opts = RpcOptions::with_deadline(Duration::from_millis(800));
    let deadline = opts.deadline;
    let spec = ClusterSpec::new().with_job("chaos", 2).expect("job");
    let cluster = Cluster::start_with(&spec, TransportKind::Tcp, opts).expect("chaos cluster");
    let d0 = "/job:chaos/task:0/device:CPU:0";
    let d1 = "/job:chaos/task:1/device:CPU:0";
    let x = api::scalar(3.0f32);
    let resident = cluster
        .execute(d0, "identity", &[RemoteArg::from(&x)], Attrs::new())
        .expect("place resident tensor")
        .into_iter()
        .next()
        .expect("one output");

    cluster.kill_worker(d0).expect("kill");

    let started = Instant::now();
    let results: Vec<Result<(), DistError>> = vec![
        cluster.execute(d0, "square", &[RemoteArg::from(&x)], Attrs::new()).map(|_| ()),
        cluster.call_function(d0, "smoke_no_such_fn", &[]).map(|_| ()),
        resident.fetch().map(|_| ()),
        cluster.ping(d0),
    ];
    let elapsed = started.elapsed();
    for r in results {
        match r {
            Err(DistError::Timeout { .. }) | Err(DistError::ConnectionLost { .. }) => {}
            other => panic!("dead worker must yield a typed transport error, got {other:?}"),
        }
    }
    assert!(
        elapsed < deadline * 4 + Duration::from_secs(2),
        "typed errors took {elapsed:?} — deadlines are not being enforced"
    );

    let out =
        cluster.execute(d1, "square", &[RemoteArg::from(&x)], Attrs::new()).expect("survivor");
    assert_eq!(out[0].fetch().expect("fetch").scalar_f64().expect("scalar"), 9.0);
    drop(resident);
    cluster.shutdown();
    println!(
        "dist smoke: killed worker surfaced typed errors on all 4 RPC paths in {elapsed:?} \
         (deadline {deadline:?}); survivor kept serving"
    );
}

fn main() {
    tfe_core::init();
    let ps_ns = train_parity(
        "ps",
        Reduction::ParameterServer { ps_device: "/job:ps/task:0/device:CPU:0".to_string() },
    );
    let ring_ns = train_parity("ring", Reduction::Ring);
    reconcile_metrics();
    chaos();
    println!(
        "dist smoke: OK (TCP 2-worker step: ps {:.1} ms, ring {:.1} ms)",
        ps_ns / 1e6,
        ring_ns / 1e6
    );
}
