//! Profiler smoke test, run by `scripts/ci.sh`:
//!
//! 1. Asserts the *disabled* profiler costs < 2% of an eager op dispatch —
//!    the fast path is one relaxed atomic load, and this keeps it honest.
//! 2. Enables profiling, runs two staged training steps under the parallel
//!    executor, writes the chrome trace, and validates the output: the JSON
//!    parses, `X` spans land on at least two thread rows, spans on each
//!    thread strictly nest or are disjoint (never partially overlap), and
//!    the trace-cache instants show one miss (step 1) and one hit (step 2).
//!
//! Exits non-zero (panics) on any violation.

use std::sync::Arc;
use tfe_autodiff::GradientTape;
use tfe_core::{function, Arg};
use tfe_nn::{optimizer, Adam};
use tfe_runtime::{api, context, ExecMode, Variable};
use tfe_tensor::{Shape, TensorData};

const DIM: usize = 128;
const BRANCHES: usize = 4;

fn vals(n: usize, scale: f64) -> Vec<f64> {
    (0..n).map(|i| ((i % 13) as f64 - 6.0) * scale).collect()
}

/// Per-call cost of `f` in nanoseconds.
fn per_call_ns(iters: usize, f: impl Fn()) -> f64 {
    let t = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

fn check_disabled_overhead() {
    assert!(!tfe_profile::enabled(), "profiler must start disabled");
    // The entire disabled-path cost: the branch every probe site pays.
    let probe_ns = per_call_ns(4_000_000, || {
        std::hint::black_box(tfe_profile::enabled());
    });
    // A cheap eager dispatch for scale: scalar add.
    let a = api::scalar(1.0f64);
    let b = api::scalar(2.0f64);
    let dispatch_ns = per_call_ns(20_000, || {
        std::hint::black_box(api::add(&a, &b).expect("add"));
    });
    let ratio = probe_ns / dispatch_ns;
    eprintln!(
        "disabled probe: {probe_ns:.2} ns/call, eager dispatch: {dispatch_ns:.0} ns/op \
         ({:.4}% overhead)",
        ratio * 100.0
    );
    assert!(
        ratio < 0.02,
        "disabled profiler costs {:.3}% of an op dispatch (budget: 2%)",
        ratio * 100.0
    );
}

/// Stage a training step with `BRANCHES` independent matmul towers so the
/// parallel scheduler has real inter-op work to fan out.
fn staged_train_step(weights: &[Variable]) -> tfe_core::Func {
    let vars = weights.to_vec();
    let opt = Arc::new(Adam::new(1e-3));
    function("profiler_smoke_step", move |args: &[Arg]| {
        let x = args[0].as_tensor().expect("x");
        let tape = GradientTape::new();
        let mut total = api::scalar(0.0f64);
        for w in &vars {
            let y = api::matmul(x, &w.read()?)?;
            let y = api::square(&y)?;
            total = api::add(&total, &api::reduce_mean(&y, &[], false)?)?;
        }
        optimizer::minimize(opt.as_ref(), tape, &total, &vars)?;
        Ok(vec![total])
    })
}

/// Chrome-trace span: ts/dur in microseconds.
struct SpanEvt {
    ts: f64,
    dur: f64,
}

fn validate_trace(path: &str) {
    let text = std::fs::read_to_string(path).expect("read trace file");
    let root = tfe_encode::Value::parse(&text).expect("chrome trace JSON must parse");
    let events = root
        .get("traceEvents")
        .and_then(tfe_encode::Value::as_array)
        .expect("traceEvents array missing");

    let mut by_tid: std::collections::BTreeMap<i64, Vec<SpanEvt>> = Default::default();
    let mut instants = Vec::new();
    for e in events {
        match e.get("ph").and_then(tfe_encode::Value::as_str) {
            Some("X") => {
                let tid =
                    e.get("tid").and_then(tfe_encode::Value::as_i64).expect("X event needs tid");
                let ts = e.get("ts").and_then(tfe_encode::Value::as_f64).expect("X event needs ts");
                let dur =
                    e.get("dur").and_then(tfe_encode::Value::as_f64).expect("X event needs dur");
                by_tid.entry(tid).or_default().push(SpanEvt { ts, dur });
            }
            Some("i") => {
                if let Some(name) = e.get("name").and_then(tfe_encode::Value::as_str) {
                    instants.push(name.to_string());
                }
            }
            _ => {}
        }
    }

    let rows_with_spans = by_tid.values().filter(|v| !v.is_empty()).count();
    assert!(
        rows_with_spans >= 2,
        "parallel run must place spans on >= 2 thread rows, got {rows_with_spans}"
    );

    // Per-thread nesting: after sorting by start, every span either nests
    // inside the enclosing open span or starts after it ends. Partial
    // overlap means broken span bookkeeping. Tolerance covers the ns -> us
    // float conversion.
    const EPS: f64 = 0.002;
    for (tid, spans) in &mut by_tid {
        spans.sort_by(|a, b| a.ts.total_cmp(&b.ts).then(b.dur.total_cmp(&a.dur)));
        let mut stack: Vec<f64> = Vec::new(); // open-span end times
        for s in spans.iter() {
            while let Some(&end) = stack.last() {
                if s.ts >= end - EPS {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&end) = stack.last() {
                assert!(
                    s.ts + s.dur <= end + EPS,
                    "tid {tid}: span [{}, {}] partially overlaps enclosing span ending at {end}",
                    s.ts,
                    s.ts + s.dur
                );
            }
            stack.push(s.ts + s.dur);
        }
    }

    let hits = instants.iter().filter(|n| n.starts_with("cache_hit")).count();
    let misses = instants.iter().filter(|n| n.starts_with("cache_miss")).count();
    assert!(misses >= 1, "step 1 must record a trace-cache miss");
    assert!(hits >= 1, "step 2 must record a trace-cache hit");

    let total_spans: usize = by_tid.values().map(Vec::len).sum();
    eprintln!(
        "trace ok: {total_spans} spans across {rows_with_spans} thread rows, \
         {misses} cache miss(es), {hits} cache hit(s)"
    );
}

fn main() {
    // Before anything touches the worker pool: guarantee multiple workers
    // even on a single-core CI box.
    std::env::set_var("TFE_NUM_THREADS", "4");
    tfe_core::init();

    check_disabled_overhead();

    let weights: Vec<Variable> = (0..BRANCHES)
        .map(|i| {
            Variable::new(
                TensorData::from_vec(
                    vals(DIM * DIM, 1e-3 * (i + 1) as f64),
                    Shape::from([DIM, DIM]),
                )
                .unwrap(),
            )
        })
        .collect();
    let step = staged_train_step(&weights);
    let x = tfe_runtime::Tensor::from_data(
        TensorData::from_vec(vals(DIM * DIM, 1e-2), Shape::from([DIM, DIM])).unwrap(),
    );

    let prev = context::set_exec_mode(ExecMode::Parallel);
    tfe_profile::start();
    for s in 0..2 {
        let loss = step.call(&[Arg::from(&x)]).expect("train step").remove(0);
        let loss = loss.scalar_f64().expect("loss value");
        assert!(loss.is_finite(), "step {s} loss must be finite");
    }
    let profile = tfe_profile::stop();
    context::set_exec_mode(prev);

    let path = std::env::temp_dir().join("tfe_profiler_smoke_trace.json");
    let path = path.to_string_lossy().to_string();
    profile.write_chrome_trace(&path).expect("write chrome trace");
    let summary = profile.summary();
    eprintln!("{summary}");
    assert!(summary.aborts == 0, "clean run must not record aborts");
    assert!(
        summary.ops.iter().any(|o| o.cat == "kernel" && o.name == "matmul"),
        "summary must contain matmul kernel rows"
    );

    validate_trace(&path);
    std::fs::remove_file(&path).ok();
    println!("profiler smoke: ok");
}
