//! Runs the complete §6 evaluation — Figure 3, Table 1, Figure 4 — and
//! writes one consolidated `experiments.json` next to the per-experiment
//! text output. Accepts `--quick` (reduced protocol) and `--tiny`
//! (miniature ResNet).
//!
//! `cargo run --release -p tfe-bench --bin all_experiments`

use tfe_bench::calibrate;
use tfe_bench::harness::{measure, render_table, sim_device, ExecutionConfig, Measurement};
use tfe_bench::workloads::{L2hmcWorkload, ResnetWorkload};
use tfe_device::KernelMode;
use tfe_encode::Value;

fn main() {
    tfe_core::init();
    let tiny = std::env::args().any(|a| a == "--tiny");
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, runs, iters) = if tiny || quick { (2, 1, 3) } else { (2, 3, 10) };
    let mut report: Vec<Value> = Vec::new();

    // ---- Figure 3 + Table 1 share the ResNet workload --------------------
    eprintln!("building {} ...", if tiny { "tiny ResNet" } else { "ResNet-50" });
    let resnet = if tiny { ResnetWorkload::tiny() } else { ResnetWorkload::resnet50() };
    let batches: &[usize] = &[1, 2, 4, 8, 16, 32];

    let fig3 = calibrate::figure3_gpu();
    let gpu = sim_device("/gpu:0", &fig3, KernelMode::CostOnly);
    let mut rows: Vec<Measurement> = Vec::new();
    for &batch in batches {
        let (x, y) = resnet.batch(batch).expect("inputs");
        for config in [ExecutionConfig::Eager, ExecutionConfig::Staged, ExecutionConfig::GraphMode]
        {
            eprintln!("figure3 batch {batch:>2} {}", config.label());
            rows.push(
                measure(config, &fig3, &gpu, batch, warmup, runs, iters, || match config {
                    ExecutionConfig::Eager => resnet.eager_step(&x, &y),
                    _ => resnet.staged_step(&x, &y),
                })
                .expect("figure3"),
            );
        }
    }
    println!("{}", render_table("Figure 3: ResNet-50 on GPU (examples/sec)", batches, &rows));
    report.push(tfe_bench::harness::to_json("figure3", &rows));

    let tab1 = calibrate::table1_tpu();
    let tpu = sim_device("/tpu:0", &tab1, KernelMode::CostOnly);
    let mut rows: Vec<Measurement> = Vec::new();
    for &batch in batches {
        let (x, y) = resnet.batch(batch).expect("inputs");
        for config in [ExecutionConfig::Eager, ExecutionConfig::Staged] {
            eprintln!("table1 batch {batch:>2} {}", config.label());
            rows.push(
                measure(config, &tab1, &tpu, batch, warmup, runs, iters, || match config {
                    ExecutionConfig::Eager => resnet.eager_step(&x, &y),
                    _ => resnet.staged_step(&x, &y),
                })
                .expect("table1"),
            );
        }
    }
    println!("{}", render_table("Table 1: ResNet-50 on TPU (examples/sec)", batches, &rows));
    report.push(tfe_bench::harness::to_json("table1", &rows));

    // ---- Figure 4 -----------------------------------------------------------
    let fig4 = calibrate::figure4_cpu();
    let cpu = sim_device("/job:localhost/task:0/device:CPU:1", &fig4, KernelMode::Simulated);
    let l2hmc = if quick || tiny { L2hmcWorkload::new(2, 4) } else { L2hmcWorkload::paper() };
    let samples: &[usize] = &[10, 25, 50, 100, 200];
    let mut rows: Vec<Measurement> = Vec::new();
    for &n in samples {
        let x = l2hmc.chain(n);
        for config in [ExecutionConfig::Eager, ExecutionConfig::Staged, ExecutionConfig::GraphMode]
        {
            eprintln!("figure4 samples {n:>3} {}", config.label());
            rows.push(
                measure(config, &fig4, &cpu, n, warmup, runs, iters, || match config {
                    ExecutionConfig::Eager => l2hmc.eager_step(&x),
                    _ => l2hmc.staged_step(&x),
                })
                .expect("figure4"),
            );
        }
    }
    println!("{}", render_table("Figure 4: L2HMC on CPU (examples/sec)", samples, &rows));
    report.push(tfe_bench::harness::to_json("figure4", &rows));

    let out = Value::Array(report);
    std::fs::write("experiments.json", out.to_json_pretty()).ok();
    eprintln!("wrote experiments.json");
}
