//! Serving smoke gate: spin up the model registry with a SavedFunction
//! bundle behind the adaptive micro-batcher, fire concurrent clients at
//! it, and validate the serving layer end to end — every response matches
//! the direct staged call bitwise, the batcher actually coalesced (mean
//! batch rows > 1 in the `tfe_serve_batch_rows` family), every request is
//! accounted for in the metric families, and nothing errored or hung.
//!
//! Run with `cargo run --release -p tfe-bench --bin serving_smoke`.
//! Set `TFE_PROFILE=/tmp/serve.json` to additionally export a chrome
//! trace of the serve layer: named thread rows plus one causal flow arc
//! per request, and a per-trace latency report printed for one request.

use std::sync::{Arc, Barrier};
use std::time::Duration;
use tfe_core::{function1, TensorSpec};
use tfe_metrics::SampleValue;
use tfe_runtime::{api, Tensor};
use tfe_serve::{BatchPolicy, Dispatch, ModelRegistry};
use tfe_state::saved;
use tfe_tensor::DType;

const D: usize = 16;
const CONCURRENCY: usize = 8;
const REQS_PER_CLIENT: usize = 40;
const MODEL: &str = "smoke_mlp";

fn example(i: usize) -> Tensor {
    let vals: Vec<f32> = (0..D).map(|j| ((i * 5 + j * 3) % 11) as f32 * 0.31 - 1.2).collect();
    api::constant(vals, [1, D]).expect("example")
}

fn main() {
    tfe_core::init();

    // Opt-in serve-layer trace: TFE_PROFILE names the chrome-trace path.
    let trace_path = tfe_profile::env_trace_path();
    if trace_path.is_some() {
        tfe_profile::start();
    }

    // A small MLP traced with a dynamic leading dimension, shipped through
    // the SavedFunction exporter/importer so the smoke covers the
    // production path: serve a bundle, not a live tracer object.
    let f = function1("smoke_mlp_src", |x| {
        let w = api::constant(
            (0..D * D).map(|i| ((i % 7) as f32 - 3.0) * 0.11).collect::<Vec<f32>>(),
            [D, D],
        )?;
        let b = api::constant(vec![0.02f32; D], [D])?;
        api::softmax(&api::relu(&api::add(&api::matmul(x, &w)?, &b)?)?)
    })
    .with_input_signature(vec![TensorSpec::new(DType::F32, vec![None, Some(D)])]);
    let probe = example(0);
    let conc = f.concrete_for(&[tfe_core::Arg::from(&probe)]).expect("trace");
    let bundle = saved::export_to_value(&conc).expect("export");
    let loaded = saved::import_from_value(&bundle).expect("import");

    let registry = Arc::new(ModelRegistry::new());
    registry
        .register_with(
            MODEL,
            1,
            loaded,
            BatchPolicy {
                max_batch: CONCURRENCY,
                budget: Duration::from_millis(5),
                ewma_alpha: 0.25,
                dispatch: Dispatch::Inherit,
            },
        )
        .expect("register");

    // Concurrent clients; each checks its own responses against the direct
    // staged call.
    let barrier = Arc::new(Barrier::new(CONCURRENCY));
    let handles: Vec<_> = (0..CONCURRENCY)
        .map(|c| {
            let registry = Arc::clone(&registry);
            let f = f.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for r in 0..REQS_PER_CLIENT {
                    let i = c * REQS_PER_CLIENT + r;
                    let x = example(i);
                    let got =
                        registry.infer(MODEL, &[&x]).expect("infer")[0].to_f64_vec().expect("row");
                    let want = f.call_tensors(&[&x]).expect("direct")[0].to_f64_vec().expect("row");
                    assert_eq!(got, want, "request {i} diverged from the direct staged call");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    // The metric families must account for every request.
    let label = format!("{MODEL}@v1");
    let total = (CONCURRENCY * REQS_PER_CLIENT) as u64;
    let snap = tfe_metrics::snapshot();
    let counter = |name: &str| snap.counter_with(name, &label).unwrap_or(0);
    let histogram = |name: &str| {
        snap.family(name)
            .and_then(|fam| {
                fam.samples
                    .iter()
                    .find(|s| s.label.as_ref().is_some_and(|(_, v)| *v == label))
                    .and_then(|s| match &s.value {
                        SampleValue::Histogram(h) => Some(h.clone()),
                        _ => None,
                    })
            })
            .unwrap_or_else(|| panic!("no {name} series for {label}"))
    };

    // Probe request (1) + client requests.
    let requests = counter("tfe_serve_requests_total");
    assert!(requests >= total, "requests_total {requests} < {total} issued");
    assert_eq!(counter("tfe_serve_errors_total"), 0, "no request may fail");
    let batches = counter("tfe_serve_batches_total");
    assert!(batches > 0, "no staged calls recorded");
    assert!(
        batches < requests,
        "batcher never coalesced: {batches} staged calls for {requests} requests"
    );
    let rows = histogram("tfe_serve_batch_rows");
    assert_eq!(rows.sum, requests, "coalesced rows must equal accepted requests");
    assert!(
        rows.mean() > 1.5,
        "mean batch size {:.2} rows — expected real coalescing at concurrency {CONCURRENCY}",
        rows.mean()
    );
    let latency = histogram("tfe_serve_request_latency_ns");
    assert_eq!(latency.count, requests, "every request must observe its latency");
    let exec = histogram("tfe_serve_batch_exec_ns");
    assert_eq!(exec.count, batches, "every staged call must observe its execution time");
    assert!(registry.unregister(MODEL), "unregister must find the model");

    if let Some(path) = &trace_path {
        let profile = tfe_profile::stop();
        profile.write_chrome_trace(path).expect("write chrome trace");
        if let Some(id) = profile.trace_ids().first() {
            if let Some(report) = profile.trace_report(*id) {
                println!("{report}");
            }
        }
        println!("chrome trace written to {path}");
    }

    println!(
        "serving smoke: {requests} requests in {batches} staged calls \
         (mean batch {:.1} rows, p99 latency {} ns, est exec {} ns)",
        rows.mean(),
        latency.quantile(0.99).unwrap_or(0),
        exec.mean() as u64,
    );
}
