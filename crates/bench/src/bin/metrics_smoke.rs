//! Metrics smoke test, run by `scripts/ci.sh`:
//!
//! 1. Asserts a counter bump costs < 5 ns per probe — the always-on budget
//!    that lets every dispatch, trace lookup, and pool job be instrumented
//!    unconditionally.
//! 2. Trains a staged model briefly, scrapes the registry twice, and
//!    validates: the Prometheus text exposition parses line by line,
//!    histograms are internally consistent (cumulative buckets, +Inf ==
//!    count), no counter ever decreases between the two scrapes, and
//!    `tfe_trace_cache_retraces_total` stays flat during steady-state
//!    training (the signature never changes after warmup).
//!
//! Exits non-zero (panics) on any violation.

use std::collections::HashMap;
use std::sync::Arc;
use tfe_autodiff::GradientTape;
use tfe_core::{function, Arg};
use tfe_metrics::{MetricKind, SampleValue, Snapshot};
use tfe_nn::{optimizer, Sgd};
use tfe_runtime::{api, Variable};
use tfe_tensor::{Shape, TensorData};

const DIM: usize = 32;

fn vals(n: usize, scale: f64) -> Vec<f64> {
    (0..n).map(|i| ((i % 13) as f64 - 6.0) * scale).collect()
}

/// Per-call cost of `f` in nanoseconds.
fn per_call_ns(iters: usize, f: impl Fn()) -> f64 {
    let t = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

fn check_probe_overhead() {
    // Floor: a bare relaxed fetch_add — the cost any counter must pay,
    // set by the hardware (6-7 ns on CI-class virtualized boxes).
    static RAW: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let raw_ns = per_call_ns(8_000_000, || {
        RAW.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    });
    // The exact expansion every instrumented hot path uses: a OnceLock
    // handle lookup plus that same relaxed fetch_add. The registry's own
    // overhead is the difference, and that is what the 5 ns always-on
    // budget bounds.
    let probe_ns = per_call_ns(8_000_000, || {
        tfe_metrics::static_counter!("tfe_smoke_probe_total", "overhead probe").inc();
    });
    let overhead = (probe_ns - raw_ns).max(0.0);
    eprintln!(
        "counter bump: {probe_ns:.2} ns/probe (raw fetch_add {raw_ns:.2} ns, \
         registry overhead {overhead:.2} ns, budget 5 ns)"
    );
    assert!(
        overhead < 5.0,
        "registry adds {overhead:.2} ns over a bare atomic increment (budget: 5 ns)"
    );
    assert!(probe_ns < 25.0, "counter bump absurdly slow: {probe_ns:.2} ns/probe");
    std::hint::black_box(RAW.load(std::sync::atomic::Ordering::Relaxed));
}

/// Flatten a snapshot's counters (including labeled children and histogram
/// counts, which are counters too) into comparable series.
fn counter_series(s: &Snapshot) -> HashMap<String, u64> {
    let mut out = HashMap::new();
    for fam in &s.families {
        for sample in &fam.samples {
            let key = match &sample.label {
                Some((_, v)) => format!("{}{{{v}}}", fam.name),
                None => fam.name.to_string(),
            };
            match &sample.value {
                SampleValue::Counter(v) => {
                    out.insert(key, *v);
                }
                SampleValue::Histogram(h) => {
                    out.insert(format!("{key}_count"), h.count);
                    out.insert(format!("{key}_sum"), h.sum);
                }
                SampleValue::Gauge(_) => {} // gauges may legitimately fall
            }
        }
    }
    out
}

/// Line-by-line validation of the Prometheus text exposition format.
fn validate_prometheus_text(text: &str) {
    let mut samples = 0usize;
    let mut typed: HashMap<String, String> = HashMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE line needs a name");
            let kind = parts.next().expect("TYPE line needs a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE `{kind}` for `{name}`"
            );
            typed.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with("# HELP ") {
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment line: {line}");
        // Sample line: `name value` or `name{label="v"} value`.
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line has no value: {line}");
        });
        value.parse::<f64>().unwrap_or_else(|_| {
            panic!("sample value does not parse as a float: {line}");
        });
        let base = series.split('{').next().unwrap();
        let declared = typed.keys().any(|n| {
            base == n
                || base == format!("{n}_bucket")
                || base == format!("{n}_sum")
                || base == format!("{n}_count")
        });
        assert!(declared, "sample `{base}` appears before any TYPE declaration");
        samples += 1;
    }
    assert!(samples > 10, "suspiciously few samples in the exposition: {samples}");
    eprintln!("prometheus text ok: {samples} samples, {} families", typed.len());
}

/// Histogram internal consistency on the snapshot form.
fn validate_histograms(s: &Snapshot) {
    for fam in &s.families {
        if fam.kind != MetricKind::Histogram {
            continue;
        }
        for sample in &fam.samples {
            let SampleValue::Histogram(h) = &sample.value else { continue };
            assert_eq!(
                h.count,
                h.counts.iter().sum::<u64>(),
                "{}: count disagrees with bucket sum",
                fam.name
            );
            assert_eq!(h.counts.len(), h.bounds.len() + 1, "{}: bucket arity", fam.name);
        }
    }
}

fn train_steps(step: &tfe_core::Func, x: &tfe_runtime::Tensor, n: usize) {
    for _ in 0..n {
        let loss = step.call(&[Arg::from(x)]).expect("train step").remove(0);
        assert!(loss.scalar_f64().expect("loss").is_finite());
    }
}

fn main() {
    // Exercise the opt-in retrace warning path: with the threshold at 1,
    // the forced retrace below prints a diagnosis to stderr (visible in CI
    // logs; stdout is what ci.sh discards).
    std::env::set_var("TFE_LOG_RETRACES", "1");
    tfe_core::init();
    check_probe_overhead();

    let shapes = function("smoke_shapes", |args: &[Arg]| {
        Ok(vec![api::relu(args[0].as_tensor().expect("tensor"))?])
    });
    shapes.call(&[Arg::from(&api::zeros(tfe_tensor::DType::F64, [4]))]).expect("first");
    shapes.call(&[Arg::from(&api::zeros(tfe_tensor::DType::F64, [8]))]).expect("second");
    assert_eq!(shapes.stats().retraces, 1);
    let report = shapes.retrace_report();
    assert!(report.contains("arg 0: shape [4] → [8]"), "bad retrace report:\n{report}");

    let w = Variable::new(
        TensorData::from_vec(vals(DIM * DIM, 1e-3), Shape::from([DIM, DIM])).unwrap(),
    );
    let opt = Arc::new(Sgd::new(1e-3));
    let step = {
        let w = w.clone();
        function("metrics_smoke_step", move |args: &[Arg]| {
            let x = args[0].as_tensor().expect("x");
            let tape = GradientTape::new();
            let y = api::matmul(x, &w.read()?)?;
            let loss = api::reduce_mean(&api::square(&y)?, &[], false)?;
            optimizer::minimize(opt.as_ref(), tape, &loss, std::slice::from_ref(&w))?;
            Ok(vec![loss])
        })
    };
    let x = tfe_runtime::Tensor::from_data(
        TensorData::from_vec(vals(DIM * DIM, 1e-2), Shape::from([DIM, DIM])).unwrap(),
    );

    // Warmup (traces once), then the first scrape.
    train_steps(&step, &x, 3);
    let s1 = tfe_metrics::snapshot();
    validate_prometheus_text(&s1.to_prometheus_text());
    validate_histograms(&s1);

    // Steady state: more identical-signature steps, then the second scrape.
    train_steps(&step, &x, 10);
    let s2 = tfe_metrics::snapshot();
    validate_histograms(&s2);

    let c1 = counter_series(&s1);
    let c2 = counter_series(&s2);
    for (name, v1) in &c1 {
        let v2 = c2.get(name).unwrap_or_else(|| {
            panic!("counter `{name}` disappeared between scrapes");
        });
        assert!(v2 >= v1, "counter `{name}` decreased: {v1} -> {v2}");
    }

    let retraces = |s: &Snapshot| s.counter_value("tfe_trace_cache_retraces_total").unwrap_or(0);
    assert_eq!(
        retraces(&s1),
        retraces(&s2),
        "steady-state training must not retrace (signature never changed)"
    );
    assert_eq!(step.stats().retraces, 0, "the smoke step itself must never retrace");
    // Staged steps run through the graph executor, so its node counter
    // must have advanced between the scrapes.
    assert!(
        c2["tfe_executor_nodes_run_total"] > c1["tfe_executor_nodes_run_total"],
        "training must execute graph nodes"
    );

    println!("metrics smoke: ok");
}
