//! Wall-clock micro-benchmarks for the intra-op parallel kernel layer:
//! each kernel is timed twice — pinned to one intra-op thread (serial
//! baseline) and with the full worker pool — and the ratio is the
//! intra-op speedup. Results land in `BENCH_kernels.json`.
//!
//! Run with `cargo run --release -p tfe-bench --bin kernel_bench`
//! (add `--quick` for a smoke run with fewer iterations). Set
//! `TFE_PROFILE=trace.json` to additionally record an op-level profile of
//! the benchmark run: a chrome://tracing timeline at that path, plus a
//! metrics summary printed to stderr and embedded in `BENCH_kernels.json`.

use std::time::Instant;

use tfe_parallel::{intra_threads, set_intra_threads};
use tfe_tensor::elementwise::{binary, BinaryOp};
use tfe_tensor::reduce::{reduce, ReduceOp};
use tfe_tensor::{conv, matmul, softmax, Shape, TensorData};

/// One benchmarked kernel invocation.
struct Case {
    /// Identifier used in the report and JSON rows.
    name: &'static str,
    /// Human-readable shape summary.
    shape: String,
    /// The kernel call being timed.
    run: Box<dyn Fn()>,
    /// The seed implementation of the same kernel (pre-blocking naive
    /// loop), when one is kept around as a reference; timed to record the
    /// speedup of the cache-blocked layer independent of threading.
    seed: Option<Box<dyn Fn()>>,
}

fn f32_tensor(dims: &[usize]) -> TensorData {
    let n: usize = dims.iter().product();
    // Deterministic, non-trivial values; avoids denormals.
    let v: Vec<f32> = (0..n).map(|i| ((i % 97) as f32 - 48.0) * 0.125).collect();
    TensorData::from_vec(v, Shape::new(dims.to_vec())).expect("f32 tensor")
}

fn cases() -> Vec<Case> {
    let mut out = Vec::new();

    for (m, k, n) in [(512usize, 512usize, 512usize), (192, 192, 192), (64, 64, 64)] {
        let a = f32_tensor(&[m, k]);
        let b = f32_tensor(&[k, n]);
        let (ar, br) = (a.clone(), b.clone());
        out.push(Case {
            name: match m {
                512 => "matmul_512",
                192 => "matmul_192",
                _ => "matmul_64",
            },
            shape: format!("({m}x{k})x({k}x{n}) f32"),
            run: Box::new(move || {
                matmul::matmul(&a, &b, false, false).expect("matmul");
            }),
            seed: Some(Box::new(move || {
                let mut out = vec![0.0f32; m * n];
                matmul::matmul_reference(
                    ar.as_slice::<f32>().unwrap(),
                    br.as_slice::<f32>().unwrap(),
                    m,
                    k,
                    n,
                    false,
                    false,
                    &mut out,
                );
            })),
        });
    }

    {
        let a = f32_tensor(&[512, 256]);
        let b = f32_tensor(&[512, 256]);
        let (ar, br) = (a.clone(), b.clone());
        out.push(Case {
            name: "matmul_tn_512x256",
            shape: "(512x256)^T x (512x256) f32".to_string(),
            run: Box::new(move || {
                matmul::matmul(&a, &b, true, false).expect("matmul_tn");
            }),
            seed: Some(Box::new(move || {
                let mut out = vec![0.0f32; 256 * 256];
                matmul::matmul_reference(
                    ar.as_slice::<f32>().unwrap(),
                    br.as_slice::<f32>().unwrap(),
                    256,
                    512,
                    256,
                    true,
                    false,
                    &mut out,
                );
            })),
        });
    }

    {
        let x = f32_tensor(&[8, 32, 32, 16]);
        let f = f32_tensor(&[3, 3, 16, 32]);
        let (xr, fr) = (x.clone(), f.clone());
        let g = conv::conv2d_geometry(x.shape(), f.shape(), (1, 1), conv::Padding::Same)
            .expect("conv geometry");
        out.push(Case {
            name: "conv2d_8x32x32x16_k3x3x32",
            shape: "NHWC 8x32x32x16, HWIO 3x3x16x32, same".to_string(),
            run: Box::new(move || {
                conv::conv2d(&x, &f, (1, 1), conv::Padding::Same).expect("conv2d");
            }),
            seed: Some(Box::new(move || {
                conv::conv2d_reference(
                    xr.as_slice::<f32>().unwrap(),
                    fr.as_slice::<f32>().unwrap(),
                    &g,
                );
            })),
        });
    }

    {
        let a = f32_tensor(&[1 << 20]);
        out.push(Case {
            name: "reduce_sum_1m",
            shape: "1048576 f32, all axes".to_string(),
            run: Box::new(move || {
                reduce(&a, &[], false, ReduceOp::Sum).expect("reduce");
            }),
            seed: None,
        });
    }

    {
        let a = f32_tensor(&[2048, 512]);
        out.push(Case {
            name: "reduce_sum_rows_2048x512",
            shape: "2048x512 f32, axis 1".to_string(),
            run: Box::new(move || {
                reduce(&a, &[1], false, ReduceOp::Sum).expect("reduce rows");
            }),
            seed: None,
        });
    }

    {
        let a = f32_tensor(&[256, 1024]);
        out.push(Case {
            name: "softmax_256x1024",
            shape: "256x1024 f32".to_string(),
            run: Box::new(move || {
                softmax::softmax(&a).expect("softmax");
            }),
            seed: None,
        });
    }

    {
        let a = f32_tensor(&[1 << 20]);
        let b = f32_tensor(&[1 << 20]);
        out.push(Case {
            name: "add_1m",
            shape: "1048576 f32".to_string(),
            run: Box::new(move || {
                binary(&a, &b, BinaryOp::Add).expect("add");
            }),
            seed: None,
        });
    }

    {
        let a = f32_tensor(&[256, 1, 512]);
        let b = f32_tensor(&[1, 64, 512]);
        out.push(Case {
            name: "mul_broadcast_256x64x512",
            shape: "(256x1x512) * (1x64x512) f32".to_string(),
            run: Box::new(move || {
                binary(&a, &b, BinaryOp::Mul).expect("broadcast mul");
            }),
            seed: None,
        });
    }

    out
}

/// Fused-elementwise executor: a 10-op f32 chain over 1M elements, timed
/// three ways — unfused (one eager kernel per op, ten passes over memory),
/// fused-interpreted (the pre-tile register interpreter, still one
/// materialized buffer per instruction), and fused-tiled (the compiled
/// tile executor: one pass over memory in cache-resident tiles). All three
/// must agree bitwise before anything is timed. The row also records the
/// one-time decode+compile cost next to the steady-state compile-cache hit,
/// documenting that the per-call program parse is gone.
fn bench_fused_chain(iters: usize, reps: usize) -> tfe_encode::Value {
    use tfe_graph::program::{self, Program};
    use tfe_tensor::elementwise::{unary, UnaryOp};

    const N: usize = 1 << 20;
    let text = "in:0;in:1;b:mul:0:1;b:add:2:1;u:abs:3;u:neg:4;b:add:5:0;\
                u:relu:6;b:sub:7:1;u:square:8;b:maximum:9:0;u:neg:10|11";
    let a = f32_tensor(&[N]);
    let b = {
        let v: Vec<f32> = (0..N).map(|i| ((i % 89) as f32 - 44.0) * 0.25).collect();
        TensorData::from_vec(v, Shape::new(vec![N])).expect("b tensor")
    };

    let compiled = program::compiled(text).expect("fused chain compiles");
    let ops = compiled.op_count();

    let unfused = {
        let (a, b) = (a.clone(), b.clone());
        move || -> TensorData {
            let t = binary(&a, &b, BinaryOp::Mul).unwrap();
            let t = binary(&t, &b, BinaryOp::Add).unwrap();
            let t = unary(&t, UnaryOp::Abs).unwrap();
            let t = unary(&t, UnaryOp::Neg).unwrap();
            let t = binary(&t, &a, BinaryOp::Add).unwrap();
            let t = unary(&t, UnaryOp::Relu).unwrap();
            let t = binary(&t, &b, BinaryOp::Sub).unwrap();
            let t = unary(&t, UnaryOp::Square).unwrap();
            let t = binary(&t, &a, BinaryOp::Maximum).unwrap();
            unary(&t, UnaryOp::Neg).unwrap()
        }
    };

    // Bitwise agreement across all three executors before timing any.
    let bits = |t: &TensorData| -> Vec<u32> {
        t.as_slice::<f32>().unwrap().iter().map(|x| x.to_bits()).collect()
    };
    let want = bits(&unfused());
    let tiled_out = compiled.eval(&[&a, &b]).expect("tiled eval");
    assert_eq!(want, bits(&tiled_out), "fused-tiled must match the unfused chain bitwise");
    let prev = program::set_force_interpreted(true);
    let interp_out = compiled.eval(&[&a, &b]).expect("interpreted eval");
    program::set_force_interpreted(prev);
    assert_eq!(want, bits(&interp_out), "fused-interpreted must match bitwise");

    let unfused_ns = time_ns(iters, reps, &|| {
        unfused();
    });
    let prev = program::set_force_interpreted(true);
    let interp_ns = time_ns(iters, reps, &|| {
        compiled.eval(&[&a, &b]).expect("interpreted eval");
    });
    program::set_force_interpreted(prev);
    let tiled_ns = time_ns(iters, reps, &|| {
        compiled.eval(&[&a, &b]).expect("tiled eval");
    });

    // What satellite work removed from every call: the string parse +
    // register planning now happen once, and the hot path is a read-locked
    // map hit on the encoded text.
    let decode_ns = time_ns(iters.max(100), reps, &|| {
        Program::decode(text).expect("decode").compile();
    });
    let hit_ns = time_ns(iters.max(100), reps, &|| {
        program::compiled(text).expect("cache hit");
    });

    let vs_unfused = unfused_ns / tiled_ns;
    let vs_interp = interp_ns / tiled_ns;
    println!(
        "{:<26} {:>14.0} {:>14.0} {:>14.0} {:>7.2}x {:>7.2}x   {ops}-op chain, {N} f32 \
         (unfused / interpreted / tiled)",
        "fused_chain", unfused_ns, interp_ns, tiled_ns, vs_unfused, vs_interp
    );

    if std::env::var_os("TFE_ASSERT_FUSED").is_some() {
        assert!(
            vs_unfused >= 2.0,
            "fused-tiled must be >=2x over op-by-op on a {ops}-op {N}-element chain: \
             unfused {unfused_ns:.0} ns vs tiled {tiled_ns:.0} ns ({vs_unfused:.2}x)"
        );
        assert!(
            hit_ns < decode_ns,
            "compile-cache hit ({hit_ns:.0} ns) must be cheaper than per-call \
             decode+compile ({decode_ns:.0} ns)"
        );
        eprintln!(
            "fused chain asserted: {vs_unfused:.2}x over unfused, {vs_interp:.2}x over interpreted"
        );
    }

    tfe_encode::Value::object(vec![
        ("ops".to_string(), tfe_encode::Value::Int(ops as i64)),
        ("elements".to_string(), tfe_encode::Value::Int(N as i64)),
        ("shape".to_string(), tfe_encode::Value::str("10-op 1M-element f32 chain")),
        ("unfused_ns_per_call".to_string(), tfe_encode::Value::Float(unfused_ns)),
        ("interpreted_ns_per_call".to_string(), tfe_encode::Value::Float(interp_ns)),
        ("tiled_ns_per_call".to_string(), tfe_encode::Value::Float(tiled_ns)),
        ("tiled_speedup_vs_unfused".to_string(), tfe_encode::Value::Float(vs_unfused)),
        ("tiled_speedup_vs_interpreted".to_string(), tfe_encode::Value::Float(vs_interp)),
        ("decode_compile_ns".to_string(), tfe_encode::Value::Float(decode_ns)),
        ("compile_cache_hit_ns".to_string(), tfe_encode::Value::Float(hit_ns)),
        ("scratch_buffers".to_string(), tfe_encode::Value::Int(compiled.scratch_buffers() as i64)),
    ])
}

/// Async dispatch overlap: a ~1k-op chain of eager elementwise kernels,
/// timed once with synchronous dispatch (each kernel runs on the caller
/// before `execute` returns) and once under `async_scope` (ops enqueue on
/// the host device's dispatch stream; the final `value()` read is the only
/// sync point). With ≥2 hardware threads the async run should be faster:
/// the caller's per-op validation/shape-inference/record-keeping overlaps
/// with kernel execution on the stream thread.
fn bench_async_dispatch(iters: usize, reps: usize) -> tfe_encode::Value {
    use tfe_runtime::api;
    const OPS: usize = 1000;

    // Small enough that per-op dispatch cost is a real fraction of kernel
    // time — the regime where overlapping the two pays off.
    let x0 = api::ones(tfe_tensor::DType::F64, [32, 32]);
    let y = api::constant(vec![0.125f64; 32 * 32], [32, 32]).expect("constant");
    let chain = |x0: &tfe_runtime::Tensor| -> tfe_tensor::TensorData {
        let mut x = x0.clone();
        for _ in 0..OPS / 2 {
            x = api::tanh(&api::add(&x, &y).expect("add")).expect("tanh");
        }
        (*x.value().expect("no deferred errors")).clone()
    };

    // Bitwise agreement first — a fast benchmark that computes the wrong
    // thing is worse than no benchmark.
    let want = tfe_runtime::sync_scope(|| chain(&x0));
    let got = tfe_runtime::async_scope(|| chain(&x0)).expect("async chain");
    assert!(want.all_close(&got, 0.0, 0.0), "sync and async chains must agree bitwise");

    let sync_ns = time_ns(iters, reps, &|| {
        tfe_runtime::sync_scope(|| chain(&x0));
    });
    let async_ns = time_ns(iters, reps, &|| {
        tfe_runtime::async_scope(|| chain(&x0)).expect("async chain");
    });
    let speedup = sync_ns / async_ns;
    println!(
        "{:<26} {:>14} {:>14.0} {:>14.0} {:>7.2}x {:>8}   {} chained ops, 32x32 f64",
        "async_dispatch", "-", sync_ns, async_ns, speedup, "-", OPS
    );
    // (for this row "serial ns/op" = sync dispatch, "par ns/op" = async;
    //  both are per whole 1000-op chain, not per op)

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if std::env::var_os("TFE_ASSERT_ASYNC").is_some() {
        if cores >= 2 {
            assert!(
                async_ns < sync_ns,
                "async dispatch must overlap on {cores} cores: sync {sync_ns:.0} ns/chain \
                 vs async {async_ns:.0} ns/chain"
            );
            eprintln!("async overlap asserted: {speedup:.2}x over sync on {cores} cores");
        } else {
            eprintln!("TFE_ASSERT_ASYNC skipped: single hardware thread");
        }
    }

    tfe_encode::Value::object(vec![
        ("ops".to_string(), tfe_encode::Value::Int(OPS as i64)),
        ("shape".to_string(), tfe_encode::Value::str("32x32 f64 tanh(add) chain")),
        ("sync_ns_per_chain".to_string(), tfe_encode::Value::Float(sync_ns)),
        ("async_ns_per_chain".to_string(), tfe_encode::Value::Float(async_ns)),
        ("sync_ns_per_op".to_string(), tfe_encode::Value::Float(sync_ns / OPS as f64)),
        ("async_ns_per_op".to_string(), tfe_encode::Value::Float(async_ns / OPS as f64)),
        ("speedup".to_string(), tfe_encode::Value::Float(speedup)),
        ("cores".to_string(), tfe_encode::Value::Int(cores as i64)),
    ])
}

/// Optimized-vs-unoptimized staged step: a graph deliberately rich in
/// rewrite opportunities (identity chains, `x*1`/`x+0` constants, double
/// transposes, a transpose feeding matmul, duplicated subexpressions and
/// a static `shape_of`) is executed as traced and after the fixpoint
/// pipeline. The delta is what the pass driver buys per staged step; the
/// row also records how many sweeps the fixpoint took and how many nodes
/// it removed.
fn bench_pass_pipeline(iters: usize, reps: usize) -> tfe_encode::Value {
    use std::sync::Arc;
    use tfe_graph::passes::{self, OptimizeOptions};
    use tfe_graph::GraphBuilder;
    use tfe_ops::{Attrs, SymShape};
    use tfe_runtime::{executor, ExecMode};
    use tfe_tensor::DType;

    let dims = [32usize, 32];
    let mut b = GraphBuilder::new("bench_pass_pipeline");
    let x = b
        .placeholder(DType::F64, SymShape::known(&tfe_tensor::Shape::new(dims.to_vec())))
        .expect("placeholder");
    let mut t = x;
    // Identity-element noise: every op here is removable by the algebraic
    // pass, and every constant is CSE/prune fodder once its consumer dies.
    for _ in 0..12 {
        let one = b.constant(Arc::new(TensorData::scalar(1.0f64))).expect("const 1");
        t = b.add_node("mul", vec![t, one], Attrs::new()).expect("mul")[0];
        let zero = b.constant(Arc::new(TensorData::scalar(0.0f64))).expect("const 0");
        t = b.add_node("add", vec![t, zero], Attrs::new()).expect("add")[0];
        t = b.add_node("identity", vec![t], Attrs::new()).expect("identity")[0];
    }
    // Double transposes cancel; pairs only disappear once the inner one's
    // other consumers are gone, so this exercises the fixpoint.
    let perm = || Attrs::new().with("perm", vec![1i64, 0]);
    for _ in 0..4 {
        let inner = b.add_node("transpose", vec![t], perm()).expect("transpose")[0];
        t = b.add_node("transpose", vec![inner], perm()).expect("transpose")[0];
    }
    // Duplicate subexpressions for CSE, then a transpose absorbed into
    // the matmul as `transpose_a`.
    let u1 = b.add_node("tanh", vec![t], Attrs::new()).expect("tanh")[0];
    let u2 = b.add_node("tanh", vec![t], Attrs::new()).expect("tanh")[0];
    let s = b.add_node("add", vec![u1, u2], Attrs::new()).expect("add")[0];
    let tr = b.add_node("transpose", vec![s], perm()).expect("transpose")[0];
    let m = b.add_node("matmul", vec![tr, s], Attrs::new()).expect("matmul")[0];
    // Static metadata: folds to a constant under propagate_constants.
    let sh = b.add_node("shape_of", vec![x], Attrs::new()).expect("shape_of")[0];
    let f = b.finish(vec![m, sh], 0);

    let evaluator =
        |node: &tfe_graph::Node, ins: &[Arc<TensorData>]| -> Result<Vec<TensorData>, String> {
            tfe_runtime::kernels::run_kernel(&node.op, &node.attrs, ins).map_err(|e| e.to_string())
        };
    let (optimized, stats) =
        passes::optimize_with_stats(&f, &OptimizeOptions::default(), Some(&evaluator));

    let device = tfe_runtime::context::device_manager().host_cpu();
    let args: Vec<Arc<TensorData>> = vec![Arc::new(f32_tensor(&dims).cast(DType::F64))];

    // Agreement first: a faster pipeline that changes answers is a bug,
    // not a speedup. Matmul via `transpose_a` may reassociate: allow 1e-9.
    let raw_out = executor::run_function(&f, &args, &device, ExecMode::SerialPlanned)
        .expect("raw staged run");
    let opt_out = executor::run_function(&optimized, &args, &device, ExecMode::SerialPlanned)
        .expect("optimized staged run");
    for (k, (r, o)) in raw_out.iter().zip(&opt_out).enumerate() {
        assert!(r.all_close(o, 1e-9, 1e-9), "pass_pipeline output {k} diverged");
    }

    let raw_ns = time_ns(iters, reps, &|| {
        executor::run_function(&f, &args, &device, ExecMode::SerialPlanned).expect("raw step");
    });
    let opt_ns = time_ns(iters, reps, &|| {
        executor::run_function(&optimized, &args, &device, ExecMode::SerialPlanned)
            .expect("optimized step");
    });
    let speedup = raw_ns / opt_ns;
    let (before, after) = (f.executable_node_count(), optimized.executable_node_count());
    println!(
        "{:<26} {:>14} {:>14.0} {:>14.0} {:>7.2}x {:>8}   {} -> {} nodes, {} sweeps",
        "pass_pipeline", "-", raw_ns, opt_ns, speedup, "-", before, after, stats.sweeps
    );
    // (for this row "serial ns/op" = unoptimized staged step, "par ns/op"
    //  = fixpoint-optimized staged step)

    let rewrites: Vec<tfe_encode::Value> = stats
        .rewrites
        .iter()
        .map(|(pass, n)| {
            tfe_encode::Value::object(vec![
                ("pass".to_string(), tfe_encode::Value::str(*pass)),
                ("rewrites".to_string(), tfe_encode::Value::Int(*n as i64)),
            ])
        })
        .collect();
    tfe_encode::Value::object(vec![
        ("shape".to_string(), tfe_encode::Value::str("32x32 f64 rewrite-rich staged step")),
        ("unoptimized_ns_per_step".to_string(), tfe_encode::Value::Float(raw_ns)),
        ("optimized_ns_per_step".to_string(), tfe_encode::Value::Float(opt_ns)),
        ("speedup".to_string(), tfe_encode::Value::Float(speedup)),
        ("nodes_before".to_string(), tfe_encode::Value::Int(before as i64)),
        ("nodes_after".to_string(), tfe_encode::Value::Int(after as i64)),
        ("sweeps".to_string(), tfe_encode::Value::Int(stats.sweeps as i64)),
        ("converged".to_string(), tfe_encode::Value::Bool(stats.converged)),
        ("total_rewrites".to_string(), tfe_encode::Value::Int(stats.total_rewrites() as i64)),
        ("rewrites".to_string(), tfe_encode::Value::Array(rewrites)),
    ])
}

/// Serving throughput: a small MLP behind the `tfe-serve` registry, hit by
/// 8 concurrent single-example clients. Three configurations — direct
/// staged calls from the client threads (no serving stack at all),
/// `max_batch = 1` through the serving front (queueing but no coalescing),
/// and the adaptive micro-batcher — and all three must agree bitwise on a
/// probe request before anything is timed. Batching pays twice here: the
/// per-call dispatch overhead amortizes across the batch, and the weight
/// matrices are read once per batch instead of once per request.
fn bench_serving(quick: bool) -> tfe_encode::Value {
    use std::sync::{Arc, Barrier};
    use std::time::Duration;
    use tfe_core::{function1, Func, TensorSpec};
    use tfe_runtime::{api, Tensor};
    use tfe_serve::{BatchPolicy, Dispatch, ModelRegistry};
    use tfe_tensor::DType;

    const D: usize = 256;
    const CONCURRENCY: usize = 8;
    let reqs_per_client = if quick { 25 } else { 150 };
    let total = CONCURRENCY * reqs_per_client;

    let mlp = |name: &str| -> Func {
        function1(name, move |x| {
            let w1 = api::constant(
                (0..D * D).map(|i| ((i % 13) as f32 - 6.0) * 0.02).collect::<Vec<f32>>(),
                [D, D],
            )?;
            let b1 = api::constant(vec![0.05f32; D], [D])?;
            let w2 = api::constant(
                (0..D * D).map(|i| ((i % 17) as f32 - 8.0) * 0.02).collect::<Vec<f32>>(),
                [D, D],
            )?;
            let h = api::relu(&api::add(&api::matmul(x, &w1)?, &b1)?)?;
            api::softmax(&api::matmul(&h, &w2)?)
        })
        .with_input_signature(vec![TensorSpec::new(DType::F32, vec![None, Some(D)])])
    };
    let example = |i: usize| -> Tensor {
        let vals: Vec<f32> = (0..D).map(|j| ((i * 7 + j * 3) % 13) as f32 * 0.37 - 1.5).collect();
        api::constant(vals, [1, D]).expect("example")
    };

    type Client = Arc<dyn Fn(usize, &Tensor) -> Vec<f64> + Send + Sync>;
    // One wall-clock measurement: `CONCURRENCY` clients, each firing
    // `reqs_per_client` sequential single-example requests through `go`.
    let run_clients = |go: Client| -> f64 {
        let barrier = Arc::new(Barrier::new(CONCURRENCY + 1));
        let handles: Vec<_> = (0..CONCURRENCY)
            .map(|c| {
                let go = Arc::clone(&go);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for r in 0..reqs_per_client {
                        let i = c * reqs_per_client + r;
                        let out = go(i, &example(i));
                        assert_eq!(out.len(), D, "request {i} returned a malformed row");
                    }
                })
            })
            .collect();
        barrier.wait();
        let t = Instant::now();
        for h in handles {
            h.join().expect("serving client");
        }
        t.elapsed().as_nanos() as f64 / total as f64
    };

    let direct_fn = mlp("serving_bench_direct");
    let registry = Arc::new(ModelRegistry::new());
    let policy = |max_batch: usize| BatchPolicy {
        max_batch,
        budget: Duration::from_millis(2),
        ewma_alpha: 0.25,
        dispatch: Dispatch::Sync,
    };
    registry
        .register_with("serving_bench_unbatched", 1, mlp("serving_bench_unbatched"), policy(1))
        .expect("register unbatched");
    registry
        .register_with(
            "serving_bench_batched",
            1,
            mlp("serving_bench_batched"),
            policy(CONCURRENCY),
        )
        .expect("register batched");

    // Bitwise agreement across all three paths before timing any of them.
    let probe = example(7);
    let want = direct_fn.call_tensors(&[&probe]).expect("direct probe")[0]
        .to_f64_vec()
        .expect("probe row");
    for name in ["serving_bench_unbatched", "serving_bench_batched"] {
        let got = registry.infer(name, &[&probe]).expect("probe infer")[0]
            .to_f64_vec()
            .expect("probe row");
        assert_eq!(want, got, "{name} must match the direct staged call bitwise");
    }

    let direct_ns = run_clients(Arc::new(move |_i, x: &Tensor| {
        direct_fn.call_tensors(&[x]).expect("direct call")[0].to_f64_vec().expect("row")
    }));
    let unbatched_ns = {
        let registry = Arc::clone(&registry);
        run_clients(Arc::new(move |_i, x: &Tensor| {
            registry.infer("serving_bench_unbatched", &[x]).expect("unbatched infer")[0]
                .to_f64_vec()
                .expect("row")
        }))
    };
    let batched_ns = {
        let registry = Arc::clone(&registry);
        run_clients(Arc::new(move |_i, x: &Tensor| {
            registry.infer("serving_bench_batched", &[x]).expect("batched infer")[0]
                .to_f64_vec()
                .expect("row")
        }))
    };

    // Observed coalescing, from the model's own metric family.
    let snap = tfe_metrics::snapshot();
    let mean_rows = snap
        .family("tfe_serve_batch_rows")
        .and_then(|fam| {
            fam.samples
                .iter()
                .find(|s| s.label.as_ref().is_some_and(|(_, v)| v == "serving_bench_batched@v1"))
                .and_then(|s| match &s.value {
                    tfe_metrics::SampleValue::Histogram(h) => Some(h.mean()),
                    _ => None,
                })
        })
        .unwrap_or(0.0);

    let speedup = unbatched_ns / batched_ns;
    let vs_direct = direct_ns / batched_ns;
    println!(
        "{:<26} {:>14.0} {:>14.0} {:>14.0} {:>7.2}x {:>7.2}x   {CONCURRENCY} clients x \
         {reqs_per_client} reqs, {D}-wide MLP, mean batch {mean_rows:.1} rows \
         (direct / unbatched / batched)",
        "serving", direct_ns, unbatched_ns, batched_ns, speedup, vs_direct
    );

    // The >=2x claim is a wall-clock ratio that needs real concurrency to
    // hold; on a loaded or low-core runner it flakes, so (like
    // TFE_ASSERT_ASYNC) the assertion is gated on hardware threads.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if std::env::var_os("TFE_ASSERT_SERVING").is_some() {
        if cores >= 4 {
            assert!(
                speedup >= 2.0,
                "batched serving must be >=2x over the unbatched front at concurrency \
                 {CONCURRENCY} on {cores} cores: unbatched {unbatched_ns:.0} ns/req vs batched \
                 {batched_ns:.0} ns/req ({speedup:.2}x, mean batch {mean_rows:.1} rows)"
            );
            assert!(
                mean_rows > 1.5,
                "the adaptive batcher must actually coalesce at concurrency {CONCURRENCY}: \
                 mean batch was {mean_rows:.2} rows"
            );
            eprintln!(
                "serving asserted: {speedup:.2}x over unbatched, mean batch {mean_rows:.1} rows \
                 on {cores} cores"
            );
        } else {
            eprintln!("TFE_ASSERT_SERVING skipped: {cores} hardware thread(s) < 4");
        }
    }

    tfe_encode::Value::object(vec![
        ("concurrency".to_string(), tfe_encode::Value::Int(CONCURRENCY as i64)),
        ("requests".to_string(), tfe_encode::Value::Int(total as i64)),
        (
            "shape".to_string(),
            tfe_encode::Value::str(format!("2-layer {D}-wide f32 MLP, 1 row/req")),
        ),
        ("direct_ns_per_req".to_string(), tfe_encode::Value::Float(direct_ns)),
        ("unbatched_ns_per_req".to_string(), tfe_encode::Value::Float(unbatched_ns)),
        ("batched_ns_per_req".to_string(), tfe_encode::Value::Float(batched_ns)),
        ("speedup_vs_unbatched".to_string(), tfe_encode::Value::Float(speedup)),
        ("speedup_vs_direct".to_string(), tfe_encode::Value::Float(vs_direct)),
        ("mean_batch_rows".to_string(), tfe_encode::Value::Float(mean_rows)),
    ])
}

/// Data-parallel training step cost: the same seeded MLP + staged gradient
/// function driven three ways — single-process (the local bit-reference),
/// a 2-worker TCP cluster with parameter-server reduction, and a 2-worker
/// TCP ring all-reduce. Bytes moved per step come from the `tfe_dist_*`
/// byte counters (coordinator-side, both directions). No speedup is
/// asserted: on a small model the wire dominates, and on a 1-core runner
/// the workers time-slice — the row documents the cost of distribution,
/// not a win.
fn bench_dist_train(quick: bool) -> tfe_encode::Value {
    use std::sync::Arc;
    use tfe_dist::{Cluster, ClusterSpec};
    use tfe_nn::optimizer::Sgd;
    use tfe_nn::{mlp, mse_grad_fn, Activation, DataParallel, Initializer, Layer, Reduction};
    use tfe_runtime::{api, Tensor};
    use tfe_tensor::{DType, Shape};

    let steps = if quick { 3 } else { 10 };
    let setup = |tag: &str| -> (Vec<tfe_runtime::Variable>, String) {
        let mut init = Initializer::seeded(42);
        let model = Arc::new(mlp(16, &[32], 1, Activation::Tanh, &mut init));
        let vars = model.variables();
        let f = mse_grad_fn(&format!("bench_dp_grad_{tag}"), model, vars.clone());
        let conc = f
            .concrete_for(&[
                tfe_core::Arg::from(&api::zeros(DType::F32, [16, 16])),
                tfe_core::Arg::from(&api::zeros(DType::F32, [16, 1])),
            ])
            .expect("trace grad fn");
        (vars, conc.function.name.clone())
    };
    let batch = |seed: u64| -> (Tensor, Tensor) {
        let mut rng = tfe_tensor::rng::TensorRng::seed_from_u64(seed);
        let x =
            Tensor::from_data(rng.uniform(DType::F32, Shape::from([32, 16]), -1.0, 1.0).unwrap());
        let y =
            Tensor::from_data(rng.uniform(DType::F32, Shape::from([32, 1]), -1.0, 1.0).unwrap());
        (x, y)
    };
    let dist_bytes = || -> u64 {
        let snap = tfe_metrics::snapshot();
        ["tfe_dist_bytes_sent_total", "tfe_dist_bytes_received_total"]
            .iter()
            .filter_map(|name| snap.family(name))
            .flat_map(|fam| &fam.samples)
            .map(|s| match s.value {
                tfe_metrics::SampleValue::Counter(v) => v,
                _ => 0,
            })
            .sum()
    };

    let spec =
        ClusterSpec::new().with_job("train", 2).expect("job").with_job("ps", 1).expect("job");
    let workers = vec![
        "/job:train/task:0/device:CPU:0".to_string(),
        "/job:train/task:1/device:CPU:0".to_string(),
    ];
    let trainer = |tag: &str, reduction: Reduction| -> DataParallel {
        let (vars, name) = setup(tag);
        DataParallel::new(
            Cluster::start_tcp(&spec).expect("TCP cluster"),
            workers.clone(),
            reduction,
            &name,
            vars,
            Arc::new(Sgd::new(0.05)),
        )
        .expect("trainer")
    };
    let ps = Reduction::ParameterServer { ps_device: "/job:ps/task:0/device:CPU:0".to_string() };

    // Wall clock + byte-counter delta over `steps` training steps.
    let run = |dp: &DataParallel, local: bool| -> (f64, f64) {
        let (x, y) = batch(7);
        if local {
            dp.local_step(&x, &y).expect("warm step");
        } else {
            dp.step(&x, &y).expect("warm step");
        }
        let bytes_before = dist_bytes();
        let t = Instant::now();
        for step in 0..steps {
            let (x, y) = batch(100 + step as u64);
            if local {
                dp.local_step(&x, &y).expect("bench step");
            } else {
                dp.step(&x, &y).expect("bench step");
            }
        }
        let ns = t.elapsed().as_nanos() as f64 / steps as f64;
        let bytes = (dist_bytes() - bytes_before) as f64 / steps as f64;
        (ns, bytes)
    };

    let local_dp = trainer("local", ps.clone());
    let (local_ns, _) = run(&local_dp, true);
    let ps_dp = trainer("ps", ps);
    let (ps_ns, ps_bytes) = run(&ps_dp, false);
    let ring_dp = trainer("ring", Reduction::Ring);
    let (ring_ns, ring_bytes) = run(&ring_dp, false);

    println!(
        "{:<26} {:>14.0} {:>14.0} {:>14.0} {:>8} {:>8}   32x16 f32 MLP step \
         (local / 2-worker ps / 2-worker ring), {:.0} / {:.0} B per step",
        "dist_train", local_ns, ps_ns, ring_ns, "-", "-", ps_bytes, ring_bytes
    );

    tfe_encode::Value::object(vec![
        ("steps".to_string(), tfe_encode::Value::Int(steps as i64)),
        ("shape".to_string(), tfe_encode::Value::str("32x16 f32 batch, 16-32-1 MLP, sgd")),
        ("local_ns_per_step".to_string(), tfe_encode::Value::Float(local_ns)),
        ("ps_tcp_ns_per_step".to_string(), tfe_encode::Value::Float(ps_ns)),
        ("ring_tcp_ns_per_step".to_string(), tfe_encode::Value::Float(ring_ns)),
        ("ps_wire_bytes_per_step".to_string(), tfe_encode::Value::Float(ps_bytes)),
        ("ring_wire_bytes_per_step".to_string(), tfe_encode::Value::Float(ring_bytes)),
        ("workers".to_string(), tfe_encode::Value::Int(2)),
    ])
}

/// Best-of-`reps` mean ns/op over `iters` iterations each.
fn time_ns(iters: usize, reps: usize, f: &dyn Fn()) -> f64 {
    f(); // warm caches / allocator outside the timed region
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

fn main() {
    tfe_core::init();
    let quick = std::env::args().any(|a| a == "--quick");
    let (iters, reps) = if quick { (2, 1) } else { (10, 3) };
    let threads = intra_threads();
    let trace_path = tfe_profile::env_trace_path();
    if trace_path.is_some() {
        tfe_profile::start();
    }

    println!(
        "{:<26} {:>14} {:>14} {:>14} {:>8} {:>9}   shape",
        "kernel", "seed ns/op", "serial ns/op", "par ns/op", "par x", "vs seed"
    );
    let mut rows: Vec<tfe_encode::Value> = Vec::new();
    for case in cases() {
        let prev = set_intra_threads(Some(1));
        let serial_ns = time_ns(iters, reps, &*case.run);
        let seed_ns = case.seed.as_deref().map(|s| time_ns(iters, reps, s));
        set_intra_threads(prev);
        let parallel_ns = time_ns(iters, reps, &*case.run);
        let speedup = serial_ns / parallel_ns;
        let vs_seed = seed_ns.map(|s| s / parallel_ns);
        println!(
            "{:<26} {:>14} {:>14.0} {:>14.0} {:>7.2}x {:>8}   {}",
            case.name,
            seed_ns.map_or("-".to_string(), |s| format!("{s:.0}")),
            serial_ns,
            parallel_ns,
            speedup,
            vs_seed.map_or("-".to_string(), |s| format!("{s:.2}x")),
            case.shape
        );
        let mut fields = vec![
            ("kernel".to_string(), tfe_encode::Value::str(case.name)),
            ("shape".to_string(), tfe_encode::Value::str(case.shape.clone())),
            ("serial_ns_per_op".to_string(), tfe_encode::Value::Float(serial_ns)),
            ("parallel_ns_per_op".to_string(), tfe_encode::Value::Float(parallel_ns)),
            ("speedup".to_string(), tfe_encode::Value::Float(speedup)),
        ];
        if let (Some(seed), Some(vs)) = (seed_ns, vs_seed) {
            fields.push(("seed_ns_per_op".to_string(), tfe_encode::Value::Float(seed)));
            fields.push(("speedup_vs_seed".to_string(), tfe_encode::Value::Float(vs)));
        }
        rows.push(tfe_encode::Value::object(fields));
    }

    let fused_row = bench_fused_chain(iters, reps);
    let async_row = bench_async_dispatch(iters.min(4), reps);
    let pass_row = bench_pass_pipeline(iters * 20, reps);
    let serving_row = bench_serving(quick);
    let dist_row = bench_dist_train(quick);

    let mut fields = vec![
        ("experiment".to_string(), tfe_encode::Value::str("kernels")),
        ("fused_chain".to_string(), fused_row),
        ("async_dispatch".to_string(), async_row),
        ("pass_pipeline".to_string(), pass_row),
        ("serving".to_string(), serving_row),
        ("dist_train".to_string(), dist_row),
        ("threads".to_string(), tfe_encode::Value::Int(threads as i64)),
        ("quick".to_string(), tfe_encode::Value::Bool(quick)),
        ("rows".to_string(), tfe_encode::Value::Array(rows)),
    ];
    if let Some(path) = trace_path {
        let profile = tfe_profile::stop();
        profile.write_chrome_trace(&path).expect("write chrome trace");
        let summary = profile.summary();
        eprintln!("{summary}");
        eprintln!(
            "wrote {path} ({} spans on {} threads)",
            profile.span_count(),
            profile.thread_count()
        );
        fields.push(("profile".to_string(), summary.to_value()));
    }
    let json = tfe_encode::Value::object(fields);
    std::fs::write("BENCH_kernels.json", json.to_json_pretty()).expect("write BENCH_kernels.json");
    eprintln!("wrote BENCH_kernels.json (intra-op threads: {threads})");
}
