//! Regenerates **Figure 4**: examples/second running L2HMC (2-D target,
//! 10 leapfrog steps) on a (simulated) Xeon-class CPU for 10–200 parallel
//! samples, comparing TFE, TFE + `function`, and TF.
//!
//! Run with `cargo run --release -p tfe-bench --bin figure4`.

use tfe_bench::calibrate;
use tfe_bench::harness::{measure, render_table, sim_device, ExecutionConfig, Measurement};
use tfe_bench::workloads::L2hmcWorkload;
use tfe_device::KernelMode;

fn main() {
    tfe_core::init();
    let quick = std::env::args().any(|a| a == "--tiny");
    let profile = calibrate::figure4_cpu();
    // A *simulated* CPU (index 1): the host CPU at index 0 keeps running
    // kernels for real; this one also charges the virtual clock.
    let device = sim_device("/job:localhost/task:0/device:CPU:1", &profile, KernelMode::Simulated);

    let workload = if quick { L2hmcWorkload::new(2, 4) } else { L2hmcWorkload::paper() };
    let sample_counts: &[usize] = &[10, 25, 50, 100, 200];
    let (warmup, runs, iters) = if quick { (2, 1, 2) } else { (2, 3, 10) };

    let mut rows: Vec<Measurement> = Vec::new();
    for &samples in sample_counts {
        let x = workload.chain(samples);
        for config in [ExecutionConfig::Eager, ExecutionConfig::Staged, ExecutionConfig::GraphMode]
        {
            eprintln!("  samples {samples:>3}  {}", config.label());
            let m =
                measure(config, &profile, &device, samples, warmup, runs, iters, || match config {
                    ExecutionConfig::Eager => workload.eager_step(&x),
                    _ => workload.staged_step(&x),
                })
                .expect("measurement");
            rows.push(m);
        }
    }
    println!(
        "{}",
        render_table(
            "Figure 4: L2HMC on CPU (examples/sec, 10 leapfrog steps)",
            sample_counts,
            &rows
        )
    );
    println!(
        "paper: staging increases examples/sec by at least an order of magnitude \
         at every sample count; TF and TFE+function are nearly identical."
    );
    let json = tfe_bench::harness::to_json("figure4", &rows);
    std::fs::write("figure4.json", json.to_json_pretty()).ok();
    eprintln!("wrote figure4.json");
}
