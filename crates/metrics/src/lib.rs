//! Always-on metrics for the tf-eager runtime: a process-wide registry of
//! counters, gauges and fixed-bucket histograms, with a programmatic
//! snapshot API and a Prometheus text exporter.
//!
//! # Design
//!
//! - **Probes are lock-free and always on.** Unlike the profiler (which is
//!   scoped and records events), a metric is a single relaxed atomic: a
//!   counter bump is one `fetch_add(1, Relaxed)` on a cached handle, a
//!   histogram observation is a short bounds scan plus two `fetch_add`s.
//!   There is no enabled flag to check because the disabled state does not
//!   exist — the probe *is* the storage.
//! - **Registration is rare and locked; probing never is.** Call sites
//!   register once (usually behind a `OnceLock`) and keep the returned
//!   `Arc` handle; after that the registry lock is only taken by
//!   [`snapshot`] / [`prometheus_text`] readers, so introspection never
//!   contends with the hot path.
//! - **Labeled families** ([`CounterVec`], [`HistogramVec`]) key child
//!   metrics by one label value (a `Func` name, a worker address). Lookup
//!   takes the family's own lock, so hot paths should cache the child
//!   handle, not the family.
//! - **Snapshots are relaxed.** Values are read one atomic at a time; a
//!   snapshot taken mid-update may be a few probes stale across metrics,
//!   but every individual series is monotone across scrapes (histogram
//!   `count` is derived from the bucket reads, so buckets and count never
//!   disagree within one sample).

#![warn(missing_docs)]

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (or track a running maximum).
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.v.fetch_sub(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Add `n` and return the new value (for tracking a peak of the result
    /// without a read-then-update race).
    #[inline]
    pub fn add_and_get(&self, n: i64) -> i64 {
        self.v.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Raise the gauge to `v` if `v` is larger (high-water marks).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.v.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Default duration buckets in nanoseconds: 100 ns to 10 ms, roughly
/// 1-2.5-5 per decade. Kernel launches, queue waits and RPCs all fit.
pub const DEFAULT_NS_BUCKETS: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

/// A fixed-bucket histogram. Buckets are cumulative only at export time;
/// internally each bucket counts observations `<=` its upper bound
/// (plus one implicit `+Inf` bucket).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// One slot per bound, plus the trailing `+Inf` slot.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Read the current state.
    pub fn read(&self) -> HistogramSnapshot {
        // Read the buckets first and derive the count from them, so count
        // and buckets can never disagree within one snapshot.
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds (the final `+Inf` bucket is implicit).
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; `counts.len() == bounds.len() + 1`,
    /// the last slot being the `+Inf` bucket.
    pub counts: Vec<u64>,
    /// Total observations (always the sum of `counts`).
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the upper bound of the first bucket whose
    /// cumulative count reaches `q * count`. Observations in the `+Inf`
    /// bucket report the largest finite bound. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    *self.bounds.last().unwrap_or(&u64::MAX)
                });
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Labeled families
// ---------------------------------------------------------------------------

/// A family of [`Counter`]s keyed by one label value.
#[derive(Debug)]
pub struct CounterVec {
    label: &'static str,
    children: Mutex<HashMap<String, Arc<Counter>>>,
}

impl CounterVec {
    /// The child counter for `value`, created on first use. Takes the
    /// family lock — cache the returned handle on hot paths.
    pub fn with(&self, value: &str) -> Arc<Counter> {
        let mut children = self.children.lock();
        if let Some(c) = children.get(value) {
            return c.clone();
        }
        let c = Arc::new(Counter::default());
        children.insert(value.to_string(), c.clone());
        c
    }
}

/// A family of [`Gauge`]s keyed by one label value.
#[derive(Debug)]
pub struct GaugeVec {
    label: &'static str,
    children: Mutex<HashMap<String, Arc<Gauge>>>,
}

impl GaugeVec {
    /// The child gauge for `value`, created on first use.
    pub fn with(&self, value: &str) -> Arc<Gauge> {
        let mut children = self.children.lock();
        if let Some(g) = children.get(value) {
            return g.clone();
        }
        let g = Arc::new(Gauge::default());
        children.insert(value.to_string(), g.clone());
        g
    }
}

/// A family of [`Histogram`]s keyed by one label value.
#[derive(Debug)]
pub struct HistogramVec {
    label: &'static str,
    bounds: Vec<u64>,
    children: Mutex<HashMap<String, Arc<Histogram>>>,
}

impl HistogramVec {
    /// The child histogram for `value`, created on first use.
    pub fn with(&self, value: &str) -> Arc<Histogram> {
        let mut children = self.children.lock();
        if let Some(h) = children.get(value) {
            return h.clone();
        }
        let h = Arc::new(Histogram::new(&self.bounds));
        children.insert(value.to_string(), h.clone());
        h
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    CounterVec(Arc<CounterVec>),
    GaugeVec(Arc<GaugeVec>),
    HistogramVec(Arc<HistogramVec>),
}

struct Family {
    name: &'static str,
    help: &'static str,
    instrument: Instrument,
}

fn registry() -> &'static Mutex<Vec<Family>> {
    static R: std::sync::OnceLock<Mutex<Vec<Family>>> = std::sync::OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

fn register(
    name: &'static str,
    help: &'static str,
    make: impl FnOnce() -> Instrument,
) -> Instrument {
    let mut reg = registry().lock();
    if let Some(f) = reg.iter().find(|f| f.name == name) {
        return f.instrument.clone();
    }
    let instrument = make();
    reg.push(Family { name, help, instrument: instrument.clone() });
    instrument
}

/// Register (or fetch) the counter `name`. Idempotent by name; panics if
/// `name` is already registered as a different instrument kind.
pub fn counter(name: &'static str, help: &'static str) -> Arc<Counter> {
    match register(name, help, || Instrument::Counter(Arc::new(Counter::default()))) {
        Instrument::Counter(c) => c,
        _ => panic!("metric `{name}` already registered with a different kind"),
    }
}

/// Register (or fetch) the gauge `name`.
pub fn gauge(name: &'static str, help: &'static str) -> Arc<Gauge> {
    match register(name, help, || Instrument::Gauge(Arc::new(Gauge::default()))) {
        Instrument::Gauge(g) => g,
        _ => panic!("metric `{name}` already registered with a different kind"),
    }
}

/// Register (or fetch) the histogram `name` with the given bucket bounds
/// (ascending; an implicit `+Inf` bucket is appended).
pub fn histogram(name: &'static str, help: &'static str, bounds: &[u64]) -> Arc<Histogram> {
    match register(name, help, || Instrument::Histogram(Arc::new(Histogram::new(bounds)))) {
        Instrument::Histogram(h) => h,
        _ => panic!("metric `{name}` already registered with a different kind"),
    }
}

/// Register (or fetch) a counter family labeled by `label`.
pub fn counter_vec(name: &'static str, help: &'static str, label: &'static str) -> Arc<CounterVec> {
    match register(name, help, || {
        Instrument::CounterVec(Arc::new(CounterVec { label, children: Mutex::new(HashMap::new()) }))
    }) {
        Instrument::CounterVec(v) => v,
        _ => panic!("metric `{name}` already registered with a different kind"),
    }
}

/// Register (or fetch) a gauge family labeled by `label`.
pub fn gauge_vec(name: &'static str, help: &'static str, label: &'static str) -> Arc<GaugeVec> {
    match register(name, help, || {
        Instrument::GaugeVec(Arc::new(GaugeVec { label, children: Mutex::new(HashMap::new()) }))
    }) {
        Instrument::GaugeVec(v) => v,
        _ => panic!("metric `{name}` already registered with a different kind"),
    }
}

/// Register (or fetch) a histogram family labeled by `label`.
pub fn histogram_vec(
    name: &'static str,
    help: &'static str,
    label: &'static str,
    bounds: &[u64],
) -> Arc<HistogramVec> {
    match register(name, help, || {
        Instrument::HistogramVec(Arc::new(HistogramVec {
            label,
            bounds: bounds.to_vec(),
            children: Mutex::new(HashMap::new()),
        }))
    }) {
        Instrument::HistogramVec(v) => v,
        _ => panic!("metric `{name}` already registered with a different kind"),
    }
}

// ---------------------------------------------------------------------------
// Cached-handle macros
// ---------------------------------------------------------------------------

/// A `&'static Counter` handle: registers on first evaluation, then the
/// cached handle makes each probe a single relaxed `fetch_add`. Expand once
/// per call site; every expansion with the same name shares one cell.
#[macro_export]
macro_rules! static_counter {
    ($name:expr, $help:expr) => {{
        static C: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**C.get_or_init(|| $crate::counter($name, $help))
    }};
}

/// A `&'static Gauge` handle (see [`static_counter!`]).
#[macro_export]
macro_rules! static_gauge {
    ($name:expr, $help:expr) => {{
        static G: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        &**G.get_or_init(|| $crate::gauge($name, $help))
    }};
}

/// A `&'static Histogram` handle (see [`static_counter!`]).
#[macro_export]
macro_rules! static_histogram {
    ($name:expr, $help:expr, $bounds:expr) => {{
        static H: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        &**H.get_or_init(|| $crate::histogram($name, $help, $bounds))
    }};
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// The value of one series inside a [`Snapshot`].
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A histogram reading.
    Histogram(HistogramSnapshot),
}

/// One series: an optional `(label, value)` pair plus the reading.
#[derive(Debug, Clone)]
pub struct Sample {
    /// `Some((label_name, label_value))` for children of labeled families.
    pub label: Option<(&'static str, String)>,
    /// The reading.
    pub value: SampleValue,
}

/// The kind of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Up/down gauge.
    Gauge,
    /// Fixed-bucket histogram.
    Histogram,
}

/// All series of one registered metric name.
#[derive(Debug, Clone)]
pub struct FamilySnapshot {
    /// Metric name (Prometheus conventions, `tfe_` prefix).
    pub name: &'static str,
    /// Help text.
    pub help: &'static str,
    /// Family kind.
    pub kind: MetricKind,
    /// One sample per series, sorted by label value.
    pub samples: Vec<Sample>,
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All families, sorted by name.
    pub families: Vec<FamilySnapshot>,
}

impl Snapshot {
    /// Find a family by name.
    pub fn family(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Value of an unlabeled counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.family(name)?.samples.first()?.value {
            SampleValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Value of a labeled counter child.
    pub fn counter_with(&self, name: &str, label_value: &str) -> Option<u64> {
        let fam = self.family(name)?;
        fam.samples
            .iter()
            .find(|s| s.label.as_ref().is_some_and(|(_, v)| v == label_value))
            .and_then(|s| match s.value {
                SampleValue::Counter(v) => Some(v),
                _ => None,
            })
    }

    /// Value of an unlabeled gauge.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        match self.family(name)?.samples.first()?.value {
            SampleValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// Reading of an unlabeled histogram.
    pub fn histogram_value(&self, name: &str) -> Option<&HistogramSnapshot> {
        match &self.family(name)?.samples.first()?.value {
            SampleValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Render the snapshot in the Prometheus text exposition format.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            let kind = match fam.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
                MetricKind::Histogram => "histogram",
            };
            out.push_str(&format!("# HELP {} {}\n", fam.name, fam.help));
            out.push_str(&format!("# TYPE {} {}\n", fam.name, kind));
            for s in &fam.samples {
                let label = |extra: Option<(&str, String)>| -> String {
                    let mut parts = Vec::new();
                    if let Some((k, v)) = &s.label {
                        parts.push(format!("{k}=\"{}\"", escape_label(v)));
                    }
                    if let Some((k, v)) = extra {
                        parts.push(format!("{k}=\"{v}\""));
                    }
                    if parts.is_empty() {
                        String::new()
                    } else {
                        format!("{{{}}}", parts.join(","))
                    }
                };
                match &s.value {
                    SampleValue::Counter(v) => {
                        out.push_str(&format!("{}{} {v}\n", fam.name, label(None)));
                    }
                    SampleValue::Gauge(v) => {
                        out.push_str(&format!("{}{} {v}\n", fam.name, label(None)));
                    }
                    SampleValue::Histogram(h) => {
                        let mut cum = 0u64;
                        for (i, c) in h.counts.iter().enumerate() {
                            cum += c;
                            let le = if i < h.bounds.len() {
                                h.bounds[i].to_string()
                            } else {
                                "+Inf".to_string()
                            };
                            out.push_str(&format!(
                                "{}_bucket{} {cum}\n",
                                fam.name,
                                label(Some(("le", le)))
                            ));
                        }
                        out.push_str(&format!("{}_sum{} {}\n", fam.name, label(None), h.sum));
                        out.push_str(&format!("{}_count{} {}\n", fam.name, label(None), h.count));
                    }
                }
            }
        }
        out
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn sample_children<T, F: Fn(&Arc<T>) -> SampleValue>(
    label: &'static str,
    children: &Mutex<HashMap<String, Arc<T>>>,
    read: F,
) -> Vec<Sample> {
    let mut samples: Vec<Sample> = children
        .lock()
        .iter()
        .map(|(k, v)| Sample { label: Some((label, k.clone())), value: read(v) })
        .collect();
    samples.sort_by(|a, b| a.label.as_ref().map(|l| &l.1).cmp(&b.label.as_ref().map(|l| &l.1)));
    samples
}

/// Copy every registered metric into a [`Snapshot`]. Cheap (one registry
/// lock plus relaxed loads) and safe to call from any thread at any time —
/// it never blocks a probe.
pub fn snapshot() -> Snapshot {
    let reg = registry().lock();
    let mut families: Vec<FamilySnapshot> = reg
        .iter()
        .map(|f| {
            let (kind, samples) = match &f.instrument {
                Instrument::Counter(c) => (
                    MetricKind::Counter,
                    vec![Sample { label: None, value: SampleValue::Counter(c.get()) }],
                ),
                Instrument::Gauge(g) => (
                    MetricKind::Gauge,
                    vec![Sample { label: None, value: SampleValue::Gauge(g.get()) }],
                ),
                Instrument::Histogram(h) => (
                    MetricKind::Histogram,
                    vec![Sample { label: None, value: SampleValue::Histogram(h.read()) }],
                ),
                Instrument::CounterVec(v) => (
                    MetricKind::Counter,
                    sample_children(v.label, &v.children, |c| SampleValue::Counter(c.get())),
                ),
                Instrument::GaugeVec(v) => (
                    MetricKind::Gauge,
                    sample_children(v.label, &v.children, |g| SampleValue::Gauge(g.get())),
                ),
                Instrument::HistogramVec(v) => (
                    MetricKind::Histogram,
                    sample_children(v.label, &v.children, |h| SampleValue::Histogram(h.read())),
                ),
            };
            FamilySnapshot { name: f.name, help: f.help, kind, samples }
        })
        .collect();
    families.sort_by_key(|f| f.name);
    Snapshot { families }
}

/// [`snapshot`] rendered in the Prometheus text exposition format — the
/// string an HTTP `/metrics` endpoint would serve.
pub fn prometheus_text() -> String {
    snapshot().to_prometheus_text()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = counter("tfe_test_counter_total", "test counter");
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        // Idempotent registration returns the same cell.
        let c2 = counter("tfe_test_counter_total", "test counter");
        assert_eq!(c2.get(), c.get());

        let g = gauge("tfe_test_gauge", "test gauge");
        g.set(7);
        g.inc();
        g.dec();
        g.sub(2);
        assert_eq!(g.get(), 5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 5, 50, 500, 5000] {
            h.observe(v);
        }
        let s = h.read();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 5556);
        assert_eq!(s.counts, vec![2, 1, 1, 1]);
        assert_eq!(s.quantile(0.0), Some(10));
        assert_eq!(s.quantile(0.5), Some(100));
        // The +Inf observation reports the largest finite bound.
        assert_eq!(s.quantile(1.0), Some(1000));
        assert!((s.mean() - 5556.0 / 5.0).abs() < 1e-9);
        // Boundary values land in their own bucket (le semantics).
        let h2 = Histogram::new(&[10]);
        h2.observe(10);
        assert_eq!(h2.read().counts, vec![1, 0]);
        h2.observe(11);
        assert_eq!(h2.read().counts, vec![1, 1]);
    }

    #[test]
    fn labeled_families() {
        let v = counter_vec("tfe_test_family_total", "labeled", "who");
        v.with("a").inc();
        v.with("a").inc();
        v.with("b").add(5);
        let snap = snapshot();
        assert_eq!(snap.counter_with("tfe_test_family_total", "a"), Some(2));
        assert_eq!(snap.counter_with("tfe_test_family_total", "b"), Some(5));

        let hv = histogram_vec("tfe_test_hist_ns", "labeled hist", "who", &[10, 100]);
        hv.with("x").observe(50);
        let snap = snapshot();
        let fam = snap.family("tfe_test_hist_ns").unwrap();
        assert_eq!(fam.kind, MetricKind::Histogram);
        assert_eq!(fam.samples.len(), 1);
    }

    #[test]
    fn prometheus_text_format() {
        let c = counter("tfe_test_export_total", "exported counter");
        c.add(3);
        let h = histogram("tfe_test_export_ns", "exported histogram", &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(5000);
        let text = prometheus_text();
        assert!(text.contains("# TYPE tfe_test_export_total counter"));
        assert!(text.contains("# HELP tfe_test_export_total exported counter"));
        assert!(text.lines().any(|l| l.starts_with("tfe_test_export_total ")));
        assert!(text.contains("tfe_test_export_ns_bucket{le=\"10\"} 1"));
        assert!(text.contains("tfe_test_export_ns_bucket{le=\"100\"} 2"));
        assert!(text.contains("tfe_test_export_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("tfe_test_export_ns_count 3"));
        assert!(text.contains("tfe_test_export_ns_sum 5055"));
    }

    #[test]
    fn snapshot_is_sorted_and_monotone() {
        let c = counter("tfe_test_monotone_total", "monotone");
        c.inc();
        let s1 = snapshot();
        c.add(10);
        let s2 = snapshot();
        let names: Vec<_> = s1.families.iter().map(|f| f.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "families must be sorted by name");
        assert!(
            s2.counter_value("tfe_test_monotone_total").unwrap()
                > s1.counter_value("tfe_test_monotone_total").unwrap()
        );
    }

    #[test]
    fn concurrent_probes_lose_nothing() {
        let c = counter("tfe_test_concurrent_total", "hammered");
        let h = histogram("tfe_test_concurrent_ns", "hammered hist", DEFAULT_NS_BUCKETS);
        let before = c.get();
        let hbefore = h.read().count;
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.observe(i % 7_000_000);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get() - before, 80_000);
        let s = h.read();
        assert_eq!(s.count - hbefore, 80_000);
        assert_eq!(s.counts.iter().sum::<u64>(), s.count);
    }
}
