//! Optimizers: SGD, SGD-with-momentum, and Adam.
//!
//! `apply` is expressed in primitive operations, so a whole training step
//! (forward + backward + update) can be staged with `function` — the
//! configuration §6 benchmarks as "TFE + function".

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use tfe_runtime::{api, Result, RuntimeError, Tensor, Variable};
use tfe_state::Trackable;
use tfe_tensor::{Shape, TensorData};

/// A gradient-based optimizer.
pub trait Optimizer: Send + Sync {
    /// Apply one update step given (gradient, variable) pairs.
    ///
    /// # Errors
    /// Shape mismatches or execution failures.
    fn apply(&self, grads_and_vars: &[(Tensor, Variable)]) -> Result<()>;

    /// Checkpointable slot state (momentum/Adam moments), if any.
    fn trackable(&self) -> Arc<dyn Trackable>;
}

fn scalar_like(v: &Variable, value: f64) -> Tensor {
    api::constant_data(TensorData::fill_f64(v.dtype(), Shape::scalar(), value))
}

/// Plain stochastic gradient descent: `v -= lr * g`.
pub struct Sgd {
    lr: f64,
}

impl Sgd {
    /// Create with a learning rate.
    pub fn new(lr: f64) -> Sgd {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn apply(&self, grads_and_vars: &[(Tensor, Variable)]) -> Result<()> {
        for (g, v) in grads_and_vars {
            let step = api::mul(g, &scalar_like(v, self.lr))?;
            v.assign_sub(&step)?;
        }
        Ok(())
    }

    fn trackable(&self) -> Arc<dyn Trackable> {
        Arc::new(tfe_state::TrackableGroup::new())
    }
}

/// SGD with classical momentum: `m = mu*m + g; v -= lr*m`.
pub struct Momentum {
    lr: f64,
    mu: f64,
    slots: Mutex<HashMap<u64, Variable>>,
}

impl Momentum {
    /// Create with learning rate and momentum coefficient.
    pub fn new(lr: f64, mu: f64) -> Momentum {
        Momentum { lr, mu, slots: Mutex::new(HashMap::new()) }
    }

    fn slot(&self, v: &Variable) -> Variable {
        self.slots
            .lock()
            .entry(v.id())
            .or_insert_with(|| Variable::new(TensorData::zeros(v.dtype(), v.shape().clone())))
            .clone()
    }
}

impl Optimizer for Momentum {
    fn apply(&self, grads_and_vars: &[(Tensor, Variable)]) -> Result<()> {
        for (g, v) in grads_and_vars {
            let m = self.slot(v);
            let mv = m.read()?;
            let new_m = api::add(&api::mul(&mv, &scalar_like(v, self.mu))?, g)?;
            m.assign(&new_m)?;
            v.assign_sub(&api::mul(&new_m, &scalar_like(v, self.lr))?)?;
        }
        Ok(())
    }

    fn trackable(&self) -> Arc<dyn Trackable> {
        let slots = self.slots.lock();
        let mut g = tfe_state::TrackableGroup::new();
        let mut keys: Vec<&u64> = slots.keys().collect();
        keys.sort();
        for (i, k) in keys.into_iter().enumerate() {
            g = g.with_variable(&format!("m{i}"), &slots[k]);
        }
        Arc::new(g)
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    step: Variable,
    slots: Mutex<HashMap<u64, (Variable, Variable)>>,
}

impl Adam {
    /// Create with the usual defaults for the betas.
    pub fn new(lr: f64) -> Adam {
        Adam::with_params(lr, 0.9, 0.999, 1e-8)
    }

    /// Full control.
    pub fn with_params(lr: f64, beta1: f64, beta2: f64, epsilon: f64) -> Adam {
        Adam {
            lr,
            beta1,
            beta2,
            epsilon,
            step: Variable::new(TensorData::scalar(0.0f32)),
            slots: Mutex::new(HashMap::new()),
        }
    }

    fn slots_for(&self, v: &Variable) -> (Variable, Variable) {
        self.slots
            .lock()
            .entry(v.id())
            .or_insert_with(|| {
                (
                    Variable::new(TensorData::zeros(v.dtype(), v.shape().clone())),
                    Variable::new(TensorData::zeros(v.dtype(), v.shape().clone())),
                )
            })
            .clone()
    }
}

impl Optimizer for Adam {
    fn apply(&self, grads_and_vars: &[(Tensor, Variable)]) -> Result<()> {
        self.step.assign_add(&api::scalar(1.0f32))?;
        let t = self.step.read()?;
        let t = api::cast(&t, tfe_tensor::DType::F64)?;
        let b1 = api::scalar(self.beta1);
        let b2 = api::scalar(self.beta2);
        // Bias corrections 1 - beta^t.
        let one = api::scalar(1.0f64);
        let bc1 = api::sub(&one, &api::pow(&b1, &t)?)?;
        let bc2 = api::sub(&one, &api::pow(&b2, &t)?)?;
        for (g, v) in grads_and_vars {
            if !g.dtype().is_float() {
                return Err(RuntimeError::Internal("adam requires float gradients".into()));
            }
            let (m, s) = self.slots_for(v);
            let dt = v.dtype();
            let b1c = scalar_like(v, self.beta1);
            let b2c = scalar_like(v, self.beta2);
            let one_minus_b1 = scalar_like(v, 1.0 - self.beta1);
            let one_minus_b2 = scalar_like(v, 1.0 - self.beta2);
            let mv = m.read()?;
            let new_m = api::add(&api::mul(&mv, &b1c)?, &api::mul(g, &one_minus_b1)?)?;
            m.assign(&new_m)?;
            let sv = s.read()?;
            let new_s =
                api::add(&api::mul(&sv, &b2c)?, &api::mul(&api::square(g)?, &one_minus_b2)?)?;
            s.assign(&new_s)?;
            let m_hat = api::div(&new_m, &api::cast(&bc1, dt)?)?;
            let s_hat = api::div(&new_s, &api::cast(&bc2, dt)?)?;
            let denom = api::add(&api::sqrt(&s_hat)?, &scalar_like(v, self.epsilon))?;
            let step = api::mul(&api::div(&m_hat, &denom)?, &scalar_like(v, self.lr))?;
            v.assign_sub(&step)?;
        }
        Ok(())
    }

    fn trackable(&self) -> Arc<dyn Trackable> {
        let slots = self.slots.lock();
        let mut g = tfe_state::TrackableGroup::new().with_variable("step", &self.step);
        let mut keys: Vec<&u64> = slots.keys().collect();
        keys.sort();
        for (i, k) in keys.into_iter().enumerate() {
            let (m, s) = &slots[k];
            g = g.with_variable(&format!("m{i}"), m).with_variable(&format!("v{i}"), s);
        }
        Arc::new(g)
    }
}

/// Compute gradients of `loss` w.r.t. `vars` and apply them — one optimizer
/// step, the `minimize` convenience.
///
/// # Errors
/// Tape or update failures.
pub fn minimize(
    opt: &dyn Optimizer,
    tape: tfe_autodiff::GradientTape,
    loss: &Tensor,
    vars: &[Variable],
) -> Result<()> {
    let refs: Vec<&Variable> = vars.iter().collect();
    let grads = tape.gradient_vars(loss, &refs)?;
    let pairs: Vec<(Tensor, Variable)> =
        grads.into_iter().zip(vars).filter_map(|(g, v)| g.map(|g| (g, v.clone()))).collect();
    opt.apply(&pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_autodiff::GradientTape;
    use tfe_state::TrackableChild;

    fn quadratic_step(opt: &dyn Optimizer, v: &Variable) -> f64 {
        // loss = (v - 3)^2; minimum at 3.
        let tape = GradientTape::new();
        let x = v.read().unwrap();
        let d = api::sub(&x, &api::scalar(3.0f32)).unwrap();
        let loss = api::square(&d).unwrap();
        minimize(opt, tape, &loss, std::slice::from_ref(v)).unwrap();
        loss.scalar_f64().unwrap()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let v = Variable::new(TensorData::scalar(0.0f32));
        let opt = Sgd::new(0.1);
        let mut last = f64::INFINITY;
        for _ in 0..50 {
            last = quadratic_step(&opt, &v);
        }
        assert!(last < 1e-6, "loss {last}");
        assert!((v.peek().scalar_f64().unwrap() - 3.0).abs() < 1e-3);
    }

    #[test]
    fn momentum_converges_faster_than_sgd_here() {
        let v1 = Variable::new(TensorData::scalar(0.0f32));
        let v2 = Variable::new(TensorData::scalar(0.0f32));
        let sgd = Sgd::new(0.02);
        let mom = Momentum::new(0.02, 0.9);
        for _ in 0..30 {
            quadratic_step(&sgd, &v1);
            quadratic_step(&mom, &v2);
        }
        let d1 = (v1.peek().scalar_f64().unwrap() - 3.0).abs();
        let d2 = (v2.peek().scalar_f64().unwrap() - 3.0).abs();
        assert!(d2 < d1, "momentum {d2} should beat sgd {d1}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let v = Variable::new(TensorData::scalar(0.0f32));
        let opt = Adam::new(0.2);
        for _ in 0..200 {
            quadratic_step(&opt, &v);
        }
        assert!((v.peek().scalar_f64().unwrap() - 3.0).abs() < 1e-2);
    }

    #[test]
    fn optimizer_state_is_trackable() {
        let v = Variable::new(TensorData::scalar(0.0f32));
        let opt = Momentum::new(0.1, 0.9);
        quadratic_step(&opt, &v);
        let t = opt.trackable();
        let children = t.children();
        assert_eq!(children.len(), 1); // one slot variable
        assert!(matches!(children[0].1, TrackableChild::Variable(_)));
    }

    #[test]
    fn staged_training_step_with_momentum() {
        // The §6 configuration: stage forward + gradient + update together.
        let v = Variable::new(TensorData::scalar(0.0f32));
        let opt = Arc::new(Momentum::new(0.1, 0.9));
        let step = {
            let v = v.clone();
            let opt = opt.clone();
            tfe_core::function("train_step", move |_args| {
                let tape = GradientTape::new();
                let x = v.read()?;
                let d = api::sub(&x, &api::scalar(3.0f32))?;
                let loss = api::square(&d)?;
                minimize(opt.as_ref(), tape, &loss, std::slice::from_ref(&v))?;
                Ok(vec![loss])
            })
        };
        for _ in 0..120 {
            step.call(&[]).unwrap();
        }
        assert!((v.peek().scalar_f64().unwrap() - 3.0).abs() < 2e-2);
        assert_eq!(step.num_concrete(), 1);
    }
}
