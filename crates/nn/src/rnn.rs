//! Recurrent layers and embeddings — the data-dependent workloads the
//! paper's introduction motivates ("dynamic language models", "segmental
//! recurrent neural networks", §1/§3/§7). With an imperative front-end,
//! a recurrence is just a host loop over a cell; with `function`, the cell
//! (or an entire fixed-length rollout) stages into a graph.

use crate::init::Initializer;
use crate::layers::{Activation, Dense, Layer};
use std::sync::Arc;
use tfe_runtime::{api, Result, RuntimeError, Tensor, Variable};
use tfe_state::{Trackable, TrackableGroup};
use tfe_tensor::{DType, TensorData};

/// A trainable token-embedding table. The lookup is `gather`, whose
/// gradient scatters into the rows that were used (sparse-style update).
pub struct Embedding {
    table: Variable,
}

impl Embedding {
    /// Create a `(vocab, dim)` table.
    pub fn new(vocab: usize, dim: usize, init: &mut Initializer) -> Embedding {
        Embedding { table: Variable::new(init.normal(DType::F32, &[vocab, dim], 0.05)) }
    }

    /// Look up rows by integer ids (any shape of ids; appends `dim`).
    ///
    /// # Errors
    /// Out-of-range ids or execution failures.
    pub fn lookup(&self, ids: &Tensor) -> Result<Tensor> {
        let table = self.table.read()?;
        api::gather(&table, ids, 0)
    }

    /// The underlying table variable.
    pub fn table(&self) -> &Variable {
        &self.table
    }

    /// Trainable variables.
    pub fn variables(&self) -> Vec<Variable> {
        vec![self.table.clone()]
    }

    /// Checkpoint node.
    pub fn trackable(&self) -> Arc<dyn Trackable> {
        Arc::new(TrackableGroup::new().with_variable("table", &self.table))
    }
}

/// A standard LSTM cell (concatenated-gate formulation).
pub struct LstmCell {
    gates: Dense, // maps [x, h] -> 4*units (i, f, g, o)
    units: usize,
}

/// The `(h, c)` recurrent state of an [`LstmCell`].
#[derive(Clone)]
pub struct LstmState {
    /// Hidden state, `(batch, units)`.
    pub h: Tensor,
    /// Cell state, `(batch, units)`.
    pub c: Tensor,
}

impl LstmCell {
    /// Create a cell mapping `inputs`-wide features to `units`-wide state.
    pub fn new(inputs: usize, units: usize, init: &mut Initializer) -> LstmCell {
        LstmCell { gates: Dense::new(inputs + units, 4 * units, Activation::Linear, init), units }
    }

    /// Zero state for a batch.
    pub fn zero_state(&self, batch: usize) -> LstmState {
        LstmState {
            h: Tensor::from_data(TensorData::zeros(DType::F32, [batch, self.units])),
            c: Tensor::from_data(TensorData::zeros(DType::F32, [batch, self.units])),
        }
    }

    /// One step: `(x, state) -> (output, state)`.
    ///
    /// # Errors
    /// Shape mismatches or execution failures.
    pub fn step(&self, x: &Tensor, state: &LstmState) -> Result<(Tensor, LstmState)> {
        let zx = api::concat(&[x, &state.h], 1)?;
        let gates = self.gates.call(&zx, true)?;
        let parts = api::split(&gates, 4, 1)?;
        let i = api::sigmoid(&parts[0])?;
        let f = api::sigmoid(&parts[1])?;
        let g = api::tanh(&parts[2])?;
        let o = api::sigmoid(&parts[3])?;
        let c = api::add(&api::mul(&f, &state.c)?, &api::mul(&i, &g)?)?;
        let h = api::mul(&o, &api::tanh(&c)?)?;
        Ok((h.clone(), LstmState { h, c }))
    }

    /// Unroll over a `(batch, time, features)` sequence with a host loop
    /// (imperative dynamism: the sequence length is plain data).
    ///
    /// # Errors
    /// Rank/shape mismatches.
    pub fn run_sequence(&self, xs: &Tensor) -> Result<(Vec<Tensor>, LstmState)> {
        let dims = xs.sym_shape();
        let (Some(batch), Some(time)) = (dims.dims()[0], dims.dims()[1]) else {
            return Err(RuntimeError::SymbolicValue(
                "run_sequence needs known batch/time dimensions".to_string(),
            ));
        };
        let mut state = self.zero_state(batch);
        let mut outputs = Vec::with_capacity(time);
        for t in 0..time {
            let x_t = api::squeeze(&api::slice(xs, &[0, t as i64, 0], &[-1, 1, -1])?, &[1])?;
            let (out, next) = self.step(&x_t, &state)?;
            state = next;
            outputs.push(out);
        }
        Ok((outputs, state))
    }

    /// Trainable variables.
    pub fn variables(&self) -> Vec<Variable> {
        self.gates.variables()
    }

    /// Checkpoint node.
    pub fn trackable(&self) -> Arc<dyn Trackable> {
        Arc::new(TrackableGroup::new().with_node("gates", self.gates.trackable()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::losses::mean_squared_error;
    use crate::optimizer::{minimize, Adam};
    use tfe_autodiff::GradientTape;

    #[test]
    fn embedding_lookup_shapes() {
        let mut init = Initializer::seeded(1);
        let emb = Embedding::new(10, 4, &mut init);
        let ids = Tensor::from_data(
            TensorData::from_vec(vec![1i64, 7, 1], tfe_tensor::Shape::from([3])).unwrap(),
        );
        let out = emb.lookup(&ids).unwrap();
        assert_eq!(out.shape().unwrap().dims(), &[3, 4]);
        // Duplicate ids return identical rows.
        let v = out.to_f64_vec().unwrap();
        assert_eq!(v[0..4], v[8..12]);
    }

    #[test]
    fn embedding_gradient_is_sparse_scatter() {
        let mut init = Initializer::seeded(2);
        let emb = Embedding::new(6, 2, &mut init);
        let ids = Tensor::from_data(
            TensorData::from_vec(vec![0i64, 0, 3], tfe_tensor::Shape::from([3])).unwrap(),
        );
        let tape = GradientTape::new();
        let rows = emb.lookup(&ids).unwrap();
        let loss = api::reduce_sum(&rows, &[], false).unwrap();
        let g = tape.gradient_vars(&loss, &[emb.table()]).unwrap()[0].clone().unwrap();
        let gv = g.to_f64_vec().unwrap();
        // Row 0 used twice -> gradient 2; row 3 once -> 1; others 0.
        assert_eq!(gv[0..2], [2.0, 2.0]);
        assert_eq!(gv[6..8], [1.0, 1.0]);
        assert_eq!(gv[2..6], [0.0, 0.0, 0.0, 0.0]);
        assert_eq!(gv[8..12], [0.0; 4]);
    }

    #[test]
    fn lstm_shapes_and_state_flow() {
        let mut init = Initializer::seeded(3);
        let cell = LstmCell::new(5, 7, &mut init);
        let x = tfe_runtime::api::zeros(DType::F32, [2, 5]);
        let s0 = cell.zero_state(2);
        let (out, s1) = cell.step(&x, &s0).unwrap();
        assert_eq!(out.shape().unwrap().dims(), &[2, 7]);
        assert_eq!(s1.c.shape().unwrap().dims(), &[2, 7]);
        // With zero input and zero state the output is exactly sigmoid(b)*tanh(...)
        // — just assert determinism across calls.
        let (out2, _) = cell.step(&x, &s0).unwrap();
        assert_eq!(out.to_f64_vec().unwrap(), out2.to_f64_vec().unwrap());
    }

    #[test]
    fn variable_length_sequences_host_loop() {
        // The imperative dynamism §3 touts: process sequences of different
        // lengths with a plain host loop, no padding or retracing needed.
        let mut init = Initializer::seeded(4);
        let cell = LstmCell::new(3, 4, &mut init);
        for time in [1usize, 3, 6] {
            let xs = Tensor::from_data(
                tfe_tensor::rng::TensorRng::seed_from_u64(time as u64)
                    .normal(DType::F32, tfe_tensor::Shape::from([2, time, 3]), 0.0, 1.0)
                    .unwrap(),
            );
            let (outs, _) = cell.run_sequence(&xs).unwrap();
            assert_eq!(outs.len(), time);
        }
    }

    #[test]
    fn staged_fixed_length_rollout() {
        // A fixed-length rollout stages into one graph; per the paper,
        // tracing "fully unrolls loops" — 4 steps become 4 cell bodies.
        let mut init = Initializer::seeded(5);
        let cell = Arc::new(LstmCell::new(3, 4, &mut init));
        let staged = {
            let cell = cell.clone();
            tfe_core::function1("lstm_rollout", move |xs| {
                let (outs, _) = cell.run_sequence(xs)?;
                Ok(outs.into_iter().last().expect("at least one step"))
            })
        };
        let xs = tfe_runtime::api::zeros(DType::F32, [2, 4, 3]);
        let eager = {
            let (outs, _) = cell.run_sequence(&xs).unwrap();
            outs.into_iter().last().unwrap()
        };
        let out = staged.call1(&xs).unwrap();
        assert_eq!(out.to_f64_vec().unwrap(), eager.to_f64_vec().unwrap());
        // The unrolled graph contains one concat per step.
        let conc = staged
            .concrete_for(&[tfe_core::Arg::from(&tfe_runtime::api::zeros(DType::F32, [2, 4, 3]))])
            .unwrap();
        let concats = conc.raw.nodes.iter().filter(|n| n.op == "concat").count();
        assert_eq!(concats, 4, "loop must be unrolled into the trace");
    }

    #[test]
    fn lstm_learns_a_simple_sequence_task() {
        // Predict the running mean of the inputs from the last hidden state.
        let mut init = Initializer::seeded(6);
        let cell = LstmCell::new(1, 8, &mut init);
        let head = Dense::new(8, 1, Activation::Linear, &mut init);
        let opt = Adam::new(0.02);
        let mut vars = cell.variables();
        vars.extend(head.variables());

        let mut rng = tfe_tensor::rng::TensorRng::seed_from_u64(9);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..40 {
            let xs = Tensor::from_data(
                rng.normal(DType::F32, tfe_tensor::Shape::from([8, 5, 1]), 0.0, 1.0).unwrap(),
            );
            let target = api::reduce_mean(&xs, &[1], false).unwrap(); // (8, 1)
            let tape = GradientTape::new();
            let (outs, _) = cell.run_sequence(&xs).unwrap();
            let pred = head.call(outs.last().unwrap(), true).unwrap();
            let loss = mean_squared_error(&pred, &target).unwrap();
            last = loss.scalar_f64().unwrap();
            first.get_or_insert(last);
            minimize(&opt, tape, &loss, &vars).unwrap();
        }
        let first = first.unwrap();
        assert!(last < first * 0.8, "LSTM did not learn: {first} -> {last}");
    }
}
