//! ResNet v1 with bottleneck blocks (He et al., 2016) — the model behind
//! Figure 3 and Table 1 of the TensorFlow Eager paper.
//!
//! [`resnet50`] builds the full 50-layer ImageNet network used by the
//! benchmark harness (cost-only simulated devices make batch-32 training
//! steps tractable); [`resnet_tiny`] is a structurally identical scaled-down
//! variant the test suite trains for real on the host CPU.

use crate::init::Initializer;
use crate::layers::{Activation, BatchNorm, Conv2d, Dense, GlobalAvgPool, Layer, MaxPool2d};
use crate::optimizer::Optimizer;
use std::sync::Arc;
use tfe_autodiff::GradientTape;
use tfe_runtime::{api, Result, Tensor, Variable};
use tfe_state::{Trackable, TrackableGroup};

/// One bottleneck residual block: 1×1 → 3×3 → 1×1 convolutions with batch
/// norm, plus an (optionally projected) shortcut.
pub struct Bottleneck {
    conv1: Conv2d,
    bn1: BatchNorm,
    conv2: Conv2d,
    bn2: BatchNorm,
    conv3: Conv2d,
    bn3: BatchNorm,
    projection: Option<(Conv2d, BatchNorm)>,
}

impl Bottleneck {
    /// Build a block mapping `in_ch` channels to `filters * 4`, striding
    /// spatially by `stride` in the 3×3 convolution.
    pub fn new(in_ch: usize, filters: usize, stride: usize, init: &mut Initializer) -> Bottleneck {
        let out_ch = filters * 4;
        let projection = (stride != 1 || in_ch != out_ch).then(|| {
            (
                Conv2d::new(
                    in_ch,
                    out_ch,
                    (1, 1),
                    (stride, stride),
                    "SAME",
                    Activation::Linear,
                    false,
                    init,
                ),
                BatchNorm::new(out_ch),
            )
        });
        Bottleneck {
            conv1: Conv2d::new(
                in_ch,
                filters,
                (1, 1),
                (1, 1),
                "SAME",
                Activation::Linear,
                false,
                init,
            ),
            bn1: BatchNorm::new(filters),
            conv2: Conv2d::new(
                filters,
                filters,
                (3, 3),
                (stride, stride),
                "SAME",
                Activation::Linear,
                false,
                init,
            ),
            bn2: BatchNorm::new(filters),
            conv3: Conv2d::new(
                filters,
                out_ch,
                (1, 1),
                (1, 1),
                "SAME",
                Activation::Linear,
                false,
                init,
            ),
            bn3: BatchNorm::new(out_ch),
            projection,
        }
    }
}

impl Layer for Bottleneck {
    fn call(&self, x: &Tensor, training: bool) -> Result<Tensor> {
        let mut h = api::relu(&self.bn1.call(&self.conv1.call(x, training)?, training)?)?;
        h = api::relu(&self.bn2.call(&self.conv2.call(&h, training)?, training)?)?;
        h = self.bn3.call(&self.conv3.call(&h, training)?, training)?;
        let shortcut = match &self.projection {
            Some((conv, bn)) => bn.call(&conv.call(x, training)?, training)?,
            None => x.clone(),
        };
        api::relu(&api::add(&h, &shortcut)?)
    }

    fn variables(&self) -> Vec<Variable> {
        let mut v = Vec::new();
        for layer in
            [&self.conv1 as &dyn Layer, &self.bn1, &self.conv2, &self.bn2, &self.conv3, &self.bn3]
        {
            v.extend(layer.variables());
        }
        if let Some((conv, bn)) = &self.projection {
            v.extend(conv.variables());
            v.extend(bn.variables());
        }
        v
    }

    fn trackable(&self) -> Arc<dyn Trackable> {
        let mut g = TrackableGroup::new()
            .with_node("conv1", self.conv1.trackable())
            .with_node("bn1", self.bn1.trackable())
            .with_node("conv2", self.conv2.trackable())
            .with_node("bn2", self.bn2.trackable())
            .with_node("conv3", self.conv3.trackable())
            .with_node("bn3", self.bn3.trackable());
        if let Some((conv, bn)) = &self.projection {
            g = g.with_node("proj_conv", conv.trackable()).with_node("proj_bn", bn.trackable());
        }
        Arc::new(g)
    }
}

/// A residual network: stem, bottleneck stages, classifier head.
pub struct ResNet {
    stem_conv: Conv2d,
    stem_bn: BatchNorm,
    stem_pool: Option<MaxPool2d>,
    blocks: Vec<Bottleneck>,
    head_pool: GlobalAvgPool,
    fc: Dense,
    name: String,
}

impl ResNet {
    /// Build from a stage specification: `(blocks_per_stage, base_filters)`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        in_channels: usize,
        stem_filters: usize,
        stem_kernel: usize,
        stem_stride: usize,
        stem_pool: bool,
        stages: &[(usize, usize)],
        classes: usize,
        init: &mut Initializer,
    ) -> ResNet {
        let stem_conv = Conv2d::new(
            in_channels,
            stem_filters,
            (stem_kernel, stem_kernel),
            (stem_stride, stem_stride),
            "SAME",
            Activation::Linear,
            false,
            init,
        );
        let stem_bn = BatchNorm::new(stem_filters);
        let mut blocks = Vec::new();
        let mut in_ch = stem_filters;
        for (stage, &(count, filters)) in stages.iter().enumerate() {
            for block in 0..count {
                let stride = if stage > 0 && block == 0 { 2 } else { 1 };
                blocks.push(Bottleneck::new(in_ch, filters, stride, init));
                in_ch = filters * 4;
            }
        }
        let fc = Dense::new(in_ch, classes, Activation::Linear, init);
        ResNet {
            stem_conv,
            stem_bn,
            stem_pool: stem_pool.then(|| MaxPool2d::new((3, 3), (2, 2), "SAME")),
            blocks,
            head_pool: GlobalAvgPool,
            fc,
            name: name.to_string(),
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of residual blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

impl Layer for ResNet {
    fn call(&self, x: &Tensor, training: bool) -> Result<Tensor> {
        let mut h = api::relu(&self.stem_bn.call(&self.stem_conv.call(x, training)?, training)?)?;
        if let Some(pool) = &self.stem_pool {
            h = pool.call(&h, training)?;
        }
        for block in &self.blocks {
            h = block.call(&h, training)?;
        }
        let pooled = self.head_pool.call(&h, training)?;
        self.fc.call(&pooled, training)
    }

    fn variables(&self) -> Vec<Variable> {
        let mut v = self.stem_conv.variables();
        v.extend(self.stem_bn.variables());
        for b in &self.blocks {
            v.extend(b.variables());
        }
        v.extend(self.fc.variables());
        v
    }

    fn trackable(&self) -> Arc<dyn Trackable> {
        let mut g = TrackableGroup::new()
            .with_node("stem_conv", self.stem_conv.trackable())
            .with_node("stem_bn", self.stem_bn.trackable());
        for (i, b) in self.blocks.iter().enumerate() {
            g = g.with_node(&format!("block{i}"), b.trackable());
        }
        g = g.with_node("fc", self.fc.trackable());
        Arc::new(g)
    }
}

/// The full ResNet-50 for 224×224×3 ImageNet-style inputs — the §6 model.
pub fn resnet50(classes: usize, init: &mut Initializer) -> ResNet {
    ResNet::new(
        "resnet50",
        3,
        64,
        7,
        2,
        true,
        &[(3, 64), (4, 128), (6, 256), (3, 512)],
        classes,
        init,
    )
}

/// A structurally-identical miniature (two stages, 4/8 filters) for
/// real-execution tests on small inputs.
pub fn resnet_tiny(classes: usize, init: &mut Initializer) -> ResNet {
    ResNet::new("resnet_tiny", 3, 4, 3, 1, false, &[(1, 4), (1, 8)], classes, init)
}

/// One training step: forward, softmax cross-entropy, backward, optimizer
/// update. Staging this function is exactly the "TFE + function"
/// configuration of Figure 3 ("converting the code to use function is
/// simply a matter of decorating two functions").
///
/// # Errors
/// Execution failures anywhere in the step.
pub fn train_step(
    model: &dyn Layer,
    optimizer: &dyn Optimizer,
    images: &Tensor,
    labels: &Tensor,
) -> Result<Tensor> {
    let vars = model.variables();
    let tape = GradientTape::new();
    let logits = model.call(images, true)?;
    let loss = crate::losses::softmax_cross_entropy(&logits, labels)?;
    crate::optimizer::minimize(optimizer, tape, &loss, &vars)?;
    Ok(loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticImages;
    use crate::layers::num_parameters;
    use crate::optimizer::Momentum;
    use tfe_tensor::DType;

    #[test]
    fn resnet50_structure() {
        let mut init = Initializer::seeded(0);
        let model = resnet50(1000, &mut init);
        assert_eq!(model.num_blocks(), 16); // 3+4+6+3
        let params = num_parameters(&model);
        // ResNet-50 has ~25.5M parameters.
        assert!((24_000_000..27_000_000).contains(&params), "parameter count {params}");
    }

    #[test]
    fn tiny_resnet_forward_shapes() {
        let mut init = Initializer::seeded(1);
        let model = resnet_tiny(10, &mut init);
        let x = api::zeros(DType::F32, [2, 8, 8, 3]);
        let logits = model.call(&x, false).unwrap();
        assert_eq!(logits.shape().unwrap().dims(), &[2, 10]);
    }

    #[test]
    fn tiny_resnet_trains_for_real() {
        let mut init = Initializer::seeded(2);
        let model = resnet_tiny(3, &mut init);
        let opt = Momentum::new(0.05, 0.9);
        let ds = SyntheticImages::new(11, 8, (8, 8, 3), 3);
        let it = ds.batches(4);
        // Overfit a tiny dataset: the loss must drop.
        let (x, y) = it.next_batch().unwrap();
        let first = train_step(&model, &opt, &x, &y).unwrap().scalar_f64().unwrap();
        let mut last = first;
        for _ in 0..8 {
            last = train_step(&model, &opt, &x, &y).unwrap().scalar_f64().unwrap();
        }
        assert!(last.is_finite());
        assert!(last < first, "loss {first} -> {last} did not improve");
    }

    #[test]
    fn staged_step_matches_eager_structure() {
        let mut init = Initializer::seeded(3);
        let model = Arc::new(resnet_tiny(3, &mut init));
        let opt = Arc::new(Momentum::new(0.05, 0.9));
        let staged = {
            let model = model.clone();
            let opt = opt.clone();
            tfe_core::function("resnet_step", move |args| {
                let x = args[0].as_tensor().unwrap();
                let y = args[1].as_tensor().unwrap();
                Ok(vec![train_step(model.as_ref(), opt.as_ref(), x, y)?])
            })
        };
        let ds = SyntheticImages::new(11, 8, (8, 8, 3), 3);
        let it = ds.batches(2);
        let (x, y) = it.next_batch().unwrap();
        let l1 = staged.call_tensors(&[&x, &y]).unwrap()[0].scalar_f64().unwrap();
        let l2 = staged.call_tensors(&[&x, &y]).unwrap()[0].scalar_f64().unwrap();
        assert!(l1.is_finite() && l2.is_finite());
        assert!(l2 < l1, "staged training must make progress: {l1} -> {l2}");
        assert_eq!(staged.num_concrete(), 1);
    }

    #[test]
    fn checkpoint_round_trip() {
        let mut init = Initializer::seeded(4);
        let model = resnet_tiny(2, &mut init);
        let snapshot = tfe_state::checkpoint::save_to_value(model.trackable().as_ref());
        // Perturb one variable, restore, verify.
        let v = &model.variables()[0];
        let original = v.peek();
        v.restore(tfe_tensor::TensorData::zeros(v.dtype(), v.shape().clone())).unwrap();
        let status =
            tfe_state::checkpoint::restore_from_value(model.trackable().as_ref(), &snapshot)
                .unwrap();
        assert!(status.is_complete());
        assert_eq!(v.peek().to_f64_vec(), original.to_f64_vec());
    }
}
