//! Losses and metrics.

use tfe_runtime::{api, Result, Tensor};

/// Mean of per-example sparse softmax cross-entropy.
///
/// # Errors
/// Shape/label problems.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &Tensor) -> Result<Tensor> {
    let per_example = api::sparse_softmax_xent(logits, labels)?;
    api::reduce_mean(&per_example, &[], false)
}

/// Mean squared error.
///
/// # Errors
/// Shape mismatches.
pub fn mean_squared_error(predictions: &Tensor, targets: &Tensor) -> Result<Tensor> {
    let d = api::squared_difference(predictions, targets)?;
    api::reduce_mean(&d, &[], false)
}

/// Classification accuracy of `logits` against integer `labels`.
///
/// # Errors
/// Shape problems.
pub fn accuracy(logits: &Tensor, labels: &Tensor) -> Result<Tensor> {
    let predicted = api::argmax(logits, -1)?;
    let correct = api::equal(&predicted, labels)?;
    api::reduce_mean(&api::cast(&correct, tfe_tensor::DType::F32)?, &[], false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xent_decreases_with_confidence() {
        let labels = api::constant(vec![1i64], [1]).unwrap();
        let weak = api::constant(vec![0.0f32, 0.1], [1, 2]).unwrap();
        let strong = api::constant(vec![0.0f32, 5.0], [1, 2]).unwrap();
        let lw = softmax_cross_entropy(&weak, &labels).unwrap().scalar_f64().unwrap();
        let ls = softmax_cross_entropy(&strong, &labels).unwrap().scalar_f64().unwrap();
        assert!(ls < lw);
    }

    #[test]
    fn mse_zero_at_match() {
        let a = api::constant(vec![1.0f32, 2.0], [2]).unwrap();
        assert_eq!(mean_squared_error(&a, &a).unwrap().scalar_f64().unwrap(), 0.0);
        let b = api::constant(vec![2.0f32, 4.0], [2]).unwrap();
        assert_eq!(mean_squared_error(&a, &b).unwrap().scalar_f64().unwrap(), 2.5);
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = api::constant(vec![5.0f32, 0.0, 0.0, 5.0, 5.0, 0.0], [3, 2]).unwrap();
        let labels = api::constant(vec![0i64, 1, 1], [3]).unwrap();
        let acc = accuracy(&logits, &labels).unwrap().scalar_f64().unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
    }
}
