//! Neural-network layers built on the mode-agnostic op API — the same
//! layer code runs imperatively or under `function` tracing, which is the
//! paper's §6 claim ("the code used to generate these benchmarks all rely
//! on the same Model class").

use crate::init::Initializer;
use std::sync::Arc;
use tfe_runtime::{api, Result, RuntimeError, Tensor, Variable};
use tfe_state::{Trackable, TrackableGroup};
use tfe_tensor::{DType, Shape, TensorData};

/// A neural-network layer: a stateful callable over tensors.
pub trait Layer: Send + Sync {
    /// Apply the layer. `training` selects train-time behavior (dropout,
    /// batch-norm statistics).
    ///
    /// # Errors
    /// Shape/dtype mismatches or execution failures.
    fn call(&self, x: &Tensor, training: bool) -> Result<Tensor>;

    /// The layer's trainable variables.
    fn variables(&self) -> Vec<Variable>;

    /// The layer as a checkpointable object graph node.
    fn trackable(&self) -> Arc<dyn Trackable>;
}

/// Activation functions usable inside layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// No activation.
    Linear,
    /// max(x, 0)
    Relu,
    /// tanh(x)
    Tanh,
    /// logistic sigmoid
    Sigmoid,
    /// ln(1+e^x)
    Softplus,
}

impl Activation {
    /// Apply to a tensor.
    ///
    /// # Errors
    /// Execution failures.
    pub fn apply(self, x: &Tensor) -> Result<Tensor> {
        match self {
            Activation::Linear => Ok(x.clone()),
            Activation::Relu => api::relu(x),
            Activation::Tanh => api::tanh(x),
            Activation::Sigmoid => api::sigmoid(x),
            Activation::Softplus => api::softplus(x),
        }
    }
}

/// Fully-connected layer: `activation(x @ W + b)`.
pub struct Dense {
    kernel: Variable,
    bias: Variable,
    activation: Activation,
}

impl Dense {
    /// Create with the given fan-in/fan-out and a Glorot-style initializer.
    pub fn new(
        inputs: usize,
        units: usize,
        activation: Activation,
        init: &mut Initializer,
    ) -> Dense {
        Dense {
            kernel: Variable::new(init.glorot(DType::F32, &[inputs, units])),
            bias: Variable::new(TensorData::zeros(DType::F32, [units])),
            activation,
        }
    }

    /// The kernel variable.
    pub fn kernel(&self) -> &Variable {
        &self.kernel
    }

    /// The bias variable.
    pub fn bias(&self) -> &Variable {
        &self.bias
    }
}

impl Layer for Dense {
    fn call(&self, x: &Tensor, _training: bool) -> Result<Tensor> {
        let w = self.kernel.read()?;
        let b = self.bias.read()?;
        let y = api::add(&api::matmul(x, &w)?, &b)?;
        self.activation.apply(&y)
    }

    fn variables(&self) -> Vec<Variable> {
        vec![self.kernel.clone(), self.bias.clone()]
    }

    fn trackable(&self) -> Arc<dyn Trackable> {
        Arc::new(
            TrackableGroup::new()
                .with_variable("kernel", &self.kernel)
                .with_variable("bias", &self.bias),
        )
    }
}

/// 2-D convolution layer (NHWC input, HWIO filter).
pub struct Conv2d {
    filter: Variable,
    bias: Option<Variable>,
    strides: (usize, usize),
    padding: &'static str,
    activation: Activation,
}

impl Conv2d {
    /// Create a conv layer.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: (usize, usize),
        strides: (usize, usize),
        padding: &'static str,
        activation: Activation,
        use_bias: bool,
        init: &mut Initializer,
    ) -> Conv2d {
        Conv2d {
            filter: Variable::new(init.he(
                DType::F32,
                &[kernel.0, kernel.1, in_channels, out_channels],
                kernel.0 * kernel.1 * in_channels,
            )),
            bias: use_bias.then(|| Variable::new(TensorData::zeros(DType::F32, [out_channels]))),
            strides,
            padding,
            activation,
        }
    }
}

impl Layer for Conv2d {
    fn call(&self, x: &Tensor, _training: bool) -> Result<Tensor> {
        let f = self.filter.read()?;
        let mut y = api::conv2d(x, &f, self.strides, self.padding)?;
        if let Some(b) = &self.bias {
            y = api::add(&y, &b.read()?)?;
        }
        self.activation.apply(&y)
    }

    fn variables(&self) -> Vec<Variable> {
        let mut v = vec![self.filter.clone()];
        if let Some(b) = &self.bias {
            v.push(b.clone());
        }
        v
    }

    fn trackable(&self) -> Arc<dyn Trackable> {
        let mut g = TrackableGroup::new().with_variable("filter", &self.filter);
        if let Some(b) = &self.bias {
            g = g.with_variable("bias", b);
        }
        Arc::new(g)
    }
}

/// Batch normalization over the channel (last) axis.
///
/// Uses batch statistics while training and exponential moving averages at
/// inference, stored in non-trainable variables.
pub struct BatchNorm {
    gamma: Variable,
    beta: Variable,
    moving_mean: Variable,
    moving_var: Variable,
    momentum: f64,
    epsilon: f64,
}

impl BatchNorm {
    /// Create for `channels` features.
    pub fn new(channels: usize) -> BatchNorm {
        BatchNorm {
            gamma: Variable::new(TensorData::ones(DType::F32, [channels])),
            beta: Variable::new(TensorData::zeros(DType::F32, [channels])),
            moving_mean: Variable::new(TensorData::zeros(DType::F32, [channels])),
            moving_var: Variable::new(TensorData::ones(DType::F32, [channels])),
            momentum: 0.99,
            epsilon: 1e-5,
        }
    }

    fn normalize(&self, x: &Tensor, mean: &Tensor, var: &Tensor) -> Result<Tensor> {
        let eps =
            api::constant_data(TensorData::fill_f64(x.dtype(), Shape::scalar(), self.epsilon));
        let inv = api::rsqrt(&api::add(var, &eps)?)?;
        let centered = api::sub(x, mean)?;
        let g = self.gamma.read()?;
        let b = self.beta.read()?;
        api::add(&api::mul(&api::mul(&centered, &inv)?, &g)?, &b)
    }
}

impl Layer for BatchNorm {
    fn call(&self, x: &Tensor, training: bool) -> Result<Tensor> {
        let rank = x.rank() as i64;
        let axes: Vec<i64> = (0..rank - 1).collect();
        if training {
            let mean = api::reduce_mean(x, &axes, false)?;
            let centered = api::sub(x, &mean)?;
            let var = api::reduce_mean(&api::square(&centered)?, &axes, false)?;
            // Update moving statistics (stateful ops; they stage fine).
            let one_minus = api::constant_data(TensorData::fill_f64(
                x.dtype(),
                Shape::scalar(),
                1.0 - self.momentum,
            ));
            let mm = self.moving_mean.read()?;
            self.moving_mean.assign_sub(&api::mul(&api::sub(&mm, &mean)?, &one_minus)?)?;
            let mv = self.moving_var.read()?;
            self.moving_var.assign_sub(&api::mul(&api::sub(&mv, &var)?, &one_minus)?)?;
            self.normalize(x, &mean, &var)
        } else {
            let mean = self.moving_mean.read()?;
            let var = self.moving_var.read()?;
            self.normalize(x, &mean, &var)
        }
    }

    fn variables(&self) -> Vec<Variable> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    fn trackable(&self) -> Arc<dyn Trackable> {
        Arc::new(
            TrackableGroup::new()
                .with_variable("gamma", &self.gamma)
                .with_variable("beta", &self.beta)
                .with_variable("moving_mean", &self.moving_mean)
                .with_variable("moving_variance", &self.moving_var),
        )
    }
}

/// Max-pooling layer.
pub struct MaxPool2d {
    ksize: (usize, usize),
    strides: (usize, usize),
    padding: &'static str,
}

impl MaxPool2d {
    /// Create a pool layer.
    pub fn new(ksize: (usize, usize), strides: (usize, usize), padding: &'static str) -> MaxPool2d {
        MaxPool2d { ksize, strides, padding }
    }
}

impl Layer for MaxPool2d {
    fn call(&self, x: &Tensor, _training: bool) -> Result<Tensor> {
        api::max_pool(x, self.ksize, self.strides, self.padding)
    }

    fn variables(&self) -> Vec<Variable> {
        Vec::new()
    }

    fn trackable(&self) -> Arc<dyn Trackable> {
        Arc::new(TrackableGroup::new())
    }
}

/// Global average pooling over the spatial axes of NHWC input.
pub struct GlobalAvgPool;

impl Layer for GlobalAvgPool {
    fn call(&self, x: &Tensor, _training: bool) -> Result<Tensor> {
        api::reduce_mean(x, &[1, 2], false)
    }

    fn variables(&self) -> Vec<Variable> {
        Vec::new()
    }

    fn trackable(&self) -> Arc<dyn Trackable> {
        Arc::new(TrackableGroup::new())
    }
}

/// Dropout layer (active only in training mode).
pub struct Dropout {
    keep_prob: f64,
}

impl Dropout {
    /// Create with the probability of *keeping* an activation.
    pub fn new(keep_prob: f64) -> Dropout {
        Dropout { keep_prob }
    }
}

impl Layer for Dropout {
    fn call(&self, x: &Tensor, training: bool) -> Result<Tensor> {
        if training {
            api::dropout(x, self.keep_prob)
        } else {
            Ok(x.clone())
        }
    }

    fn variables(&self) -> Vec<Variable> {
        Vec::new()
    }

    fn trackable(&self) -> Arc<dyn Trackable> {
        Arc::new(TrackableGroup::new())
    }
}

/// Flatten everything but the leading (batch) axis.
pub struct Flatten;

impl Layer for Flatten {
    fn call(&self, x: &Tensor, _training: bool) -> Result<Tensor> {
        let dims = x.sym_shape();
        let batch = dims.dims()[0].map(|d| d as i64).unwrap_or(-1);
        if batch == -1 {
            api::reshape(x, &[-1, flat_inner(&dims)?])
        } else {
            api::reshape(x, &[batch, -1])
        }
    }

    fn variables(&self) -> Vec<Variable> {
        Vec::new()
    }

    fn trackable(&self) -> Arc<dyn Trackable> {
        Arc::new(TrackableGroup::new())
    }
}

fn flat_inner(dims: &tfe_ops::SymShape) -> Result<i64> {
    dims.dims()[1..].iter().try_fold(1i64, |acc, d| d.map(|v| acc * v as i64)).ok_or_else(|| {
        RuntimeError::SymbolicValue("flatten requires known non-batch dimensions".to_string())
    })
}

/// A sequential stack of layers.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty stack.
    pub fn new() -> Sequential {
        Sequential { layers: Vec::new() }
    }

    /// Append a layer.
    pub fn push(mut self, layer: impl Layer + 'static) -> Sequential {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Default for Sequential {
    fn default() -> Sequential {
        Sequential::new()
    }
}

impl Layer for Sequential {
    fn call(&self, x: &Tensor, training: bool) -> Result<Tensor> {
        let mut cur = x.clone();
        for layer in &self.layers {
            cur = layer.call(&cur, training)?;
        }
        Ok(cur)
    }

    fn variables(&self) -> Vec<Variable> {
        self.layers.iter().flat_map(|l| l.variables()).collect()
    }

    fn trackable(&self) -> Arc<dyn Trackable> {
        let mut g = TrackableGroup::new();
        for (i, layer) in self.layers.iter().enumerate() {
            g = g.with_node(&format!("layer{i}"), layer.trackable());
        }
        Arc::new(g)
    }
}

/// Count total parameters across a layer's variables.
pub fn num_parameters(layer: &dyn Layer) -> usize {
    layer.variables().iter().map(|v| v.shape().num_elements()).sum()
}

/// The paper's Listing 3 model: `out(softplus(x * v))` with a dense layer —
/// used by the checkpointing tests and docs.
pub struct Net {
    /// The scalar variable `v`.
    pub v: Variable,
    /// The dense output layer.
    pub out: Dense,
}

impl Net {
    /// Build with a fresh initializer.
    pub fn new(init: &mut Initializer) -> Net {
        Net {
            v: Variable::new(TensorData::scalar(1.0f32)),
            out: Dense::new(1, 1, Activation::Linear, init),
        }
    }
}

impl Layer for Net {
    fn call(&self, x: &Tensor, training: bool) -> Result<Tensor> {
        let v = self.v.read()?;
        let h = api::softplus(&api::mul(x, &v)?)?;
        self.out.call(&h, training)
    }

    fn variables(&self) -> Vec<Variable> {
        let mut vars = vec![self.v.clone()];
        vars.extend(self.out.variables());
        vars
    }

    fn trackable(&self) -> Arc<dyn Trackable> {
        Arc::new(
            TrackableGroup::new()
                .with_variable("v", &self.v)
                .with_node("out", self.out.trackable()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn init() -> Initializer {
        Initializer::seeded(7)
    }

    #[test]
    fn dense_shapes_and_variables() {
        let d = Dense::new(4, 3, Activation::Relu, &mut init());
        let x = api::zeros(DType::F32, [2, 4]);
        let y = d.call(&x, false).unwrap();
        assert_eq!(y.shape().unwrap().dims(), &[2, 3]);
        assert_eq!(d.variables().len(), 2);
        assert_eq!(num_parameters(&d), 4 * 3 + 3);
    }

    #[test]
    fn conv_and_pool_shapes() {
        let c = Conv2d::new(3, 8, (3, 3), (1, 1), "SAME", Activation::Relu, true, &mut init());
        let x = api::zeros(DType::F32, [2, 8, 8, 3]);
        let y = c.call(&x, false).unwrap();
        assert_eq!(y.shape().unwrap().dims(), &[2, 8, 8, 8]);
        let p = MaxPool2d::new((2, 2), (2, 2), "VALID");
        let z = p.call(&y, false).unwrap();
        assert_eq!(z.shape().unwrap().dims(), &[2, 4, 4, 8]);
        let g = GlobalAvgPool;
        let q = g.call(&z, false).unwrap();
        assert_eq!(q.shape().unwrap().dims(), &[2, 8]);
    }

    #[test]
    fn batchnorm_normalizes_in_training() {
        let bn = BatchNorm::new(2);
        let x = api::constant(vec![1.0f32, 10.0, 3.0, 30.0, 5.0, 50.0, 7.0, 70.0], [4, 2]).unwrap();
        let y = bn.call(&x, true).unwrap();
        let v = y.to_f64_vec().unwrap();
        // Each channel should be ~zero-mean.
        let c0: f64 = v.iter().step_by(2).sum::<f64>() / 4.0;
        let c1: f64 = v.iter().skip(1).step_by(2).sum::<f64>() / 4.0;
        assert!(c0.abs() < 1e-5);
        assert!(c1.abs() < 1e-5);
        // Moving stats moved toward batch stats.
        assert!(bn.moving_mean.peek().to_f64_vec()[0] > 0.0);
    }

    #[test]
    fn batchnorm_inference_uses_moving_stats() {
        let bn = BatchNorm::new(1);
        let x = api::constant(vec![5.0f32, 5.0], [2, 1]).unwrap();
        // With default moving stats (mean 0, var 1): y ~= gamma*5 + beta = 5.
        let y = bn.call(&x, false).unwrap();
        assert!((y.to_f64_vec().unwrap()[0] - 5.0).abs() < 1e-3);
    }

    #[test]
    fn dropout_modes() {
        tfe_runtime::context::set_random_seed(3);
        let d = Dropout::new(0.5);
        let x = api::ones(DType::F32, [100]);
        let train = d.call(&x, true).unwrap();
        assert!(train.to_f64_vec().unwrap().contains(&0.0));
        let infer = d.call(&x, false).unwrap();
        assert_eq!(infer.to_f64_vec().unwrap(), vec![1.0; 100]);
    }

    #[test]
    fn flatten_and_sequential() {
        let model = Sequential::new()
            .push(Flatten)
            .push(Dense::new(12, 4, Activation::Relu, &mut init()))
            .push(Dense::new(4, 2, Activation::Linear, &mut init()));
        assert_eq!(model.len(), 3);
        let x = api::zeros(DType::F32, [5, 2, 3, 2]);
        let y = model.call(&x, false).unwrap();
        assert_eq!(y.shape().unwrap().dims(), &[5, 2]);
        assert_eq!(model.variables().len(), 4);
    }

    #[test]
    fn listing3_net_runs_and_tracks() {
        let net = Net::new(&mut init());
        let x = api::constant(vec![1.0f32, -2.0], [2, 1]).unwrap();
        let y = net.call(&x, false).unwrap();
        assert_eq!(y.shape().unwrap().dims(), &[2, 1]);
        // Trackable graph has edges v and out{kernel,bias} like Figure 1.
        let snapshot = tfe_state::checkpoint::save_to_value(net.trackable().as_ref());
        let text = snapshot.to_json();
        assert!(text.contains("\"v\""));
        assert!(text.contains("\"out\""));
        assert!(text.contains("\"kernel\""));
        assert!(text.contains("\"bias\""));
    }

    #[test]
    fn layers_work_under_tracing() {
        let d = Arc::new(Dense::new(3, 2, Activation::Relu, &mut init()));
        let f = {
            let d = d.clone();
            tfe_core::function1("dense_fn", move |x| d.call(x, false))
        };
        let x = api::ones(DType::F32, [1, 3]);
        let eager = d.call(&x, false).unwrap();
        let staged = f.call1(&x).unwrap();
        assert_eq!(eager.to_f64_vec().unwrap(), staged.to_f64_vec().unwrap());
    }
}
