//! # tfe-nn
//!
//! The model zoo and training utilities the TensorFlow Eager paper's
//! evaluation needs (§6): layers, optimizers, losses, synthetic datasets
//! with checkpointable iterators, ResNet-50 (Figure 3, Table 1) and the
//! L2HMC sampler (Figure 4). All of it is written against the
//! mode-agnostic op API, so the same model code runs imperatively or
//! staged under `tfe_core::function`.
//!
//! ```
//! use tfe_nn::{layers::{Activation, Dense, Layer}, init::Initializer};
//! use tfe_runtime::api;
//! # fn main() -> Result<(), tfe_runtime::RuntimeError> {
//! let mut init = Initializer::seeded(0);
//! let layer = Dense::new(4, 2, Activation::Relu, &mut init);
//! let y = layer.call(&api::zeros(tfe_tensor::DType::F32, [3, 4]), false)?;
//! assert_eq!(y.shape()?.dims(), &[3, 2]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod data;
pub mod dist_train;
pub mod init;
pub mod l2hmc;
pub mod layers;
pub mod losses;
pub mod optimizer;
pub mod resnet;
pub mod rnn;

pub use dist_train::{mse_grad_fn, DataParallel, Reduction};
pub use init::Initializer;
pub use layers::{Activation, Layer, Sequential};
pub use optimizer::{Adam, Momentum, Optimizer, Sgd};

/// Build a small MLP regressor/classifier (used by examples and benches).
pub fn mlp(
    inputs: usize,
    hidden: &[usize],
    outputs: usize,
    activation: Activation,
    init: &mut Initializer,
) -> Sequential {
    let mut model = Sequential::new();
    let mut prev = inputs;
    for &h in hidden {
        model = model.push(layers::Dense::new(prev, h, activation, init));
        prev = h;
    }
    model.push(layers::Dense::new(prev, outputs, Activation::Linear, init))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::losses::mean_squared_error;
    use tfe_autodiff::GradientTape;
    use tfe_runtime::api;

    #[test]
    fn mlp_builder_shapes() {
        let mut init = Initializer::seeded(9);
        let model = mlp(8, &[16, 16], 1, Activation::Relu, &mut init);
        assert_eq!(model.len(), 3);
        let x = api::zeros(tfe_tensor::DType::F32, [4, 8]);
        let y = model.call(&x, false).unwrap();
        assert_eq!(y.shape().unwrap().dims(), &[4, 1]);
    }

    #[test]
    fn mlp_learns_regression() {
        let mut init = Initializer::seeded(10);
        let model = mlp(4, &[32], 1, Activation::Tanh, &mut init);
        let ds = data::SyntheticRegression::new(5, 4);
        let opt = Adam::new(0.01);
        let vars = model.variables();
        let mut first = None;
        let mut last = 0.0;
        for step in 0..60 {
            let (x, y) = ds.batch(step, 64).unwrap();
            let tape = GradientTape::new();
            let pred = model.call(&x, true).unwrap();
            let loss = mean_squared_error(&pred, &y).unwrap();
            last = loss.scalar_f64().unwrap();
            if first.is_none() {
                first = Some(last);
            }
            optimizer::minimize(&opt, tape, &loss, &vars).unwrap();
        }
        let first = first.unwrap();
        assert!(last < first * 0.7, "loss {first} -> {last}");
    }

    #[test]
    fn staged_mlp_step_trains() {
        use std::sync::Arc;
        let mut init = Initializer::seeded(11);
        let model = Arc::new(mlp(4, &[16], 1, Activation::Tanh, &mut init));
        let opt = Arc::new(Sgd::new(0.05));
        let vars = model.variables();
        let step = {
            let model = model.clone();
            let opt = opt.clone();
            tfe_core::function("mlp_step", move |args| {
                let x = args[0].as_tensor().unwrap();
                let y = args[1].as_tensor().unwrap();
                let tape = GradientTape::new();
                let pred = model.call(x, true)?;
                let loss = mean_squared_error(&pred, y)?;
                optimizer::minimize(opt.as_ref(), tape, &loss, &vars)?;
                Ok(vec![loss])
            })
        };
        let ds = data::SyntheticRegression::new(6, 4);
        let (x, y) = ds.batch(0, 32).unwrap();
        let l0 = step.call_tensors(&[&x, &y]).unwrap()[0].scalar_f64().unwrap();
        let mut l = l0;
        for _ in 0..30 {
            l = step.call_tensors(&[&x, &y]).unwrap()[0].scalar_f64().unwrap();
        }
        assert!(l < l0, "staged training stalled: {l0} -> {l}");
        assert_eq!(step.num_concrete(), 1);
    }
}
