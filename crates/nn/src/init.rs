//! Weight initializers with a private, seedable RNG (independent of the
//! runtime's stateful random ops, so model construction is reproducible no
//! matter what the program samples elsewhere).

use tfe_tensor::rng::TensorRng;
use tfe_tensor::{DType, Shape, TensorData};

/// A seeded initializer handed to layer constructors.
#[derive(Debug)]
pub struct Initializer {
    rng: TensorRng,
}

impl Initializer {
    /// Seeded construction; equal seeds produce equal models.
    pub fn seeded(seed: u64) -> Initializer {
        Initializer { rng: TensorRng::seed_from_u64(seed) }
    }

    /// Glorot/Xavier uniform: `U(-l, l)` with `l = sqrt(6/(fan_in+fan_out))`.
    ///
    /// # Panics
    /// Never for float dtypes (internal RNG can't fail there).
    pub fn glorot(&mut self, dtype: DType, dims: &[usize]) -> TensorData {
        let (fan_in, fan_out) = match dims {
            [i, o] => (*i, *o),
            [kh, kw, i, o] => (kh * kw * i, kh * kw * o),
            other => {
                let n: usize = other.iter().product();
                (n, n)
            }
        };
        let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
        self.rng
            .uniform(dtype, Shape::new(dims.to_vec()), -limit, limit)
            .expect("glorot init on float dtype")
    }

    /// He/Kaiming truncated normal with `stddev = sqrt(2/fan_in)` — the
    /// classic ResNet initializer.
    ///
    /// # Panics
    /// Never for float dtypes.
    pub fn he(&mut self, dtype: DType, dims: &[usize], fan_in: usize) -> TensorData {
        let stddev = (2.0 / fan_in.max(1) as f64).sqrt();
        self.rng
            .truncated_normal(dtype, Shape::new(dims.to_vec()), 0.0, stddev)
            .expect("he init on float dtype")
    }

    /// Plain normal samples.
    ///
    /// # Panics
    /// Never for float dtypes.
    pub fn normal(&mut self, dtype: DType, dims: &[usize], stddev: f64) -> TensorData {
        self.rng
            .normal(dtype, Shape::new(dims.to_vec()), 0.0, stddev)
            .expect("normal init on float dtype")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Initializer::seeded(1);
        let mut b = Initializer::seeded(1);
        assert_eq!(a.glorot(DType::F32, &[3, 4]), b.glorot(DType::F32, &[3, 4]));
        let mut c = Initializer::seeded(2);
        assert_ne!(a.glorot(DType::F32, &[3, 4]), c.glorot(DType::F32, &[3, 4]));
    }

    #[test]
    fn glorot_within_limit() {
        let mut init = Initializer::seeded(5);
        let t = init.glorot(DType::F64, &[10, 10]);
        let limit = (6.0f64 / 20.0).sqrt();
        assert!(t.to_f64_vec().iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn he_scale_reasonable() {
        let mut init = Initializer::seeded(5);
        let t = init.he(DType::F32, &[3, 3, 16, 32], 3 * 3 * 16);
        let vals = t.to_f64_vec();
        let std = {
            let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
            (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt()
        };
        let expected = (2.0f64 / 144.0).sqrt();
        assert!((std - expected).abs() < expected * 0.3, "std {std} vs {expected}");
    }
}
