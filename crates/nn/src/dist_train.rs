//! Data-parallel training over a `tfe_dist` cluster (§4.5): shard a batch
//! across workers, run one staged gradient function per shard remotely,
//! aggregate gradients with a deterministic collective, and apply the
//! optimizer update on the coordinator.
//!
//! [`DataParallel::local_step`] is the bit-reference: it runs the *same*
//! staged function on the same shards in the same order on the
//! coordinator, aggregates with the collective's local reference
//! emulation, and applies the same update — so distributed training is
//! required to match it bitwise (see `crates/dist/src/collective.rs` for
//! the determinism policy).

use crate::layers::Layer;
use crate::losses::mean_squared_error;
use crate::optimizer::Optimizer;
use std::sync::Arc;
use tfe_autodiff::GradientTape;
use tfe_core::Func;
use tfe_dist::{
    ps_all_reduce_mean, ps_reference_mean, ring_all_reduce_mean, ring_reference_mean, Cluster,
    DistError, RemoteArg, RemoteTensor,
};
use tfe_runtime::{api, context, ExecMode, RuntimeError, Tensor, Variable};
use tfe_tensor::TensorData;

/// Result alias matching the distribution layer.
pub type Result<T, E = DistError> = std::result::Result<T, E>;

/// How per-worker gradients are combined into one update.
#[derive(Debug, Clone)]
pub enum Reduction {
    /// Relay all shard gradients to one parameter-server device, sum in
    /// worker order, divide by the worker count.
    ParameterServer {
        /// Device name of the parameter server (e.g.
        /// `/job:ps/task:0/device:CPU:0`).
        ps_device: String,
    },
    /// Ring all-reduce: chunked reduce-scatter + all-gather across the
    /// workers themselves (no dedicated parameter server).
    Ring,
}

/// Trace a gradient function `[loss, grad_0, …, grad_{V-1}] = f(x, y)` for
/// `model` under mean-squared-error loss. Variables that receive no
/// gradient contribute zeros, so the output arity is stable and equals
/// `1 + vars.len()`.
pub fn mse_grad_fn<L: Layer + Send + Sync + 'static>(
    name: &str,
    model: Arc<L>,
    vars: Vec<Variable>,
) -> Func {
    tfe_core::function(name, move |args| {
        let x = args[0]
            .as_tensor()
            .ok_or_else(|| RuntimeError::Internal("grad fn expects tensor x".to_string()))?;
        let y = args[1]
            .as_tensor()
            .ok_or_else(|| RuntimeError::Internal("grad fn expects tensor y".to_string()))?;
        let tape = GradientTape::new();
        let pred = model.call(x, true)?;
        let loss = mean_squared_error(&pred, y)?;
        let refs: Vec<&Variable> = vars.iter().collect();
        let grads = tape.gradient_vars(&loss, &refs)?;
        let mut out = vec![loss];
        for (g, v) in grads.into_iter().zip(&vars) {
            out.push(match g {
                Some(g) => g,
                None => api::constant_data(TensorData::zeros(v.dtype(), v.shape().clone())),
            });
        }
        Ok(out)
    })
}

/// A data-parallel training step over a running cluster.
pub struct DataParallel {
    cluster: Cluster,
    workers: Vec<String>,
    reduction: Reduction,
    grad_fn: String,
    vars: Vec<Variable>,
    opt: Arc<dyn Optimizer>,
}

impl DataParallel {
    /// Build a trainer.
    ///
    /// `grad_fn` is the library name of an already-traced gradient
    /// function (see [`mse_grad_fn`]) returning `[loss, grad per var]`;
    /// `workers` are the devices that each run one shard.
    ///
    /// # Errors
    /// Empty worker lists and unknown devices are rejected up front.
    pub fn new(
        cluster: Cluster,
        workers: Vec<String>,
        reduction: Reduction,
        grad_fn: &str,
        vars: Vec<Variable>,
        opt: Arc<dyn Optimizer>,
    ) -> Result<DataParallel> {
        if workers.is_empty() {
            return Err(DistError::Spec("data-parallel trainer needs at least one worker".into()));
        }
        for w in &workers {
            cluster.ping(w)?;
        }
        if let Reduction::ParameterServer { ps_device } = &reduction {
            cluster.ping(ps_device)?;
        }
        Ok(DataParallel { cluster, workers, reduction, grad_fn: grad_fn.to_string(), vars, opt })
    }

    /// The number of workers (and therefore shards).
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The cluster this trainer drives.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Slice `(x, y)` into one equal row-shard per worker.
    fn shard(&self, x: &Tensor, y: &Tensor) -> Result<Vec<(Tensor, Tensor)>> {
        let n = self.workers.len();
        let rows = x
            .shape()
            .map_err(DistError::from)?
            .dims()
            .first()
            .copied()
            .ok_or_else(|| DistError::Spec("batch must have a leading row axis".into()))?;
        if rows % n != 0 {
            return Err(DistError::Spec(format!(
                "batch of {rows} rows does not shard evenly over {n} workers"
            )));
        }
        let per = (rows / n) as i64;
        let slice_rows = |t: &Tensor, k: usize| -> Result<Tensor> {
            let rank = t.shape().map_err(DistError::from)?.dims().len();
            let mut begin = vec![0i64; rank];
            let mut size = vec![-1i64; rank];
            begin[0] = k as i64 * per;
            size[0] = per;
            api::slice(t, &begin, &size).map_err(DistError::from)
        };
        (0..n).map(|k| Ok((slice_rows(x, k)?, slice_rows(y, k)?))).collect()
    }

    /// One distributed step: dispatch shards, all-reduce gradients, apply
    /// the optimizer on the coordinator. Returns the mean shard loss.
    ///
    /// # Errors
    /// Typed [`DistError`] — sharding misfits, worker faults, transport
    /// failures — always within the RPC deadlines.
    pub fn step(&self, x: &Tensor, y: &Tensor) -> Result<f64> {
        let shards = self.shard(x, y)?;
        let n = self.workers.len();

        // Fan out: one remote gradient-function call per worker.
        let mut outs: Vec<Vec<RemoteTensor>> = Vec::with_capacity(n);
        for (dev, (xs, ys)) in self.workers.iter().zip(&shards) {
            let out = self.cluster.call_function(
                dev,
                &self.grad_fn,
                &[RemoteArg::from(xs), RemoteArg::from(ys)],
            )?;
            if out.len() != 1 + self.vars.len() {
                return Err(DistError::Spec(format!(
                    "grad fn `{}` returned {} outputs, expected {}",
                    self.grad_fn,
                    out.len(),
                    1 + self.vars.len()
                )));
            }
            outs.push(out);
        }

        // Aggregate each variable's gradient with the chosen collective.
        let mut pairs = Vec::with_capacity(self.vars.len());
        for (i, v) in self.vars.iter().enumerate() {
            let shard_grads: Vec<RemoteTensor> = outs.iter().map(|o| o[1 + i].clone()).collect();
            let mean = match &self.reduction {
                Reduction::ParameterServer { ps_device } => {
                    ps_all_reduce_mean(&self.cluster, ps_device, &shard_grads)?
                }
                Reduction::Ring => {
                    let reduced = ring_all_reduce_mean(&self.cluster, &shard_grads)?;
                    reduced.into_iter().next().expect("one result per worker")
                }
            };
            pairs.push((mean.fetch()?, v.clone()));
        }

        // Mean shard loss, for reporting.
        let mut loss_sum = 0.0;
        for out in &outs {
            loss_sum += out[0].fetch()?.scalar_f64().map_err(DistError::from)?;
        }

        self.opt.apply(&pairs).map_err(DistError::from)?;
        Ok(loss_sum / n as f64)
    }

    /// The single-process bit-reference for [`DataParallel::step`]: the
    /// same staged function on the same shards in worker order, aggregated
    /// with the collective's local reference emulation, applied with the
    /// same optimizer. Distributed and local training from identical
    /// initial state must stay bitwise identical.
    ///
    /// # Errors
    /// Sharding misfits or local execution failures.
    pub fn local_step(&self, x: &Tensor, y: &Tensor) -> Result<f64> {
        let shards = self.shard(x, y)?;
        let n = self.workers.len();
        let f = context::library().get(&self.grad_fn).ok_or_else(|| {
            DistError::Spec(format!("function `{}` not in library", self.grad_fn))
        })?;
        let device = context::device_manager().host_cpu();

        let mut outs = Vec::with_capacity(n);
        for (xs, ys) in &shards {
            let inputs =
                vec![xs.value().map_err(DistError::from)?, ys.value().map_err(DistError::from)?];
            let out =
                tfe_runtime::executor::run_function(&f, &inputs, &device, ExecMode::SerialPlanned)
                    .map_err(DistError::from)?;
            if out.len() != 1 + self.vars.len() {
                return Err(DistError::Spec(format!(
                    "grad fn `{}` returned {} outputs, expected {}",
                    self.grad_fn,
                    out.len(),
                    1 + self.vars.len()
                )));
            }
            outs.push(out);
        }

        let mut pairs = Vec::with_capacity(self.vars.len());
        for (i, v) in self.vars.iter().enumerate() {
            let shard_grads: Vec<Arc<TensorData>> = outs.iter().map(|o| o[1 + i].clone()).collect();
            let mean = match &self.reduction {
                Reduction::ParameterServer { .. } => ps_reference_mean(&shard_grads)?,
                Reduction::Ring => ring_reference_mean(&shard_grads)?,
            };
            pairs.push((Tensor::from_data(mean), v.clone()));
        }

        let mut loss_sum = 0.0;
        for out in &outs {
            loss_sum += out[0]
                .to_f64_vec()
                .first()
                .copied()
                .ok_or_else(|| DistError::Spec("grad fn loss output is empty".into()))?;
        }

        self.opt.apply(&pairs).map_err(DistError::from)?;
        Ok(loss_sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mlp, optimizer::Sgd, Activation, Initializer};
    use tfe_core::Arg;
    use tfe_dist::ClusterSpec;
    use tfe_tensor::{DType, Shape};

    fn var_bits(vars: &[Variable]) -> Vec<Vec<u64>> {
        vars.iter().map(|v| v.peek().to_f64_vec().iter().map(|f| f.to_bits()).collect()).collect()
    }

    fn setup(tag: &str, seed: u64) -> (Arc<crate::Sequential>, Vec<Variable>, String) {
        let mut init = Initializer::seeded(seed);
        let model = Arc::new(mlp(4, &[8], 1, Activation::Tanh, &mut init));
        let vars = model.variables();
        let f = mse_grad_fn(&format!("dp_grad_{tag}"), model.clone(), vars.clone());
        let conc = f
            .concrete_for(&[
                Arg::from(&api::zeros(DType::F32, [4, 4])),
                Arg::from(&api::zeros(DType::F32, [4, 1])),
            ])
            .unwrap();
        (model, vars, conc.function.name.clone())
    }

    fn batch(seed: u64) -> (Tensor, Tensor) {
        let mut rng = tfe_tensor::rng::TensorRng::seed_from_u64(seed);
        let x = Tensor::from_data(rng.uniform(DType::F32, Shape::from([8, 4]), -1.0, 1.0).unwrap());
        let y = Tensor::from_data(rng.uniform(DType::F32, Shape::from([8, 1]), -1.0, 1.0).unwrap());
        (x, y)
    }

    #[test]
    fn distributed_step_matches_local_reference_bitwise() {
        tfe_core::init();
        for (reduction_tag, make) in [("ps", true), ("ring", false)] {
            // Two models with identical seeds: one trained distributed,
            // one trained through the local bit-reference.
            let (_m1, vars_dist, name_dist) = setup(&format!("d_{reduction_tag}"), 42);
            let (_m2, vars_local, name_local) = setup(&format!("l_{reduction_tag}"), 42);
            assert_eq!(var_bits(&vars_dist), var_bits(&vars_local), "same seed, same init");

            let spec = ClusterSpec::new().with_job("train", 2).unwrap().with_job("ps", 1).unwrap();
            let workers = vec![
                "/job:train/task:0/device:CPU:0".to_string(),
                "/job:train/task:1/device:CPU:0".to_string(),
            ];
            let reduction = if make {
                Reduction::ParameterServer { ps_device: "/job:ps/task:0/device:CPU:0".to_string() }
            } else {
                Reduction::Ring
            };

            let dist = DataParallel::new(
                Cluster::start(&spec),
                workers.clone(),
                reduction.clone(),
                &name_dist,
                vars_dist.clone(),
                Arc::new(Sgd::new(0.05)),
            )
            .unwrap();
            let local = DataParallel::new(
                Cluster::start(&spec),
                workers,
                reduction,
                &name_local,
                vars_local.clone(),
                Arc::new(Sgd::new(0.05)),
            )
            .unwrap();

            let mut dist_losses = Vec::new();
            let mut local_losses = Vec::new();
            for step in 0..3 {
                let (x, y) = batch(100 + step);
                dist_losses.push(dist.step(&x, &y).unwrap());
                local_losses.push(local.local_step(&x, &y).unwrap());
            }
            assert_eq!(
                var_bits(&vars_dist),
                var_bits(&vars_local),
                "{reduction_tag}: distributed and local training diverged"
            );
            for (d, l) in dist_losses.iter().zip(&local_losses) {
                assert_eq!(d.to_bits(), l.to_bits(), "{reduction_tag}: losses diverged");
            }
            // Training moved: losses change across steps.
            assert!(dist_losses[0] != dist_losses[2], "no training progress");
        }
    }

    #[test]
    fn uneven_batch_is_a_typed_error() {
        tfe_core::init();
        let (_m, vars, name) = setup("uneven", 7);
        let spec = ClusterSpec::new().with_job("train", 2).unwrap();
        let dp = DataParallel::new(
            Cluster::start(&spec),
            vec![
                "/job:train/task:0/device:CPU:0".to_string(),
                "/job:train/task:1/device:CPU:0".to_string(),
            ],
            Reduction::Ring,
            &name,
            vars,
            Arc::new(Sgd::new(0.1)),
        )
        .unwrap();
        let x = api::zeros(DType::F32, [7, 4]);
        let y = api::zeros(DType::F32, [7, 1]);
        assert!(matches!(dp.step(&x, &y), Err(DistError::Spec(_))));
    }
}
