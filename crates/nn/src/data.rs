//! Synthetic datasets with checkpointable iterators.
//!
//! The paper's benchmarks measure throughput, not accuracy, so synthetic
//! data preserves everything that matters (DESIGN.md §3 substitution #4).
//! Iterator positions serialize through the §4.3 object-graph machinery —
//! "an iterator over input data whose position in a dataset is serialized"
//! is one of the paper's explicit examples of non-variable state.

use parking_lot::Mutex;
use std::sync::Arc;
use tfe_encode::Value;
use tfe_runtime::{api, Result, Tensor};
use tfe_state::MutableState;
use tfe_tensor::rng::TensorRng;
use tfe_tensor::{DType, Shape, TensorData};

/// A deterministic synthetic classification dataset: `images` of shape
/// `(n, h, w, c)` in `[0, 1)` and integer labels in `[0, classes)`. Element
/// `i` is a pure function of `(seed, i)`, so epochs are reproducible and
/// restart-safe.
#[derive(Debug, Clone)]
pub struct SyntheticImages {
    seed: u64,
    len: usize,
    shape: (usize, usize, usize),
    classes: usize,
}

impl SyntheticImages {
    /// Create a dataset description.
    pub fn new(
        seed: u64,
        len: usize,
        shape: (usize, usize, usize),
        classes: usize,
    ) -> SyntheticImages {
        SyntheticImages { seed, len, shape, classes }
    }

    /// Dataset length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// Materialize element `i` (image, label).
    ///
    /// # Panics
    /// `i >= len`.
    pub fn element(&self, i: usize) -> (TensorData, i64) {
        assert!(i < self.len, "element {i} out of range");
        let mut rng =
            TensorRng::seed_from_u64(self.seed.wrapping_mul(0x9E37).wrapping_add(i as u64));
        let (h, w, c) = self.shape;
        let img = rng.uniform(DType::F32, Shape::from([h, w, c]), 0.0, 1.0).expect("float rng");
        let label = rng
            .uniform_int(DType::I64, Shape::scalar(), 0, self.classes as i64)
            .expect("int rng")
            .to_i64_vec()[0];
        (img, label)
    }

    /// Build a batching iterator starting at element 0.
    pub fn batches(&self, batch_size: usize) -> DatasetIterator {
        DatasetIterator { dataset: self.clone(), batch_size, position: Arc::new(Mutex::new(0)) }
    }
}

/// A stateful, checkpointable batch iterator over [`SyntheticImages`].
#[derive(Clone)]
pub struct DatasetIterator {
    dataset: SyntheticImages,
    batch_size: usize,
    position: Arc<Mutex<usize>>,
}

impl DatasetIterator {
    /// Current position (element index).
    pub fn position(&self) -> usize {
        *self.position.lock()
    }

    /// Produce the next `(images, labels)` batch, wrapping at the end of
    /// the dataset (infinite epochs).
    ///
    /// # Errors
    /// Tensor construction failures.
    pub fn next_batch(&self) -> Result<(Tensor, Tensor)> {
        let mut pos = self.position.lock();
        let (h, w, c) = self.dataset.shape;
        let mut images = Vec::with_capacity(self.batch_size * h * w * c);
        let mut labels = Vec::with_capacity(self.batch_size);
        // Each element is a pure function of (seed, index), so the batch
        // materializes across the worker pool; fixed chunks combined in
        // ascending order keep the batch byte-identical to the serial
        // loop at any thread count.
        let base = *pos;
        let len = self.dataset.len.max(1);
        let elements = tfe_parallel::par_reduce(
            self.batch_size,
            1,
            |r: std::ops::Range<usize>| -> Vec<(TensorData, i64)> {
                r.map(|j| self.dataset.element((base + j) % len)).collect()
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        )
        .unwrap_or_default();
        for (img, label) in &elements {
            images.extend(img.as_slice::<f32>()?.iter().copied());
            labels.push(*label);
        }
        *pos += self.batch_size;
        let images = TensorData::from_vec(images, Shape::from([self.batch_size, h, w, c]))?;
        let labels = TensorData::from_vec(labels, Shape::from([self.batch_size]))?;
        Ok((Tensor::from_data(images), Tensor::from_data(labels)))
    }

    /// The iterator's checkpointable state handle.
    pub fn state(&self) -> Arc<dyn MutableState> {
        Arc::new(IteratorState { position: self.position.clone() })
    }
}

struct IteratorState {
    position: Arc<Mutex<usize>>,
}

impl MutableState for IteratorState {
    fn save_state(&self) -> Value {
        Value::Int(*self.position.lock() as i64)
    }

    fn restore_state(&self, value: &Value) -> std::result::Result<(), String> {
        let p = value.as_i64().ok_or("iterator state must be an int")?;
        *self.position.lock() = p as usize;
        Ok(())
    }
}

/// A synthetic regression dataset used by the quickstart/MLP examples:
/// `y = sin(sum(x)) + noise`.
#[derive(Debug, Clone)]
pub struct SyntheticRegression {
    seed: u64,
    features: usize,
}

impl SyntheticRegression {
    /// Create with a feature width.
    pub fn new(seed: u64, features: usize) -> SyntheticRegression {
        SyntheticRegression { seed, features }
    }

    /// Sample a batch `(x, y)`.
    ///
    /// # Errors
    /// Tensor failures.
    pub fn batch(&self, index: u64, batch_size: usize) -> Result<(Tensor, Tensor)> {
        let mut rng = TensorRng::seed_from_u64(self.seed.wrapping_add(index));
        let x = rng.normal(DType::F32, Shape::from([batch_size, self.features]), 0.0, 1.0)?;
        let xt = Tensor::from_data(x);
        let s = api::reduce_sum(&xt, &[1], true)?;
        let clean = api::sin(&s)?;
        let noise = rng.normal(DType::F32, Shape::from([batch_size, 1]), 0.0, 0.05)?;
        let y = api::add(&clean, &Tensor::from_data(noise))?;
        Ok((xt, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_state::TrackableGroup;

    #[test]
    fn elements_deterministic() {
        let ds = SyntheticImages::new(7, 100, (4, 4, 3), 10);
        let (a1, l1) = ds.element(5);
        let (a2, l2) = ds.element(5);
        assert_eq!(a1, a2);
        assert_eq!(l1, l2);
        let (b, _) = ds.element(6);
        assert_ne!(a1, b);
        assert!((0..10).contains(&l1));
    }

    #[test]
    fn batching_shapes_and_progress() {
        let ds = SyntheticImages::new(1, 10, (2, 2, 1), 3);
        let it = ds.batches(4);
        let (x, y) = it.next_batch().unwrap();
        assert_eq!(x.shape().unwrap().dims(), &[4, 2, 2, 1]);
        assert_eq!(y.shape().unwrap().dims(), &[4]);
        assert_eq!(it.position(), 4);
        it.next_batch().unwrap();
        it.next_batch().unwrap(); // wraps past the end
        assert_eq!(it.position(), 12);
    }

    #[test]
    fn iterator_state_checkpoints() {
        let ds = SyntheticImages::new(1, 10, (2, 2, 1), 3);
        let it = ds.batches(3);
        it.next_batch().unwrap();
        it.next_batch().unwrap();
        assert_eq!(it.position(), 6);
        let root = TrackableGroup::new().with_state("iterator", it.state());
        let saved = tfe_state::checkpoint::save_to_value(&root);
        it.next_batch().unwrap();
        assert_eq!(it.position(), 9);
        let status = tfe_state::checkpoint::restore_from_value(&root, &saved).unwrap();
        assert_eq!(status.restored_state, 1);
        assert_eq!(it.position(), 6);
        // Resumes producing the same batch as before the restore.
        let (x1, _) = it.next_batch().unwrap();
        let it2 = ds.batches(3);
        it2.next_batch().unwrap();
        it2.next_batch().unwrap();
        let (x2, _) = it2.next_batch().unwrap();
        assert_eq!(x1.to_f64_vec().unwrap(), x2.to_f64_vec().unwrap());
    }

    #[test]
    fn regression_batches() {
        let ds = SyntheticRegression::new(3, 8);
        let (x, y) = ds.batch(0, 16).unwrap();
        assert_eq!(x.shape().unwrap().dims(), &[16, 8]);
        assert_eq!(y.shape().unwrap().dims(), &[16, 1]);
        // Deterministic per index.
        let (x2, _) = ds.batch(0, 16).unwrap();
        assert_eq!(x.to_f64_vec().unwrap(), x2.to_f64_vec().unwrap());
        let (x3, _) = ds.batch(1, 16).unwrap();
        assert_ne!(x.to_f64_vec().unwrap(), x3.to_f64_vec().unwrap());
    }
}
