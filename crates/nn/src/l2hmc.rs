//! L2HMC (Levy, Hoffman & Sohl-Dickstein, ICLR 2018): Hamiltonian Monte
//! Carlo with learned, network-parameterized leapfrog updates — the
//! workload of Figure 4 in the TensorFlow Eager paper.
//!
//! The sampler below follows the L2HMC construction: alternating binary
//! masks over the state dimensions, scale (`S`), transformation (`Q`) and
//! translation (`T`) networks modulating the momentum and position
//! updates, an accumulated log-Jacobian, and a Metropolis–Hastings
//! correction. The benchmark setting matches §6: a 2-dimensional target and
//! 10 leapfrog steps. Each update executes hundreds of *small* operations,
//! which is exactly why staging yields an order-of-magnitude speed-up for
//! this model. (Directions are fixed forward rather than sampled, which
//! does not change the op profile.)

use crate::init::Initializer;
use crate::layers::{Activation, Dense, Layer};
use std::sync::Arc;
use tfe_runtime::{api, Result, Tensor, Variable};
use tfe_tensor::{DType, Shape, TensorData};

/// An unnormalized target density with analytic energy and gradient.
///
/// The analytic gradient keeps the sampler expressible as a pure op graph
/// (stage-friendly); it also matches how L2HMC implementations feed
/// `grad U` into the networks.
pub trait TargetDensity: Send + Sync {
    /// State dimensionality.
    fn dim(&self) -> usize;
    /// `U(x)` per sample: input `(batch, dim)`, output `(batch,)`.
    ///
    /// # Errors
    /// Shape problems.
    fn energy(&self, x: &Tensor) -> Result<Tensor>;
    /// `∇U(x)`: input and output `(batch, dim)`.
    ///
    /// # Errors
    /// Shape problems.
    fn energy_grad(&self, x: &Tensor) -> Result<Tensor>;
}

/// The strongly-correlated 2-D Gaussian of the L2HMC experiments:
/// `N(0, R diag(σ²_max, σ²_min) Rᵀ)` with a 45° rotation — ill-conditioned
/// enough that plain HMC mixes poorly.
pub struct StronglyCorrelatedGaussian {
    precision: Tensor, // (2, 2)
}

impl StronglyCorrelatedGaussian {
    /// Build with the canonical (100, 0.1) eigenvalues.
    pub fn new() -> StronglyCorrelatedGaussian {
        StronglyCorrelatedGaussian::with_eigenvalues(100.0, 0.1)
    }

    /// Build with explicit covariance eigenvalues.
    ///
    /// # Panics
    /// Non-positive eigenvalues.
    pub fn with_eigenvalues(v_max: f64, v_min: f64) -> StronglyCorrelatedGaussian {
        assert!(v_max > 0.0 && v_min > 0.0, "eigenvalues must be positive");
        // Precision = R diag(1/v) R^T with R the 45-degree rotation.
        let (a, b) = (1.0 / v_max, 1.0 / v_min);
        let p00 = 0.5 * (a + b);
        let p01 = 0.5 * (a - b);
        let precision = TensorData::from_vec(
            vec![p00 as f32, p01 as f32, p01 as f32, p00 as f32],
            Shape::from([2, 2]),
        )
        .expect("2x2 precision");
        StronglyCorrelatedGaussian { precision: Tensor::from_data(precision) }
    }
}

impl Default for StronglyCorrelatedGaussian {
    fn default() -> StronglyCorrelatedGaussian {
        StronglyCorrelatedGaussian::new()
    }
}

impl TargetDensity for StronglyCorrelatedGaussian {
    fn dim(&self) -> usize {
        2
    }

    fn energy(&self, x: &Tensor) -> Result<Tensor> {
        // 0.5 * sum(x * (x P), -1)
        let xp = api::matmul(x, &self.precision)?;
        let q = api::mul(x, &xp)?;
        let s = api::reduce_sum(&q, &[1], false)?;
        api::mul(&s, &api::scalar(0.5f32))
    }

    fn energy_grad(&self, x: &Tensor) -> Result<Tensor> {
        api::matmul(x, &self.precision)
    }
}

/// One S/Q/T network: a small MLP with three heads and learned output
/// scales, as in the L2HMC reference implementation.
pub struct SqtNet {
    hidden1: Dense,
    hidden2: Dense,
    scale_head: Dense,
    transform_head: Dense,
    translate_head: Dense,
    lambda_s: Variable,
    lambda_q: Variable,
}

impl SqtNet {
    /// Build for `dim`-dimensional states with `hidden` units (the paper's
    /// benchmark uses a small net; 10 units by default).
    pub fn new(dim: usize, hidden: usize, init: &mut Initializer) -> SqtNet {
        let inputs = 2 * dim + 1; // x (or masked x), grad (or v), time
        SqtNet {
            hidden1: Dense::new(inputs, hidden, Activation::Relu, init),
            hidden2: Dense::new(hidden, hidden, Activation::Relu, init),
            scale_head: Dense::new(hidden, dim, Activation::Tanh, init),
            transform_head: Dense::new(hidden, dim, Activation::Tanh, init),
            translate_head: Dense::new(hidden, dim, Activation::Linear, init),
            lambda_s: Variable::new(TensorData::zeros(DType::F32, [dim])),
            lambda_q: Variable::new(TensorData::zeros(DType::F32, [dim])),
        }
    }

    /// Evaluate `(S, Q, T)` for inputs `a`, `b` and scalar time embedding.
    ///
    /// # Errors
    /// Execution failures.
    pub fn call(&self, a: &Tensor, b: &Tensor, t: f64) -> Result<(Tensor, Tensor, Tensor)> {
        let batch = api::shape_of(a)?; // [batch, dim]
        let b0 = api::slice(&batch, &[0], &[1])?;
        let _ = b0;
        // Time column: ones(batch, 1) * t. Built from ones_like of a column
        // slice so it works with dynamic batch sizes.
        let col = api::slice(a, &[0, 0], &[-1, 1])?;
        let t_col = api::mul(&api::mul(&col, &api::scalar(0.0f32))?, &api::scalar(1.0f32))?;
        let t_col = api::add(&t_col, &api::scalar(t as f32))?;
        let z = api::concat(&[a, b, &t_col], 1)?;
        let h = self.hidden2.call(&self.hidden1.call(&z, true)?, true)?;
        let s = api::mul(&self.scale_head.call(&h, true)?, &self.lambda_s.read()?)?;
        let q = api::mul(&self.transform_head.call(&h, true)?, &self.lambda_q.read()?)?;
        let t_out = self.translate_head.call(&h, true)?;
        Ok((s, q, t_out))
    }

    /// Trainable variables.
    pub fn variables(&self) -> Vec<Variable> {
        let mut v = Vec::new();
        for layer in [
            &self.hidden1,
            &self.hidden2,
            &self.scale_head,
            &self.transform_head,
            &self.translate_head,
        ] {
            v.extend(layer.variables());
        }
        v.push(self.lambda_s.clone());
        v.push(self.lambda_q.clone());
        v
    }
}

/// The L2HMC sampler.
pub struct L2hmc {
    target: Arc<dyn TargetDensity>,
    vnet: SqtNet,
    xnet: SqtNet,
    eps: Variable,
    n_steps: usize,
    masks: Vec<Tensor>,
}

impl L2hmc {
    /// Build a sampler with `n_steps` leapfrog steps (the benchmark uses
    /// 10) and `hidden` units in the S/Q/T networks.
    pub fn new(
        target: Arc<dyn TargetDensity>,
        hidden: usize,
        n_steps: usize,
        step_size: f64,
        init: &mut Initializer,
    ) -> L2hmc {
        let dim = target.dim();
        // Alternating half masks (the L2HMC partition of coordinates).
        let mut masks = Vec::with_capacity(n_steps);
        for step in 0..n_steps {
            let vals: Vec<f32> =
                (0..dim).map(|i| if (i + step) % 2 == 0 { 1.0 } else { 0.0 }).collect();
            masks.push(Tensor::from_data(
                TensorData::from_vec(vals, Shape::from([dim])).expect("mask"),
            ));
        }
        L2hmc {
            vnet: SqtNet::new(dim, hidden, init),
            xnet: SqtNet::new(dim, hidden, init),
            eps: Variable::new(TensorData::scalar(step_size as f32)),
            n_steps,
            masks,
            target,
        }
    }

    /// Number of leapfrog steps.
    pub fn n_steps(&self) -> usize {
        self.n_steps
    }

    /// All trainable variables (both networks plus the step size).
    pub fn variables(&self) -> Vec<Variable> {
        let mut v = self.vnet.variables();
        v.extend(self.xnet.variables());
        v.push(self.eps.clone());
        v
    }

    fn half(&self) -> Result<Tensor> {
        api::mul(&self.eps.read()?, &api::scalar(0.5f32))
    }

    /// Half-step momentum update; returns the new momentum and the
    /// log-Jacobian contribution `0.5 ε Σ S_v`.
    fn update_v(&self, x: &Tensor, v: &Tensor, t: f64) -> Result<(Tensor, Tensor)> {
        let grad = self.target.energy_grad(x)?;
        let (s, q, tr) = self.vnet.call(x, &grad, t)?;
        let eps = self.eps.read()?;
        let half_eps = self.half()?;
        let scale = api::exp(&api::mul(&half_eps, &s)?)?;
        let gscale = api::exp(&api::mul(&eps, &q)?)?;
        let force = api::add(&api::mul(&grad, &gscale)?, &tr)?;
        let v_new = api::sub(&api::mul(v, &scale)?, &api::mul(&half_eps, &force)?)?;
        let logdet = api::reduce_sum(&api::mul(&half_eps, &s)?, &[1], false)?;
        Ok((v_new, logdet))
    }

    /// Masked position update; returns new x and log-Jacobian `ε Σ m̄ S_x`.
    fn update_x(&self, x: &Tensor, v: &Tensor, mask: &Tensor, t: f64) -> Result<(Tensor, Tensor)> {
        let one = api::scalar(1.0f32);
        let anti = api::sub(&one, mask)?;
        let xm = api::mul(x, mask)?;
        let (s, q, tr) = self.xnet.call(&xm, v, t)?;
        let eps = self.eps.read()?;
        let scale = api::exp(&api::mul(&eps, &s)?)?;
        let vscale = api::exp(&api::mul(&eps, &q)?)?;
        let drift = api::add(&api::mul(v, &vscale)?, &tr)?;
        let moved = api::add(&api::mul(x, &scale)?, &api::mul(&eps, &drift)?)?;
        let x_new = api::add(&xm, &api::mul(&anti, &moved)?)?;
        let logdet = api::reduce_sum(&api::mul(&api::mul(&eps, &anti)?, &s)?, &[1], false)?;
        Ok((x_new, logdet))
    }

    /// Run the full deterministic leapfrog proposal from `(x, v)`.
    /// Returns `(x', v', log_jacobian)`.
    ///
    /// # Errors
    /// Execution failures.
    pub fn propose(&self, x: &Tensor, v: &Tensor) -> Result<(Tensor, Tensor, Tensor)> {
        let mut x = x.clone();
        let mut v = v.clone();
        let mut logdet = api::mul(&self.target.energy(&x)?, &api::scalar(0.0f32))?;
        for step in 0..self.n_steps {
            let t = step as f64 / self.n_steps as f64;
            let (v1, ld1) = self.update_v(&x, &v, t)?;
            let mask = &self.masks[step];
            let (x1, ld2) = self.update_x(&x, &v1, mask, t)?;
            // Second half-mask position update.
            let one = api::scalar(1.0f32);
            let anti = api::sub(&one, mask)?;
            let (x2, ld3) = self.update_x(&x1, &v1, &anti, t)?;
            let (v2, ld4) = self.update_v(&x2, &v1, t)?;
            x = x2;
            v = v2;
            for ld in [ld1, ld2, ld3, ld4] {
                logdet = api::add(&logdet, &ld)?;
            }
        }
        Ok((x, v, logdet))
    }

    /// Hamiltonian `U(x) + 0.5|v|²` per sample.
    ///
    /// # Errors
    /// Execution failures.
    pub fn hamiltonian(&self, x: &Tensor, v: &Tensor) -> Result<Tensor> {
        let kinetic =
            api::mul(&api::reduce_sum(&api::square(v)?, &[1], false)?, &api::scalar(0.5f32))?;
        api::add(&self.target.energy(x)?, &kinetic)
    }

    /// One sampler step: resample momentum, propose, Metropolis-correct.
    /// Returns `(x_next, accept_prob)`; shapes `(batch, dim)` / `(batch,)`.
    ///
    /// This is the function the §6 benchmark stages — "essentially running
    /// the entire update as a graph function".
    ///
    /// # Errors
    /// Execution failures.
    pub fn sample_step(&self, x: &Tensor) -> Result<(Tensor, Tensor)> {
        let batch = x.sym_shape().dims().first().copied().flatten().ok_or_else(|| {
            tfe_runtime::RuntimeError::SymbolicValue(
                "l2hmc needs a known batch dimension".to_string(),
            )
        })?;
        let dim = self.target.dim();
        let v = api::random_normal(DType::F32, Shape::from([batch, dim]), 0.0, 1.0)?;
        let (x_new, v_new, logdet) = self.propose(x, &v)?;
        let h_old = self.hamiltonian(x, &v)?;
        let h_new = self.hamiltonian(&x_new, &v_new)?;
        // A = min(1, exp(H_old - H_new + logdet))
        let log_accept = api::add(&api::sub(&h_old, &h_new)?, &logdet)?;
        let accept_prob = api::minimum(&api::exp(&log_accept)?, &api::ones(DType::F32, [batch]))?;
        let u = api::random_uniform(DType::F32, Shape::from([batch]), 0.0, 1.0)?;
        let take = api::less(&u, &accept_prob)?;
        let take_col = api::reshape(&take, &[batch as i64, 1])?;
        let x_next = api::select(&take_col, &x_new, x)?;
        Ok((x_next, accept_prob))
    }

    /// The L2HMC training loss: encourage large accepted moves,
    /// `λ²/(A·δ²) − A·δ²/λ²` averaged over the batch.
    ///
    /// # Errors
    /// Execution failures.
    pub fn loss(&self, x: &Tensor, lambda: f64) -> Result<Tensor> {
        let batch = x.sym_shape().dims().first().copied().flatten().ok_or_else(|| {
            tfe_runtime::RuntimeError::SymbolicValue(
                "l2hmc needs a known batch dimension".to_string(),
            )
        })?;
        let dim = self.target.dim();
        let v = api::random_normal(DType::F32, Shape::from([batch, dim]), 0.0, 1.0)?;
        let (x_new, v_new, logdet) = self.propose(x, &v)?;
        let h_old = self.hamiltonian(x, &v)?;
        let h_new = self.hamiltonian(&x_new, &v_new)?;
        let log_accept = api::add(&api::sub(&h_old, &h_new)?, &logdet)?;
        let accept = api::minimum(&api::exp(&log_accept)?, &api::ones(DType::F32, [batch]))?;
        let jump = api::reduce_sum(&api::squared_difference(&x_new, x)?, &[1], false)?;
        let weighted = api::add(
            &api::mul(&accept, &jump)?,
            &api::constant_data(TensorData::fill_f64(DType::F32, Shape::scalar(), 1e-4)),
        )?;
        let l2 = api::scalar((lambda * lambda) as f32);
        let term1 = api::div(&l2, &weighted)?;
        let term2 = api::div(&weighted, &l2)?;
        api::reduce_mean(&api::sub(&term1, &term2)?, &[], false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_autodiff::GradientTape;

    fn sampler(steps: usize) -> L2hmc {
        let mut init = Initializer::seeded(42);
        L2hmc::new(Arc::new(StronglyCorrelatedGaussian::new()), 10, steps, 0.1, &mut init)
    }

    #[test]
    fn scg_energy_and_grad_consistent() {
        let target = StronglyCorrelatedGaussian::new();
        let x = api::constant(vec![1.0f32, -1.0, 0.5, 0.5], [2, 2]).unwrap();
        let e = target.energy(&x).unwrap();
        assert_eq!(e.shape().unwrap().dims(), &[2]);
        assert!(e.to_f64_vec().unwrap().iter().all(|&v| v > 0.0));
        // Finite-difference check of the analytic gradient.
        let g = target.energy_grad(&x).unwrap().to_f64_vec().unwrap();
        let eps = 1e-4;
        let base = target.energy(&x).unwrap().to_f64_vec().unwrap();
        for (i, j) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)] {
            let mut vals = x.to_f64_vec().unwrap();
            vals[i * 2 + j] += eps;
            let xp =
                api::constant(vals.iter().map(|&v| v as f32).collect::<Vec<_>>(), [2, 2]).unwrap();
            let ep = target.energy(&xp).unwrap().to_f64_vec().unwrap();
            let fd = (ep[i] - base[i]) / eps;
            assert!((fd - g[i * 2 + j]).abs() < 1e-2, "({i},{j}): {fd} vs {}", g[i * 2 + j]);
        }
    }

    #[test]
    fn propose_shapes_and_determinism() {
        let s = sampler(4);
        let x = api::zeros(DType::F32, [3, 2]);
        let v = api::ones(DType::F32, [3, 2]);
        let (x1, v1, ld) = s.propose(&x, &v).unwrap();
        assert_eq!(x1.shape().unwrap().dims(), &[3, 2]);
        assert_eq!(v1.shape().unwrap().dims(), &[3, 2]);
        assert_eq!(ld.shape().unwrap().dims(), &[3]);
        // Deterministic given (x, v).
        let (x2, _, _) = s.propose(&x, &v).unwrap();
        assert_eq!(x1.to_f64_vec().unwrap(), x2.to_f64_vec().unwrap());
    }

    #[test]
    fn sample_step_produces_valid_probabilities() {
        tfe_runtime::context::set_random_seed(1);
        let s = sampler(10);
        let x = api::zeros(DType::F32, [8, 2]);
        let (x_next, prob) = s.sample_step(&x).unwrap();
        assert_eq!(x_next.shape().unwrap().dims(), &[8, 2]);
        for p in prob.to_f64_vec().unwrap() {
            assert!((0.0..=1.0).contains(&p), "accept prob {p}");
        }
    }

    #[test]
    fn chain_explores_the_target() {
        tfe_runtime::context::set_random_seed(2);
        let s = sampler(10);
        let mut x = api::zeros(DType::F32, [16, 2]);
        for _ in 0..20 {
            x = s.sample_step(&x).unwrap().0;
        }
        // After some steps the chain should have left the origin.
        let spread = x.to_f64_vec().unwrap().iter().map(|v| v.abs()).sum::<f64>();
        assert!(spread > 0.1, "chain stuck at origin: {spread}");
        assert!(x.to_f64_vec().unwrap().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn loss_is_differentiable() {
        tfe_runtime::context::set_random_seed(3);
        let s = sampler(2);
        let x = api::zeros(DType::F32, [4, 2]);
        let vars = s.variables();
        let tape = GradientTape::new();
        let loss = s.loss(&x, 1.0).unwrap();
        assert!(loss.scalar_f64().unwrap().is_finite());
        let refs: Vec<&Variable> = vars.iter().collect();
        let grads = tape.gradient_vars(&loss, &refs).unwrap();
        // Every network variable gets a gradient (eps too).
        let got: usize = grads.iter().filter(|g| g.is_some()).count();
        assert!(got >= vars.len() - 2, "only {got}/{} grads", vars.len());
    }

    #[test]
    fn staged_sample_step_matches_shape() {
        tfe_runtime::context::set_random_seed(4);
        let s = Arc::new(sampler(3));
        let staged = {
            let s = s.clone();
            tfe_core::function("l2hmc_step", move |args| {
                let x = args[0].as_tensor().unwrap();
                let (x_next, prob) = s.sample_step(x)?;
                Ok(vec![x_next, prob])
            })
        };
        let x = api::zeros(DType::F32, [8, 2]);
        let out = staged.call_tensors(&[&x]).unwrap();
        assert_eq!(out[0].shape().unwrap().dims(), &[8, 2]);
        assert_eq!(out[1].shape().unwrap().dims(), &[8]);
        // Cached on the second call.
        staged.call_tensors(&[&x]).unwrap();
        assert_eq!(staged.num_concrete(), 1);
    }
}

#[cfg(test)]
mod training_tests {
    use super::*;
    use crate::optimizer::{minimize, Adam};
    use tfe_autodiff::GradientTape;

    /// Train the sampler's networks for a few steps on the ESJD loss —
    /// the L2HMC training loop the paper's benchmark executes — and check
    /// the loss improves while the sampler stays numerically sound.
    #[test]
    fn l2hmc_training_improves_loss() {
        tfe_runtime::context::set_random_seed(10);
        let mut init = Initializer::seeded(100);
        let sampler = L2hmc::new(
            Arc::new(StronglyCorrelatedGaussian::with_eigenvalues(10.0, 0.5)),
            8,
            3,
            0.1,
            &mut init,
        );
        let opt = Adam::new(5e-3);
        let vars = sampler.variables();
        let x = tfe_runtime::api::zeros(DType::F32, [32, 2]);
        // Average the stochastic loss over a few draws per measurement.
        let avg_loss = |sampler: &L2hmc| -> f64 {
            (0..4).map(|_| sampler.loss(&x, 1.0).unwrap().scalar_f64().unwrap()).sum::<f64>() / 4.0
        };
        let before = avg_loss(&sampler);
        for _ in 0..30 {
            let tape = GradientTape::new();
            let loss = sampler.loss(&x, 1.0).unwrap();
            minimize(&opt, tape, &loss, &vars).unwrap();
        }
        let after = avg_loss(&sampler);
        assert!(after.is_finite() && before.is_finite());
        assert!(
            after < before,
            "L2HMC training did not improve the ESJD loss: {before} -> {after}"
        );
        // The trained sampler still produces valid moves.
        let (x_next, prob) = sampler.sample_step(&x).unwrap();
        assert!(x_next.to_f64_vec().unwrap().iter().all(|v| v.is_finite()));
        assert!(prob.to_f64_vec().unwrap().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Staged training step for the sampler: one trace, loss still drops.
    #[test]
    fn l2hmc_staged_training_step() {
        tfe_runtime::context::set_random_seed(11);
        let mut init = Initializer::seeded(101);
        let sampler = Arc::new(L2hmc::new(
            Arc::new(StronglyCorrelatedGaussian::with_eigenvalues(10.0, 0.5)),
            6,
            2,
            0.1,
            &mut init,
        ));
        let opt = Arc::new(Adam::new(5e-3));
        let vars = sampler.variables();
        let step = {
            let sampler = sampler.clone();
            let opt = opt.clone();
            let vars = vars.clone();
            tfe_core::function("l2hmc_train", move |args| {
                let x = args[0].as_tensor().unwrap();
                let tape = GradientTape::new();
                let loss = sampler.loss(x, 1.0)?;
                minimize(opt.as_ref(), tape, &loss, &vars)?;
                Ok(vec![loss])
            })
        };
        let x = tfe_runtime::api::zeros(DType::F32, [16, 2]);
        let mut losses = Vec::new();
        for _ in 0..25 {
            losses.push(step.call_tensors(&[&x]).unwrap()[0].scalar_f64().unwrap());
        }
        assert_eq!(step.num_concrete(), 1);
        let head: f64 = losses[..5].iter().sum::<f64>() / 5.0;
        let tail: f64 = losses[losses.len() - 5..].iter().sum::<f64>() / 5.0;
        assert!(tail < head, "staged L2HMC training stalled: {head} -> {tail} ({losses:?})");
    }
}
