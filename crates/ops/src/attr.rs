//! Operation attributes: the static (compile-time, in staging terms)
//! parameters of a primitive operation.
//!
//! Attribute values are part of trace-cache keys (§4.6's binding-time
//! analysis specializes on them), so they implement `Eq`/`Hash` — floats
//! hash by bit pattern.

use std::collections::BTreeMap;
use std::fmt;
use tfe_tensor::DType;

/// A single attribute value.
#[derive(Debug, Clone)]
pub enum AttrValue {
    /// Integer.
    Int(i64),
    /// Float (compared and hashed by bit pattern).
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// List of integers (shapes, axes, strides...).
    IntList(Vec<i64>),
    /// List of floats.
    FloatList(Vec<f64>),
    /// A tensor dtype.
    DType(DType),
}

impl PartialEq for AttrValue {
    fn eq(&self, other: &AttrValue) -> bool {
        use AttrValue::*;
        match (self, other) {
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a.to_bits() == b.to_bits(),
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (IntList(a), IntList(b)) => a == b,
            (FloatList(a), FloatList(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (DType(a), DType(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for AttrValue {}

impl std::hash::Hash for AttrValue {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        use AttrValue::*;
        match self {
            Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Float(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Bool(v) => {
                2u8.hash(state);
                v.hash(state);
            }
            Str(v) => {
                3u8.hash(state);
                v.hash(state);
            }
            IntList(v) => {
                4u8.hash(state);
                v.hash(state);
            }
            FloatList(v) => {
                5u8.hash(state);
                for f in v {
                    f.to_bits().hash(state);
                }
            }
            DType(v) => {
                6u8.hash(state);
                v.hash(state);
            }
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Float(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v:?}"),
            AttrValue::IntList(v) => write!(f, "{v:?}"),
            AttrValue::FloatList(v) => write!(f, "{v:?}"),
            AttrValue::DType(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> AttrValue {
        AttrValue::Int(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> AttrValue {
        AttrValue::Int(v as i64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> AttrValue {
        AttrValue::Float(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> AttrValue {
        AttrValue::Bool(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> AttrValue {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Str(v)
    }
}

impl From<Vec<i64>> for AttrValue {
    fn from(v: Vec<i64>) -> AttrValue {
        AttrValue::IntList(v)
    }
}

impl From<Vec<f64>> for AttrValue {
    fn from(v: Vec<f64>) -> AttrValue {
        AttrValue::FloatList(v)
    }
}

impl From<DType> for AttrValue {
    fn from(v: DType) -> AttrValue {
        AttrValue::DType(v)
    }
}

/// An ordered attribute map with typed accessors.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Attrs(BTreeMap<String, AttrValue>);

impl Attrs {
    /// An empty attribute map.
    pub fn new() -> Attrs {
        Attrs::default()
    }

    /// Builder-style insertion.
    pub fn with(mut self, key: &str, value: impl Into<AttrValue>) -> Attrs {
        self.0.insert(key.to_string(), value.into());
        self
    }

    /// Insert a value.
    pub fn set(&mut self, key: &str, value: impl Into<AttrValue>) {
        self.0.insert(key.to_string(), value.into());
    }

    /// Raw lookup.
    pub fn get(&self, key: &str) -> Option<&AttrValue> {
        self.0.get(key)
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &AttrValue)> {
        self.0.iter()
    }

    /// Typed integer accessor.
    ///
    /// # Errors
    /// Missing key or wrong type.
    pub fn int(&self, key: &str) -> Result<i64, AttrError> {
        match self.get(key) {
            Some(AttrValue::Int(v)) => Ok(*v),
            other => Err(AttrError::new(key, "int", other)),
        }
    }

    /// Integer with a default when absent.
    ///
    /// # Errors
    /// Present but wrong type.
    pub fn int_or(&self, key: &str, default: i64) -> Result<i64, AttrError> {
        match self.get(key) {
            None => Ok(default),
            Some(AttrValue::Int(v)) => Ok(*v),
            other => Err(AttrError::new(key, "int", other)),
        }
    }

    /// Typed float accessor (accepts ints).
    ///
    /// # Errors
    /// Missing key or wrong type.
    pub fn float(&self, key: &str) -> Result<f64, AttrError> {
        match self.get(key) {
            Some(AttrValue::Float(v)) => Ok(*v),
            Some(AttrValue::Int(v)) => Ok(*v as f64),
            other => Err(AttrError::new(key, "float", other)),
        }
    }

    /// Float with a default when absent.
    ///
    /// # Errors
    /// Present but wrong type.
    pub fn float_or(&self, key: &str, default: f64) -> Result<f64, AttrError> {
        match self.get(key) {
            None => Ok(default),
            _ => self.float(key),
        }
    }

    /// Typed bool accessor.
    ///
    /// # Errors
    /// Missing key or wrong type.
    pub fn bool(&self, key: &str) -> Result<bool, AttrError> {
        match self.get(key) {
            Some(AttrValue::Bool(v)) => Ok(*v),
            other => Err(AttrError::new(key, "bool", other)),
        }
    }

    /// Bool with a default when absent.
    ///
    /// # Errors
    /// Present but wrong type.
    pub fn bool_or(&self, key: &str, default: bool) -> Result<bool, AttrError> {
        match self.get(key) {
            None => Ok(default),
            _ => self.bool(key),
        }
    }

    /// Typed string accessor.
    ///
    /// # Errors
    /// Missing key or wrong type.
    pub fn str(&self, key: &str) -> Result<&str, AttrError> {
        match self.get(key) {
            Some(AttrValue::Str(v)) => Ok(v),
            other => Err(AttrError::new(key, "str", other)),
        }
    }

    /// Typed int-list accessor.
    ///
    /// # Errors
    /// Missing key or wrong type.
    pub fn int_list(&self, key: &str) -> Result<&[i64], AttrError> {
        match self.get(key) {
            Some(AttrValue::IntList(v)) => Ok(v),
            other => Err(AttrError::new(key, "int list", other)),
        }
    }

    /// Int list with a default when absent.
    ///
    /// # Errors
    /// Present but wrong type.
    pub fn int_list_or<'a>(
        &'a self,
        key: &str,
        default: &'a [i64],
    ) -> Result<&'a [i64], AttrError> {
        match self.get(key) {
            None => Ok(default),
            _ => self.int_list(key),
        }
    }

    /// Typed dtype accessor.
    ///
    /// # Errors
    /// Missing key or wrong type.
    pub fn dtype(&self, key: &str) -> Result<DType, AttrError> {
        match self.get(key) {
            Some(AttrValue::DType(v)) => Ok(*v),
            other => Err(AttrError::new(key, "dtype", other)),
        }
    }
}

impl FromIterator<(String, AttrValue)> for Attrs {
    fn from_iter<I: IntoIterator<Item = (String, AttrValue)>>(iter: I) -> Attrs {
        Attrs(iter.into_iter().collect())
    }
}

/// A missing or mistyped attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrError {
    /// The attribute key.
    pub key: String,
    /// What the op expected.
    pub expected: &'static str,
    /// What was found, if anything.
    pub found: Option<String>,
}

impl AttrError {
    fn new(key: &str, expected: &'static str, found: Option<&AttrValue>) -> AttrError {
        AttrError { key: key.to_string(), expected, found: found.map(|v| v.to_string()) }
    }
}

impl fmt::Display for AttrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.found {
            Some(v) => write!(f, "attribute `{}` expected {} but was {v}", self.key, self.expected),
            None => write!(f, "missing required attribute `{}` ({})", self.key, self.expected),
        }
    }
}

impl std::error::Error for AttrError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &AttrValue) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn typed_accessors() {
        let a = Attrs::new()
            .with("n", 3i64)
            .with("rate", 0.5)
            .with("flag", true)
            .with("name", "x")
            .with("dims", vec![1i64, 2])
            .with("dt", DType::F32);
        assert_eq!(a.int("n").unwrap(), 3);
        assert_eq!(a.float("rate").unwrap(), 0.5);
        assert_eq!(a.float("n").unwrap(), 3.0); // int widens to float
        assert!(a.bool("flag").unwrap());
        assert_eq!(a.str("name").unwrap(), "x");
        assert_eq!(a.int_list("dims").unwrap(), &[1, 2]);
        assert_eq!(a.dtype("dt").unwrap(), DType::F32);
    }

    #[test]
    fn defaults_and_errors() {
        let a = Attrs::new().with("n", 3i64);
        assert_eq!(a.int_or("missing", 7).unwrap(), 7);
        assert!(a.bool_or("missing", true).unwrap());
        assert_eq!(a.float_or("missing", 1.5).unwrap(), 1.5);
        let err = a.int("missing").unwrap_err();
        assert!(err.to_string().contains("missing"));
        let err = a.bool("n").unwrap_err();
        assert!(err.to_string().contains("expected bool"));
        assert!(a.int_or("n", 0).is_ok());
        assert!(a.bool_or("n", false).is_err()); // present but wrong type
    }

    #[test]
    fn float_equality_by_bits() {
        assert_eq!(AttrValue::Float(f64::NAN), AttrValue::Float(f64::NAN));
        assert_ne!(AttrValue::Float(0.0), AttrValue::Float(-0.0));
        assert_eq!(hash_of(&AttrValue::Float(1.5)), hash_of(&AttrValue::Float(1.5)));
    }

    #[test]
    fn attrs_equal_independent_of_insertion_order() {
        let a = Attrs::new().with("x", 1i64).with("y", 2i64);
        let b = Attrs::new().with("y", 2i64).with("x", 1i64);
        assert_eq!(a, b);
    }

    #[test]
    fn cross_type_inequality() {
        assert_ne!(AttrValue::Int(1), AttrValue::Float(1.0));
        assert_ne!(AttrValue::Bool(true), AttrValue::Int(1));
        assert_ne!(hash_of(&AttrValue::Int(1)), hash_of(&AttrValue::Float(1.0)));
    }
}
