//! Operation definitions and the global op registry.
//!
//! The paper's central implementation claim (§1, §5) is that imperative and
//! staged execution *share a single set of primitive operations*. In this
//! workspace that set is exactly the contents of the [`OpRegistry`]: the
//! eager dispatcher, the graph builder, shape inference, the gradient
//! registry and every kernel table key off the op names defined here.

use crate::attr::{AttrError, Attrs};
use crate::symshape::SymShape;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use tfe_tensor::{DType, TensorError};

/// Errors from op lookup, validation, or shape inference.
#[derive(Debug, Clone, PartialEq)]
pub enum OpError {
    /// The op name is not registered.
    UnknownOp(String),
    /// Wrong number of inputs.
    Arity {
        /// Op name.
        op: String,
        /// Human-readable expectation.
        expected: String,
        /// Actual count.
        got: usize,
    },
    /// A missing or mistyped attribute.
    Attr(AttrError),
    /// A shape/dtype error surfaced during inference.
    Shape(TensorError),
    /// Anything else.
    Invalid(String),
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::UnknownOp(name) => write!(f, "unknown operation `{name}`"),
            OpError::Arity { op, expected, got } => {
                write!(f, "op `{op}` expected {expected} inputs, got {got}")
            }
            OpError::Attr(e) => write!(f, "{e}"),
            OpError::Shape(e) => write!(f, "{e}"),
            OpError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for OpError {}

impl From<AttrError> for OpError {
    fn from(e: AttrError) -> OpError {
        OpError::Attr(e)
    }
}

impl From<TensorError> for OpError {
    fn from(e: TensorError) -> OpError {
        OpError::Shape(e)
    }
}

/// Number-of-inputs contract for an op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arity {
    /// Exactly `n` inputs.
    Exact(usize),
    /// At least `n` inputs (variadic ops like `concat`).
    AtLeast(usize),
}

impl Arity {
    /// Validate an input count.
    ///
    /// # Errors
    /// [`OpError::Arity`] when violated.
    pub fn check(self, op: &str, got: usize) -> Result<(), OpError> {
        let ok = match self {
            Arity::Exact(n) => got == n,
            Arity::AtLeast(n) => got >= n,
        };
        if ok {
            Ok(())
        } else {
            let expected = match self {
                Arity::Exact(n) => format!("exactly {n}"),
                Arity::AtLeast(n) => format!("at least {n}"),
            };
            Err(OpError::Arity { op: op.to_string(), expected, got })
        }
    }
}

/// What shape inference sees: input types/shapes plus the op's attributes.
#[derive(Debug)]
pub struct InferCtx<'a> {
    /// Input dtypes.
    pub dtypes: &'a [DType],
    /// Input (possibly symbolic) shapes.
    pub shapes: &'a [SymShape],
    /// Op attributes.
    pub attrs: &'a Attrs,
}

impl<'a> InferCtx<'a> {
    /// dtype of input `i`.
    ///
    /// # Errors
    /// Index out of range.
    pub fn dtype(&self, i: usize) -> Result<DType, OpError> {
        self.dtypes.get(i).copied().ok_or_else(|| OpError::Invalid(format!("missing input {i}")))
    }

    /// shape of input `i`.
    ///
    /// # Errors
    /// Index out of range.
    pub fn shape(&self, i: usize) -> Result<&SymShape, OpError> {
        self.shapes.get(i).ok_or_else(|| OpError::Invalid(format!("missing input {i}")))
    }
}

/// Estimated work for one execution of an op (device-independent; the
/// device's [`ComputeModel`](tfe_device-like) turns it into time).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkEstimate {
    /// Floating-point (or equivalent) operations.
    pub flops: f64,
    /// Bytes of memory traffic.
    pub bytes: f64,
}

/// Inferred output signature: dtype and symbolic shape per output.
pub type OutputSig = Vec<(DType, SymShape)>;

type InferFn = dyn Fn(&InferCtx) -> Result<OutputSig, OpError> + Send + Sync;
type WorkFn = dyn Fn(&InferCtx, &OutputSig) -> WorkEstimate + Send + Sync;

/// A primitive operation definition: name, arity, statefulness, shape
/// inference and an analytic work estimate.
pub struct OpDef {
    name: String,
    arity: Arity,
    stateful: bool,
    infer: Box<InferFn>,
    work: Option<Box<WorkFn>>,
}

impl OpDef {
    /// Start building an op definition.
    pub fn new(
        name: &str,
        arity: Arity,
        infer: impl Fn(&InferCtx) -> Result<OutputSig, OpError> + Send + Sync + 'static,
    ) -> OpDef {
        OpDef { name: name.to_string(), arity, stateful: false, infer: Box::new(infer), work: None }
    }

    /// Mark the op stateful (random ops, variable ops, `host_func`...).
    /// Stateful ops are never pruned, folded, or deduplicated.
    pub fn stateful(mut self) -> OpDef {
        self.stateful = true;
        self
    }

    /// Attach a custom work estimate (default: one flop per output element
    /// and read+write memory traffic).
    pub fn with_work(
        mut self,
        work: impl Fn(&InferCtx, &OutputSig) -> WorkEstimate + Send + Sync + 'static,
    ) -> OpDef {
        self.work = Some(Box::new(work));
        self
    }

    /// Op name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Arity contract.
    pub fn arity(&self) -> Arity {
        self.arity
    }

    /// Whether the op has side effects.
    pub fn is_stateful(&self) -> bool {
        self.stateful
    }

    /// Run shape inference (validates arity first).
    ///
    /// # Errors
    /// Arity violations, attribute problems, or shape incompatibilities.
    pub fn infer(&self, ctx: &InferCtx) -> Result<OutputSig, OpError> {
        self.arity.check(&self.name, ctx.dtypes.len())?;
        if ctx.dtypes.len() != ctx.shapes.len() {
            return Err(OpError::Invalid("dtype/shape count mismatch".to_string()));
        }
        (self.infer)(ctx)
    }

    /// Estimate the work of one execution given inferred outputs.
    pub fn work(&self, ctx: &InferCtx, outputs: &OutputSig) -> WorkEstimate {
        if let Some(work) = &self.work {
            return work(ctx, outputs);
        }
        // Default: elementwise over outputs; inputs and outputs traffic.
        let out_elems: f64 =
            outputs.iter().map(|(dt, s)| elems_or(s, 1) as f64 * dt.size_bytes() as f64).sum();
        let in_bytes: f64 = ctx
            .dtypes
            .iter()
            .zip(ctx.shapes)
            .map(|(dt, s)| elems_or(s, 1) as f64 * dt.size_bytes() as f64)
            .sum();
        let out_flops: f64 = outputs.iter().map(|(_, s)| elems_or(s, 1) as f64).sum();
        WorkEstimate { flops: out_flops, bytes: in_bytes + out_elems }
    }
}

impl fmt::Debug for OpDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OpDef({}, arity={:?}, stateful={})", self.name, self.arity, self.stateful)
    }
}

/// Element count of a symbolic shape, substituting `unknown_as` for every
/// unknown dimension (work estimates use 1... callers pick).
pub fn elems_or(s: &SymShape, unknown_as: usize) -> usize {
    s.dims().iter().map(|d| d.unwrap_or(unknown_as)).product::<usize>().max(1)
}

/// A registry of op definitions keyed by name.
#[derive(Default)]
pub struct OpRegistry {
    map: RwLock<HashMap<String, Arc<OpDef>>>,
}

impl OpRegistry {
    /// An empty registry.
    pub fn new() -> OpRegistry {
        OpRegistry::default()
    }

    /// Register a definition.
    ///
    /// # Errors
    /// Duplicate op name.
    pub fn register(&self, def: OpDef) -> Result<(), OpError> {
        let mut map = self.map.write();
        if map.contains_key(def.name()) {
            return Err(OpError::Invalid(format!("op `{}` already registered", def.name())));
        }
        map.insert(def.name().to_string(), Arc::new(def));
        Ok(())
    }

    /// Look up an op by name.
    ///
    /// # Errors
    /// [`OpError::UnknownOp`].
    pub fn lookup(&self, name: &str) -> Result<Arc<OpDef>, OpError> {
        self.map.read().get(name).cloned().ok_or_else(|| OpError::UnknownOp(name.to_string()))
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.map.read().contains_key(name)
    }

    /// All registered op names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.map.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered ops.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

impl fmt::Debug for OpRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OpRegistry({} ops)", self.len())
    }
}

/// The process-wide registry used by the runtime, tracer and autodiff.
pub fn global() -> &'static OpRegistry {
    static REGISTRY: std::sync::OnceLock<OpRegistry> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(OpRegistry::new)
}

/// Register the standard op catalog into [`global`] exactly once.
///
/// Safe (and cheap) to call from every entry point.
pub fn ensure_standard_ops() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        crate::catalog::register_all(global()).expect("standard op catalog must register");
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_op() -> OpDef {
        OpDef::new("test_scalar", Arity::Exact(1), |ctx| {
            Ok(vec![(ctx.dtype(0)?, SymShape::scalar())])
        })
    }

    #[test]
    fn arity_checks() {
        assert!(Arity::Exact(2).check("x", 2).is_ok());
        assert!(Arity::Exact(2).check("x", 3).is_err());
        assert!(Arity::AtLeast(1).check("x", 5).is_ok());
        assert!(Arity::AtLeast(1).check("x", 0).is_err());
    }

    #[test]
    fn registry_register_lookup() {
        let r = OpRegistry::new();
        assert!(r.is_empty());
        r.register(scalar_op()).unwrap();
        assert!(r.contains("test_scalar"));
        assert_eq!(r.len(), 1);
        assert!(r.register(scalar_op()).is_err()); // duplicate
        assert!(r.lookup("nope").is_err());
        let def = r.lookup("test_scalar").unwrap();
        assert_eq!(def.name(), "test_scalar");
        assert!(!def.is_stateful());
    }

    #[test]
    fn infer_validates_arity() {
        let def = scalar_op();
        let attrs = Attrs::new();
        let ctx = InferCtx { dtypes: &[], shapes: &[], attrs: &attrs };
        assert!(matches!(def.infer(&ctx), Err(OpError::Arity { .. })));
    }

    #[test]
    fn default_work_estimate() {
        let def = scalar_op();
        let attrs = Attrs::new();
        let shapes = [SymShape::known(&tfe_tensor::Shape::from([8]))];
        let ctx = InferCtx { dtypes: &[DType::F32], shapes: &shapes, attrs: &attrs };
        let out = def.infer(&ctx).unwrap();
        let w = def.work(&ctx, &out);
        assert_eq!(w.flops, 1.0); // scalar output
        assert!(w.bytes >= 32.0); // read 8 f32
    }

    #[test]
    fn custom_work_estimate() {
        let def = scalar_op().with_work(|_, _| WorkEstimate { flops: 42.0, bytes: 7.0 });
        let attrs = Attrs::new();
        let shapes = [SymShape::scalar()];
        let ctx = InferCtx { dtypes: &[DType::F32], shapes: &shapes, attrs: &attrs };
        let out = def.infer(&ctx).unwrap();
        assert_eq!(def.work(&ctx, &out).flops, 42.0);
    }

    #[test]
    fn global_catalog_registers() {
        ensure_standard_ops();
        ensure_standard_ops(); // idempotent
        assert!(global().contains("add"));
        assert!(global().contains("matmul"));
        assert!(global().len() > 60);
    }
}
