//! Symbolic shapes: shapes with possibly-unknown dimensions.
//!
//! During tracing (§4.6), tensors are "represented as abstract types
//! (numerical type and shape tuples)". With an explicit input signature the
//! user may leave dimensions unknown (e.g. the batch size); shape inference
//! then propagates `None` dims through the graph.

use std::fmt;
use tfe_tensor::{Shape, TensorError};

/// A shape whose dimensions may be unknown. Rank is always known.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SymShape(Vec<Option<usize>>);

impl SymShape {
    /// A scalar (rank 0).
    pub fn scalar() -> SymShape {
        SymShape(Vec::new())
    }

    /// From explicit dims (use `None` for unknown).
    pub fn new(dims: impl Into<Vec<Option<usize>>>) -> SymShape {
        SymShape(dims.into())
    }

    /// A fully-known shape.
    pub fn known(shape: &Shape) -> SymShape {
        SymShape(shape.dims().iter().map(|&d| Some(d)).collect())
    }

    /// A rank-`rank` shape with every dimension unknown.
    pub fn unknown(rank: usize) -> SymShape {
        SymShape(vec![None; rank])
    }

    /// The dims.
    pub fn dims(&self) -> &[Option<usize>] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Whether every dimension is known.
    pub fn is_fully_defined(&self) -> bool {
        self.0.iter().all(Option::is_some)
    }

    /// Convert to a concrete [`Shape`], if fully defined.
    pub fn to_shape(&self) -> Option<Shape> {
        let dims: Option<Vec<usize>> = self.0.iter().copied().collect();
        dims.map(Shape::new)
    }

    /// Total elements, if fully defined.
    pub fn num_elements(&self) -> Option<usize> {
        self.0.iter().copied().product::<Option<usize>>().or(if self.0.is_empty() {
            Some(1)
        } else {
            None
        })
    }

    /// Whether a concrete shape is an instance of this symbolic shape
    /// (same rank; every known dim matches).
    pub fn matches(&self, shape: &Shape) -> bool {
        self.rank() == shape.rank()
            && self.0.iter().zip(shape.dims()).all(|(sym, &d)| sym.is_none_or(|s| s == d))
    }

    /// Whether two symbolic shapes could describe the same tensor.
    pub fn compatible_with(&self, other: &SymShape) -> bool {
        self.rank() == other.rank()
            && self.0.iter().zip(&other.0).all(|(a, b)| match (a, b) {
                (Some(x), Some(y)) => x == y,
                _ => true,
            })
    }

    /// Merge two compatible shapes, keeping the more specific dims.
    ///
    /// # Errors
    /// Incompatible ranks or dims.
    pub fn merge(&self, other: &SymShape) -> Result<SymShape, TensorError> {
        if !self.compatible_with(other) {
            return Err(TensorError::InvalidArgument(format!(
                "cannot merge shapes {self} and {other}"
            )));
        }
        Ok(SymShape(self.0.iter().zip(&other.0).map(|(a, b)| a.or(*b)).collect()))
    }

    /// NumPy-style broadcast of two symbolic shapes.
    ///
    /// An unknown dim broadcast against a known dim `d > 1` yields `d`; an
    /// unknown against 1 or unknown stays unknown.
    ///
    /// # Errors
    /// Known dims that cannot broadcast.
    pub fn broadcast(&self, other: &SymShape) -> Result<SymShape, TensorError> {
        let rank = self.rank().max(other.rank());
        let mut out = vec![None; rank];
        for (i, o) in out.iter_mut().enumerate() {
            let a = if i < rank - self.rank() { Some(1) } else { self.0[i - (rank - self.rank())] };
            let b =
                if i < rank - other.rank() { Some(1) } else { other.0[i - (rank - other.rank())] };
            *o = match (a, b) {
                (Some(1), d) | (d, Some(1)) => d,
                (Some(x), Some(y)) if x == y => Some(x),
                (Some(_), Some(_)) => {
                    return Err(TensorError::InvalidArgument(format!(
                        "shapes {self} and {other} are not broadcast-compatible"
                    )))
                }
                (None, Some(d)) | (Some(d), None) => {
                    // d != 1 here; the unknown side must be d or 1. The
                    // result is d only if the unknown turns out to be d or 1
                    // broadcast to d — either way, d.
                    Some(d)
                }
                (None, None) => None,
            };
        }
        Ok(SymShape(out))
    }
}

impl fmt::Display for SymShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match d {
                Some(v) => write!(f, "{v}")?,
                None => write!(f, "?")?,
            }
        }
        if self.0.len() == 1 {
            write!(f, ",")?;
        }
        write!(f, ")")
    }
}

impl From<&Shape> for SymShape {
    fn from(s: &Shape) -> SymShape {
        SymShape::known(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_round_trip() {
        let s = Shape::from([2, 3]);
        let sym = SymShape::known(&s);
        assert!(sym.is_fully_defined());
        assert_eq!(sym.to_shape(), Some(s));
        assert_eq!(sym.num_elements(), Some(6));
    }

    #[test]
    fn unknown_dims() {
        let sym = SymShape::new(vec![None, Some(3)]);
        assert!(!sym.is_fully_defined());
        assert_eq!(sym.to_shape(), None);
        assert_eq!(sym.num_elements(), None);
        assert_eq!(sym.to_string(), "(?, 3)");
    }

    #[test]
    fn scalar_num_elements() {
        assert_eq!(SymShape::scalar().num_elements(), Some(1));
    }

    #[test]
    fn matches_concrete() {
        let sym = SymShape::new(vec![None, Some(3)]);
        assert!(sym.matches(&Shape::from([5, 3])));
        assert!(!sym.matches(&Shape::from([5, 4])));
        assert!(!sym.matches(&Shape::from([3])));
    }

    #[test]
    fn merge_refines() {
        let a = SymShape::new(vec![None, Some(3)]);
        let b = SymShape::new(vec![Some(2), None]);
        assert_eq!(a.merge(&b).unwrap(), SymShape::new(vec![Some(2), Some(3)]));
        let c = SymShape::new(vec![Some(9), Some(3)]);
        assert!(a.merge(&c).is_ok());
        let d = SymShape::new(vec![Some(2), Some(4)]);
        assert!(a.merge(&d).is_err());
    }

    #[test]
    fn broadcast_with_unknowns() {
        let a = SymShape::new(vec![None, Some(3)]);
        let b = SymShape::new(vec![Some(1)]);
        assert_eq!(a.broadcast(&b).unwrap(), a);
        let c = SymShape::new(vec![Some(4), Some(1)]);
        // (?, 3) x (4, 1): first dim must end up 4.
        assert_eq!(a.broadcast(&c).unwrap(), SymShape::new(vec![Some(4), Some(3)]));
        let d = SymShape::new(vec![Some(4), Some(5)]);
        assert!(a.broadcast(&d).is_err());
        // unknown vs unknown stays unknown
        let e = SymShape::unknown(1);
        assert_eq!(e.broadcast(&e).unwrap(), e);
    }

    #[test]
    fn broadcast_known_matches_tensor_broadcast() {
        let a = Shape::from([2, 1, 4]);
        let b = Shape::from([3, 1]);
        let sym = SymShape::known(&a).broadcast(&SymShape::known(&b)).unwrap();
        let concrete = tfe_tensor::broadcast_shapes(&a, &b).unwrap();
        assert_eq!(sym, SymShape::known(&concrete));
    }

    fn small_dims() -> impl Strategy<Value = Vec<usize>> {
        prop::collection::vec(1usize..4, 0..4)
    }

    proptest! {
        #[test]
        fn sym_broadcast_agrees_with_concrete(a in small_dims(), b in small_dims()) {
            let sa = Shape::new(a);
            let sb = Shape::new(b);
            let sym = SymShape::known(&sa).broadcast(&SymShape::known(&sb));
            let conc = tfe_tensor::broadcast_shapes(&sa, &sb);
            match (sym, conc) {
                (Ok(s), Ok(c)) => prop_assert_eq!(s, SymShape::known(&c)),
                (Err(_), Err(_)) => {}
                (s, c) => prop_assert!(false, "disagreement: {:?} vs {:?}", s, c),
            }
        }

        #[test]
        fn merge_is_commutative_on_compat(dims in small_dims()) {
            let full = SymShape::new(dims.iter().map(|&d| Some(d)).collect::<Vec<_>>());
            let partial = SymShape::unknown(full.rank());
            let m1 = full.merge(&partial).unwrap();
            let m2 = partial.merge(&full).unwrap();
            prop_assert_eq!(m1, m2);
        }
    }
}
