//! The standard operation catalog.
//!
//! Registers every primitive operation the workspace knows about — the
//! single op set shared by eager dispatch, the graph builder, the tracer
//! and autodiff (§1's "single set of primitive operations, kernels, and
//! user-visible APIs").

use crate::attr::Attrs;
use crate::opdef::{
    elems_or, Arity, InferCtx, OpDef, OpError, OpRegistry, OutputSig, WorkEstimate,
};
use crate::symshape::SymShape;
use tfe_tensor::conv::Padding;
use tfe_tensor::elementwise::{CmpOp, UnaryOp};
use tfe_tensor::{DType, TensorError};

/// Encode an output signature into the `out_dtypes`/`out_shapes` string
/// attributes used by `call`, `host_func`, `cond` and `while_loop`.
pub fn encode_sig(sig: &[(DType, SymShape)]) -> (String, String) {
    let dtypes = sig.iter().map(|(d, _)| d.name().to_string()).collect::<Vec<_>>().join(",");
    let shapes = sig
        .iter()
        .map(|(_, s)| {
            let dims = s
                .dims()
                .iter()
                .map(|d| d.map_or("?".to_string(), |v| v.to_string()))
                .collect::<Vec<_>>()
                .join(",");
            format!("({dims})")
        })
        .collect::<Vec<_>>()
        .join(";");
    (dtypes, shapes)
}

/// Decode the `out_dtypes`/`out_shapes` attribute pair.
///
/// # Errors
/// Malformed dtype names or shape lists.
pub fn decode_sig(dtypes: &str, shapes: &str) -> Result<OutputSig, OpError> {
    if dtypes.is_empty() {
        return Ok(Vec::new());
    }
    let dts: Vec<DType> = dtypes
        .split(',')
        .map(|n| {
            DType::from_name(n).ok_or_else(|| OpError::Invalid(format!("bad dtype name `{n}`")))
        })
        .collect::<Result<_, _>>()?;
    let shs: Vec<SymShape> = shapes
        .split(';')
        .map(|s| -> Result<SymShape, OpError> {
            let inner = s
                .strip_prefix('(')
                .and_then(|s| s.strip_suffix(')'))
                .ok_or_else(|| OpError::Invalid(format!("bad shape encoding `{s}`")))?;
            if inner.is_empty() {
                return Ok(SymShape::scalar());
            }
            let dims: Result<Vec<Option<usize>>, OpError> = inner
                .split(',')
                .filter(|p| !p.is_empty())
                .map(|p| {
                    if p == "?" {
                        Ok(None)
                    } else {
                        p.parse::<usize>()
                            .map(Some)
                            .map_err(|_| OpError::Invalid(format!("bad dim `{p}`")))
                    }
                })
                .collect();
            Ok(SymShape::new(dims?))
        })
        .collect::<Result<_, _>>()?;
    if dts.len() != shs.len() {
        return Err(OpError::Invalid(format!(
            "signature mismatch: {} dtypes vs {} shapes",
            dts.len(),
            shs.len()
        )));
    }
    Ok(dts.into_iter().zip(shs).collect())
}

/// Read the declared output signature from `attrs` (for `call` etc.).
///
/// # Errors
/// Missing or malformed attributes.
pub fn declared_outputs(attrs: &Attrs) -> Result<OutputSig, OpError> {
    decode_sig(attrs.str("out_dtypes")?, attrs.str("out_shapes")?)
}

fn same_as_input(ctx: &InferCtx) -> Result<OutputSig, OpError> {
    Ok(vec![(ctx.dtype(0)?, ctx.shape(0)?.clone())])
}

fn check_same_dtypes(ctx: &InferCtx) -> Result<DType, OpError> {
    let dt = ctx.dtype(0)?;
    for (i, other) in ctx.dtypes.iter().enumerate().skip(1) {
        if *other != dt {
            return Err(OpError::Shape(TensorError::DTypeMismatch {
                expected: format!("{dt} (input {i} disagrees with input 0)"),
                got: *other,
            }));
        }
    }
    Ok(dt)
}

fn broadcast_all(ctx: &InferCtx) -> Result<SymShape, OpError> {
    let mut shape = ctx.shape(0)?.clone();
    for s in &ctx.shapes[1..] {
        shape = shape.broadcast(s)?;
    }
    Ok(shape)
}

fn infer_binary(ctx: &InferCtx) -> Result<OutputSig, OpError> {
    let dt = check_same_dtypes(ctx)?;
    if dt == DType::Bool {
        return Err(OpError::Shape(TensorError::DTypeMismatch {
            expected: "a numeric dtype".to_string(),
            got: DType::Bool,
        }));
    }
    Ok(vec![(dt, broadcast_all(ctx)?)])
}

fn infer_compare(ctx: &InferCtx) -> Result<OutputSig, OpError> {
    check_same_dtypes(ctx)?;
    Ok(vec![(DType::Bool, broadcast_all(ctx)?)])
}

fn static_shape(dims: &[i64]) -> Result<SymShape, OpError> {
    let d: Result<Vec<Option<usize>>, OpError> = dims
        .iter()
        .map(|&v| {
            if v < 0 {
                Err(OpError::Invalid(format!("negative dimension {v}")))
            } else {
                Ok(Some(v as usize))
            }
        })
        .collect();
    Ok(SymShape::new(d?))
}

fn float_check(ctx: &InferCtx, i: usize) -> Result<(), OpError> {
    let dt = ctx.dtype(i)?;
    if !dt.is_float() {
        return Err(OpError::Shape(TensorError::DTypeMismatch {
            expected: "a float dtype".to_string(),
            got: dt,
        }));
    }
    Ok(())
}

/// Register the full standard catalog into `reg`.
///
/// # Errors
/// Only if an op name is already taken (i.e. called twice on one registry).
pub fn register_all(reg: &OpRegistry) -> Result<(), OpError> {
    register_elementwise(reg)?;
    register_structural(reg)?;
    register_linalg(reg)?;
    register_reductions(reg)?;
    register_nn(reg)?;
    register_random(reg)?;
    register_state(reg)?;
    register_control(reg)?;
    Ok(())
}

fn register_elementwise(reg: &OpRegistry) -> Result<(), OpError> {
    for op in tfe_tensor::elementwise::BinaryOp::all() {
        reg.register(OpDef::new(op.name(), Arity::Exact(2), infer_binary))?;
    }
    for op in UnaryOp::all() {
        let supports_int = op.supports_int();
        reg.register(OpDef::new(op.name(), Arity::Exact(1), move |ctx| {
            let dt = ctx.dtype(0)?;
            if dt == DType::Bool || (dt.is_int() && !supports_int) {
                return Err(OpError::Shape(TensorError::DTypeMismatch {
                    expected: "a supported numeric dtype".to_string(),
                    got: dt,
                }));
            }
            same_as_input(ctx)
        }))?;
    }
    for op in CmpOp::all() {
        reg.register(OpDef::new(op.name(), Arity::Exact(2), infer_compare))?;
    }
    for name in ["logical_and", "logical_or", "logical_xor"] {
        reg.register(OpDef::new(name, Arity::Exact(2), |ctx| {
            if ctx.dtype(0)? != DType::Bool || ctx.dtype(1)? != DType::Bool {
                return Err(OpError::Shape(TensorError::DTypeMismatch {
                    expected: "bool".to_string(),
                    got: if ctx.dtype(0)? != DType::Bool { ctx.dtype(0)? } else { ctx.dtype(1)? },
                }));
            }
            Ok(vec![(DType::Bool, broadcast_all(ctx)?)])
        }))?;
    }
    reg.register(OpDef::new("logical_not", Arity::Exact(1), |ctx| {
        if ctx.dtype(0)? != DType::Bool {
            return Err(OpError::Shape(TensorError::DTypeMismatch {
                expected: "bool".to_string(),
                got: ctx.dtype(0)?,
            }));
        }
        same_as_input(ctx)
    }))?;
    reg.register(OpDef::new("select", Arity::Exact(3), |ctx| {
        if ctx.dtype(0)? != DType::Bool {
            return Err(OpError::Shape(TensorError::DTypeMismatch {
                expected: "bool condition".to_string(),
                got: ctx.dtype(0)?,
            }));
        }
        if ctx.dtype(1)? != ctx.dtype(2)? {
            return Err(OpError::Shape(TensorError::DTypeMismatch {
                expected: ctx.dtype(1)?.name().to_string(),
                got: ctx.dtype(2)?,
            }));
        }
        Ok(vec![(ctx.dtype(1)?, broadcast_all(ctx)?)])
    }))?;
    reg.register(OpDef::new("cast", Arity::Exact(1), |ctx| {
        Ok(vec![(ctx.attrs.dtype("dtype")?, ctx.shape(0)?.clone())])
    }))?;
    // The fused elementwise kernel produced by the XLA-style fusion pass.
    reg.register(
        OpDef::new("fused_elementwise", Arity::AtLeast(1), |ctx| {
            Ok(vec![(ctx.attrs.dtype("out_dtype")?, broadcast_all(ctx)?)])
        })
        .with_work(|ctx, outputs| {
            // One pass over memory for the whole fused program, but all the
            // program's flops. Count only compute instructions — `in:` parts
            // alias their source and do no work.
            let n_instr = ctx
                .attrs
                .str("program")
                .map(|p| p.split(';').filter(|part| !part.starts_with("in:")).count().max(1))
                .unwrap_or(1) as f64;
            let out_elems: f64 = outputs.iter().map(|(_, s)| elems_or(s, 1) as f64).sum();
            let in_bytes: f64 = ctx
                .dtypes
                .iter()
                .zip(ctx.shapes)
                .map(|(dt, s)| (elems_or(s, 1) * dt.size_bytes()) as f64)
                .sum();
            let out_bytes: f64 =
                outputs.iter().map(|(dt, s)| (elems_or(s, 1) * dt.size_bytes()) as f64).sum();
            WorkEstimate { flops: n_instr * out_elems, bytes: in_bytes + out_bytes }
        }),
    )?;
    Ok(())
}

fn register_structural(reg: &OpRegistry) -> Result<(), OpError> {
    reg.register(OpDef::new("const", Arity::Exact(0), |ctx| {
        Ok(vec![(ctx.attrs.dtype("dtype")?, static_shape(ctx.attrs.int_list("shape")?)?)])
    }))?;
    // Graph-function argument. `shape` uses -1 for unknown dims (set from an
    // input signature); inference preserves them as unknown.
    reg.register(OpDef::new("placeholder", Arity::Exact(0), |ctx| {
        let dims: Vec<Option<usize>> = ctx
            .attrs
            .int_list("shape")?
            .iter()
            .map(|&d| if d < 0 { None } else { Some(d as usize) })
            .collect();
        Ok(vec![(ctx.attrs.dtype("dtype")?, SymShape::new(dims))])
    }))?;
    reg.register(OpDef::new("identity", Arity::Exact(1), same_as_input))?;
    reg.register(OpDef::new("zeros_like", Arity::Exact(1), same_as_input))?;
    reg.register(OpDef::new("ones_like", Arity::Exact(1), same_as_input))?;
    reg.register(OpDef::new("fill", Arity::Exact(0), |ctx| {
        Ok(vec![(ctx.attrs.dtype("dtype")?, static_shape(ctx.attrs.int_list("shape")?)?)])
    }))?;
    reg.register(OpDef::new("eye", Arity::Exact(0), |ctx| {
        let n = ctx.attrs.int("n")? as usize;
        Ok(vec![(ctx.attrs.dtype("dtype")?, SymShape::new(vec![Some(n), Some(n)]))])
    }))?;
    reg.register(OpDef::new("range", Arity::Exact(0), |ctx| {
        let count = ctx.attrs.int("count")? as usize;
        Ok(vec![(ctx.attrs.dtype("dtype")?, SymShape::new(vec![Some(count)]))])
    }))?;
    reg.register(OpDef::new("shape_of", Arity::Exact(1), |ctx| {
        Ok(vec![(DType::I64, SymShape::new(vec![Some(ctx.shape(0)?.rank())]))])
    }))?;
    // Tensor metadata as scalars. Like `shape_of`, these exist so traces
    // can consume shape information as data; the constant-propagation pass
    // folds them whenever the static shape is known.
    reg.register(OpDef::new("rank_of", Arity::Exact(1), |ctx| {
        let _ = ctx.shape(0)?;
        Ok(vec![(DType::I64, SymShape::scalar())])
    }))?;
    reg.register(OpDef::new("size_of", Arity::Exact(1), |ctx| {
        let _ = ctx.shape(0)?;
        Ok(vec![(DType::I64, SymShape::scalar())])
    }))?;
    reg.register(OpDef::new("reshape", Arity::Exact(1), |ctx| {
        let target = ctx.attrs.int_list("shape")?;
        let in_shape = ctx.shape(0)?;
        let mut out: Vec<Option<usize>> = Vec::with_capacity(target.len());
        let mut wildcard = None;
        let mut known = 1usize;
        for (i, &d) in target.iter().enumerate() {
            if d == -1 {
                if wildcard.is_some() {
                    return Err(OpError::Invalid("reshape accepts one -1".to_string()));
                }
                wildcard = Some(i);
                out.push(None);
            } else if d < 0 {
                return Err(OpError::Invalid(format!("bad reshape dim {d}")));
            } else {
                known = known.saturating_mul(d as usize);
                out.push(Some(d as usize));
            }
        }
        if let (Some(w), Some(n)) = (wildcard, in_shape.num_elements()) {
            if known == 0 || n % known != 0 {
                return Err(OpError::Shape(TensorError::InvalidArgument(format!(
                    "cannot reshape {n} elements into {target:?}"
                ))));
            }
            out[w] = Some(n / known);
        }
        if wildcard.is_none() {
            if let Some(n) = in_shape.num_elements() {
                if n != known {
                    return Err(OpError::Shape(TensorError::InvalidArgument(format!(
                        "cannot reshape {n} elements into {target:?}"
                    ))));
                }
            }
        }
        Ok(vec![(ctx.dtype(0)?, SymShape::new(out))])
    }))?;
    reg.register(OpDef::new("transpose", Arity::Exact(1), |ctx| {
        let perm = ctx.attrs.int_list("perm")?;
        let s = ctx.shape(0)?;
        if perm.len() != s.rank() {
            return Err(OpError::Invalid(format!(
                "perm length {} != rank {}",
                perm.len(),
                s.rank()
            )));
        }
        let mut seen = vec![false; s.rank()];
        let mut dims = Vec::with_capacity(s.rank());
        for &p in perm {
            let p = p as usize;
            if p >= s.rank() || seen[p] {
                return Err(OpError::Invalid(format!("bad permutation {perm:?}")));
            }
            seen[p] = true;
            dims.push(s.dims()[p]);
        }
        Ok(vec![(ctx.dtype(0)?, SymShape::new(dims))])
    }))?;
    reg.register(OpDef::new("expand_dims", Arity::Exact(1), |ctx| {
        let s = ctx.shape(0)?;
        let rank = s.rank() as i64;
        let axis = ctx.attrs.int("axis")?;
        let ax = if axis < 0 { axis + rank + 1 } else { axis };
        if ax < 0 || ax > rank {
            return Err(OpError::Shape(TensorError::InvalidAxis { axis, rank: s.rank() }));
        }
        let mut dims = s.dims().to_vec();
        dims.insert(ax as usize, Some(1));
        Ok(vec![(ctx.dtype(0)?, SymShape::new(dims))])
    }))?;
    reg.register(OpDef::new("squeeze", Arity::Exact(1), |ctx| {
        let s = ctx.shape(0)?;
        let axes = ctx.attrs.int_list_or("axes", &[])?;
        let mut drop = vec![false; s.rank()];
        if axes.is_empty() {
            for (i, d) in s.dims().iter().enumerate() {
                drop[i] = *d == Some(1);
            }
        } else {
            for &a in axes {
                let rank = s.rank() as i64;
                let r = if a < 0 { a + rank } else { a };
                if r < 0 || r >= rank {
                    return Err(OpError::Shape(TensorError::InvalidAxis {
                        axis: a,
                        rank: s.rank(),
                    }));
                }
                match s.dims()[r as usize] {
                    Some(1) | None => drop[r as usize] = true,
                    Some(d) => {
                        return Err(OpError::Invalid(format!(
                            "cannot squeeze axis {a} of size {d}"
                        )))
                    }
                }
            }
        }
        let dims: Vec<Option<usize>> =
            s.dims().iter().enumerate().filter(|(i, _)| !drop[*i]).map(|(_, d)| *d).collect();
        Ok(vec![(ctx.dtype(0)?, SymShape::new(dims))])
    }))?;
    reg.register(OpDef::new("concat", Arity::AtLeast(1), |ctx| {
        let dt = check_same_dtypes(ctx)?;
        let axis = ctx.attrs.int("axis")?;
        let first = ctx.shape(0)?;
        let rank = first.rank() as i64;
        let ax = if axis < 0 { axis + rank } else { axis };
        if ax < 0 || ax >= rank {
            return Err(OpError::Shape(TensorError::InvalidAxis { axis, rank: first.rank() }));
        }
        let ax = ax as usize;
        let mut dims = first.dims().to_vec();
        let mut total = Some(0usize);
        for s in ctx.shapes {
            if s.rank() != first.rank() {
                return Err(OpError::Invalid("concat rank mismatch".to_string()));
            }
            for (i, (dim, &sd)) in dims.iter_mut().zip(s.dims()).enumerate() {
                if i != ax {
                    match (*dim, sd) {
                        (Some(a), Some(b)) if a != b => {
                            return Err(OpError::Invalid(format!(
                                "concat dim {i} mismatch: {a} vs {b}"
                            )))
                        }
                        (None, known) => *dim = known,
                        _ => {}
                    }
                }
            }
            total = match (total, s.dims()[ax]) {
                (Some(t), Some(d)) => Some(t + d),
                _ => None,
            };
        }
        dims[ax] = total;
        Ok(vec![(dt, SymShape::new(dims))])
    }))?;
    reg.register(OpDef::new("split", Arity::Exact(1), |ctx| {
        let num = ctx.attrs.int("num")?;
        if num < 1 {
            return Err(OpError::Invalid(format!("split num must be >= 1, got {num}")));
        }
        let num = num as usize;
        let axis = ctx.attrs.int("axis")?;
        let s = ctx.shape(0)?;
        let rank = s.rank() as i64;
        let ax = if axis < 0 { axis + rank } else { axis };
        if ax < 0 || ax >= rank {
            return Err(OpError::Shape(TensorError::InvalidAxis { axis, rank: s.rank() }));
        }
        let ax = ax as usize;
        let part = match s.dims()[ax] {
            Some(d) => {
                if num == 0 || d % num != 0 {
                    return Err(OpError::Invalid(format!("cannot split {d} into {num} parts")));
                }
                Some(d / num)
            }
            None => None,
        };
        let mut dims = s.dims().to_vec();
        dims[ax] = part;
        let out = SymShape::new(dims);
        Ok(vec![(ctx.dtype(0)?, out); num])
    }))?;
    reg.register(OpDef::new("slice", Arity::Exact(1), |ctx| {
        let begin = ctx.attrs.int_list("begin")?;
        let size = ctx.attrs.int_list("size")?;
        let s = ctx.shape(0)?;
        if begin.len() != s.rank() || size.len() != s.rank() {
            return Err(OpError::Invalid("slice begin/size rank mismatch".to_string()));
        }
        let mut dims = Vec::with_capacity(s.rank());
        for i in 0..s.rank() {
            if size[i] == -1 {
                dims.push(s.dims()[i].map(|d| d - begin[i] as usize));
            } else {
                dims.push(Some(size[i] as usize));
            }
        }
        Ok(vec![(ctx.dtype(0)?, SymShape::new(dims))])
    }))?;
    // Adjoint of `slice`: scatters grad_out back into a zero tensor shaped
    // like the original input (input passed only for its shape).
    reg.register(OpDef::new("slice_grad", Arity::Exact(2), |ctx| {
        Ok(vec![(ctx.dtype(1)?, ctx.shape(0)?.clone())])
    }))?;
    reg.register(OpDef::new("pad", Arity::Exact(1), |ctx| {
        let paddings = ctx.attrs.int_list("paddings")?;
        let s = ctx.shape(0)?;
        if paddings.len() != 2 * s.rank() {
            return Err(OpError::Invalid("pad wants 2 entries per axis".to_string()));
        }
        let dims: Vec<Option<usize>> = s
            .dims()
            .iter()
            .enumerate()
            .map(|(i, d)| d.map(|d| d + paddings[2 * i] as usize + paddings[2 * i + 1] as usize))
            .collect();
        Ok(vec![(ctx.dtype(0)?, SymShape::new(dims))])
    }))?;
    reg.register(OpDef::new("gather", Arity::Exact(2), |ctx| {
        if !ctx.dtype(1)?.is_int() {
            return Err(OpError::Shape(TensorError::DTypeMismatch {
                expected: "integer indices".to_string(),
                got: ctx.dtype(1)?,
            }));
        }
        let axis = ctx.attrs.int_or("axis", 0)?;
        let s = ctx.shape(0)?;
        let rank = s.rank() as i64;
        let ax = if axis < 0 { axis + rank } else { axis };
        if ax < 0 || ax >= rank {
            return Err(OpError::Shape(TensorError::InvalidAxis { axis, rank: s.rank() }));
        }
        let ax = ax as usize;
        let mut dims = s.dims()[..ax].to_vec();
        dims.extend_from_slice(ctx.shape(1)?.dims());
        dims.extend_from_slice(&s.dims()[ax + 1..]);
        Ok(vec![(ctx.dtype(0)?, SymShape::new(dims))])
    }))?;
    // Adjoint of axis-0 `gather`: inputs (params, indices, grad_out).
    reg.register(OpDef::new("gather_grad", Arity::Exact(3), |ctx| {
        Ok(vec![(ctx.dtype(2)?, ctx.shape(0)?.clone())])
    }))?;
    reg.register(OpDef::new("tile", Arity::Exact(1), |ctx| {
        let multiples = ctx.attrs.int_list("multiples")?;
        let s = ctx.shape(0)?;
        if multiples.len() != s.rank() {
            return Err(OpError::Invalid("tile multiples rank mismatch".to_string()));
        }
        let dims: Vec<Option<usize>> =
            s.dims().iter().zip(multiples).map(|(d, &m)| d.map(|d| d * m as usize)).collect();
        Ok(vec![(ctx.dtype(0)?, SymShape::new(dims))])
    }))?;
    reg.register(OpDef::new("broadcast_to", Arity::Exact(1), |ctx| {
        Ok(vec![(ctx.dtype(0)?, static_shape(ctx.attrs.int_list("shape")?)?)])
    }))?;
    // Reduce `x` (input 0) down to the shape of `ref` (input 1): the
    // adjoint of broadcasting, used pervasively by binary-op gradients.
    reg.register(OpDef::new("sum_to_like", Arity::Exact(2), |ctx| {
        Ok(vec![(ctx.dtype(0)?, ctx.shape(1)?.clone())])
    }))?;
    reg.register(OpDef::new("one_hot", Arity::Exact(1), |ctx| {
        if !ctx.dtype(0)?.is_int() {
            return Err(OpError::Shape(TensorError::DTypeMismatch {
                expected: "integer indices".to_string(),
                got: ctx.dtype(0)?,
            }));
        }
        let depth = ctx.attrs.int("depth")? as usize;
        let mut dims = ctx.shape(0)?.dims().to_vec();
        dims.push(Some(depth));
        Ok(vec![(ctx.attrs.dtype("dtype")?, SymShape::new(dims))])
    }))?;
    reg.register(OpDef::new("reverse", Arity::Exact(1), |ctx| {
        let _ = ctx.shape(0)?.rank(); // axis validated at kernel time
        let _ = ctx.attrs.int_or("axis", 0)?;
        same_as_input(ctx)
    }))?;
    reg.register(OpDef::new("copy", Arity::Exact(1), same_as_input))?;
    reg.register(OpDef::new("print", Arity::Exact(1), same_as_input).stateful())?;
    Ok(())
}

fn register_linalg(reg: &OpRegistry) -> Result<(), OpError> {
    fn matmul_work(ctx: &InferCtx, outputs: &OutputSig) -> WorkEstimate {
        // flops = 2*m*k*n per batch element.
        let k = {
            let a = ctx.shapes.first().map(|s| s.dims()).unwrap_or(&[]);
            let ta = ctx.attrs.bool_or("transpose_a", false).unwrap_or(false);
            let idx = if ta { a.len().saturating_sub(2) } else { a.len().saturating_sub(1) };
            a.get(idx).copied().flatten().unwrap_or(1)
        };
        let out_elems: usize = outputs.iter().map(|(_, s)| elems_or(s, 1)).sum();
        let in_bytes: f64 = ctx
            .dtypes
            .iter()
            .zip(ctx.shapes)
            .map(|(dt, s)| (elems_or(s, 1) * dt.size_bytes()) as f64)
            .sum();
        let out_bytes: f64 =
            outputs.iter().map(|(dt, s)| (elems_or(s, 1) * dt.size_bytes()) as f64).sum();
        WorkEstimate { flops: 2.0 * k as f64 * out_elems as f64, bytes: in_bytes + out_bytes }
    }

    reg.register(
        OpDef::new("matmul", Arity::Exact(2), |ctx| {
            float_check(ctx, 0)?;
            check_same_dtypes(ctx)?;
            let (a, b) = (ctx.shape(0)?, ctx.shape(1)?);
            if a.rank() != 2 || b.rank() != 2 {
                return Err(OpError::Invalid("matmul wants rank-2 operands".to_string()));
            }
            let ta = ctx.attrs.bool_or("transpose_a", false)?;
            let tb = ctx.attrs.bool_or("transpose_b", false)?;
            let (m, k1) = if ta { (a.dims()[1], a.dims()[0]) } else { (a.dims()[0], a.dims()[1]) };
            let (k2, n) = if tb { (b.dims()[1], b.dims()[0]) } else { (b.dims()[0], b.dims()[1]) };
            if let (Some(x), Some(y)) = (k1, k2) {
                if x != y {
                    return Err(OpError::Invalid(format!(
                        "matmul inner dims mismatch: {x} vs {y}"
                    )));
                }
            }
            Ok(vec![(ctx.dtype(0)?, SymShape::new(vec![m, n]))])
        })
        .with_work(matmul_work),
    )?;
    reg.register(
        OpDef::new("batch_matmul", Arity::Exact(2), |ctx| {
            float_check(ctx, 0)?;
            check_same_dtypes(ctx)?;
            let (a, b) = (ctx.shape(0)?, ctx.shape(1)?);
            if a.rank() < 2 || b.rank() < 2 {
                return Err(OpError::Invalid("batch_matmul wants rank>=2".to_string()));
            }
            let ta = ctx.attrs.bool_or("transpose_a", false)?;
            let tb = ctx.attrs.bool_or("transpose_b", false)?;
            let ab = SymShape::new(a.dims()[..a.rank() - 2].to_vec());
            let bb = SymShape::new(b.dims()[..b.rank() - 2].to_vec());
            let batch = ab.broadcast(&bb)?;
            let ad = &a.dims()[a.rank() - 2..];
            let bd = &b.dims()[b.rank() - 2..];
            let (m, k1) = if ta { (ad[1], ad[0]) } else { (ad[0], ad[1]) };
            let (k2, n) = if tb { (bd[1], bd[0]) } else { (bd[0], bd[1]) };
            if let (Some(x), Some(y)) = (k1, k2) {
                if x != y {
                    return Err(OpError::Invalid(format!(
                        "batch_matmul inner dims mismatch: {x} vs {y}"
                    )));
                }
            }
            let mut dims = batch.dims().to_vec();
            dims.push(m);
            dims.push(n);
            Ok(vec![(ctx.dtype(0)?, SymShape::new(dims))])
        })
        .with_work(matmul_work),
    )?;
    Ok(())
}

fn register_reductions(reg: &OpRegistry) -> Result<(), OpError> {
    fn reduced(s: &SymShape, axes: &[i64], keep_dims: bool) -> Result<SymShape, OpError> {
        let rank = s.rank() as i64;
        let mut norm: Vec<usize> = Vec::new();
        if axes.is_empty() {
            norm = (0..s.rank()).collect();
        } else {
            for &a in axes {
                let r = if a < 0 { a + rank } else { a };
                if r < 0 || r >= rank {
                    return Err(OpError::Shape(TensorError::InvalidAxis {
                        axis: a,
                        rank: s.rank(),
                    }));
                }
                if norm.contains(&(r as usize)) {
                    return Err(OpError::Invalid(format!("duplicate reduce axis {a}")));
                }
                norm.push(r as usize);
            }
        }
        let mut dims = Vec::new();
        for (i, d) in s.dims().iter().enumerate() {
            if norm.contains(&i) {
                if keep_dims {
                    dims.push(Some(1));
                }
            } else {
                dims.push(*d);
            }
        }
        Ok(SymShape::new(dims))
    }

    for name in ["reduce_sum", "reduce_mean", "reduce_max", "reduce_min", "reduce_prod"] {
        reg.register(
            OpDef::new(name, Arity::Exact(1), |ctx| {
                if ctx.dtype(0)? == DType::Bool {
                    return Err(OpError::Shape(TensorError::DTypeMismatch {
                        expected: "a numeric dtype".to_string(),
                        got: DType::Bool,
                    }));
                }
                let axes = ctx.attrs.int_list_or("axes", &[])?;
                let keep = ctx.attrs.bool_or("keep_dims", false)?;
                Ok(vec![(ctx.dtype(0)?, reduced(ctx.shape(0)?, axes, keep)?)])
            })
            .with_work(|ctx, _| {
                let n = elems_or(ctx.shapes.first().unwrap_or(&SymShape::scalar()), 1);
                let b = (n * ctx.dtypes.first().map(|d| d.size_bytes()).unwrap_or(4)) as f64;
                WorkEstimate { flops: n as f64, bytes: b }
            }),
        )?;
    }
    for name in ["reduce_any", "reduce_all"] {
        reg.register(OpDef::new(name, Arity::Exact(1), |ctx| {
            if ctx.dtype(0)? != DType::Bool {
                return Err(OpError::Shape(TensorError::DTypeMismatch {
                    expected: "bool".to_string(),
                    got: ctx.dtype(0)?,
                }));
            }
            let axes = ctx.attrs.int_list_or("axes", &[])?;
            let keep = ctx.attrs.bool_or("keep_dims", false)?;
            Ok(vec![(DType::Bool, reduced(ctx.shape(0)?, axes, keep)?)])
        }))?;
    }
    for name in ["argmax", "argmin"] {
        reg.register(OpDef::new(name, Arity::Exact(1), |ctx| {
            let axis = ctx.attrs.int_or("axis", 0)?;
            Ok(vec![(DType::I64, reduced(ctx.shape(0)?, &[axis], false)?)])
        }))?;
    }
    reg.register(OpDef::new("cumsum", Arity::Exact(1), |ctx| {
        let _ = ctx.attrs.int_or("axis", 0)?;
        same_as_input(ctx)
    }))?;
    Ok(())
}

fn conv_out_dim(input: Option<usize>, k: usize, stride: usize, padding: Padding) -> Option<usize> {
    input.map(|i| padding.resolve(i, k, stride).0)
}

fn conv_attrs(attrs: &Attrs) -> Result<((usize, usize), Padding), OpError> {
    let strides = attrs.int_list_or("strides", &[1, 1])?;
    if strides.len() != 2 || strides.iter().any(|&s| s <= 0) {
        return Err(OpError::Invalid("strides must be two positive ints".to_string()));
    }
    let padding = Padding::from_name(attrs.str("padding").unwrap_or("SAME"))
        .ok_or_else(|| OpError::Invalid("padding must be SAME or VALID".to_string()))?;
    Ok(((strides[0] as usize, strides[1] as usize), padding))
}

fn register_nn(reg: &OpRegistry) -> Result<(), OpError> {
    fn conv_work(ctx: &InferCtx, outputs: &OutputSig) -> WorkEstimate {
        // All three conv ops perform ~2 * |activation grad/output| * kh *
        // kw * c_in flops, where the "spatial" tensor is the forward
        // output for conv2d and the incoming gradient (input 2) for the
        // two backprop variants. Using the op's own *output* for the
        // backprop-filter case would badly overcount (its output is the
        // small filter, not an activation).
        let filter = ctx.shapes.get(1).map(|s| s.dims()).unwrap_or(&[]);
        let khkwc: usize = filter.iter().take(3).map(|d| d.unwrap_or(1)).product();
        let spatial: usize = if ctx.shapes.len() >= 3 {
            elems_or(ctx.shapes.get(2).unwrap_or(&SymShape::scalar()), 1)
        } else {
            outputs.iter().map(|(_, s)| elems_or(s, 1)).sum()
        };
        let in_bytes: f64 = ctx
            .dtypes
            .iter()
            .zip(ctx.shapes)
            .map(|(dt, s)| (elems_or(s, 1) * dt.size_bytes()) as f64)
            .sum();
        let out_elems: usize = outputs.iter().map(|(_, s)| elems_or(s, 1)).sum();
        WorkEstimate {
            flops: 2.0 * spatial as f64 * khkwc as f64,
            bytes: in_bytes + (out_elems * 4) as f64,
        }
    }

    reg.register(
        OpDef::new("conv2d", Arity::Exact(2), |ctx| {
            float_check(ctx, 0)?;
            check_same_dtypes(ctx)?;
            let (strides, padding) = conv_attrs(ctx.attrs)?;
            let x = ctx.shape(0)?;
            let f = ctx.shape(1)?;
            if x.rank() != 4 || f.rank() != 4 {
                return Err(OpError::Invalid(
                    "conv2d wants NHWC input and HWIO filter".to_string(),
                ));
            }
            if let (Some(ci), Some(fi)) = (x.dims()[3], f.dims()[2]) {
                if ci != fi {
                    return Err(OpError::Invalid(format!(
                        "conv2d channel mismatch: input {ci} vs filter {fi}"
                    )));
                }
            }
            let kh = f.dims()[0].unwrap_or(1);
            let kw = f.dims()[1].unwrap_or(1);
            let oh = conv_out_dim(x.dims()[1], kh, strides.0, padding);
            let ow = conv_out_dim(x.dims()[2], kw, strides.1, padding);
            Ok(vec![(ctx.dtype(0)?, SymShape::new(vec![x.dims()[0], oh, ow, f.dims()[3]]))])
        })
        .with_work(conv_work),
    )?;
    reg.register(
        OpDef::new("conv2d_backprop_input", Arity::Exact(3), |ctx| {
            Ok(vec![(ctx.dtype(2)?, ctx.shape(0)?.clone())])
        })
        .with_work(conv_work),
    )?;
    reg.register(
        OpDef::new("conv2d_backprop_filter", Arity::Exact(3), |ctx| {
            Ok(vec![(ctx.dtype(2)?, ctx.shape(1)?.clone())])
        })
        .with_work(conv_work),
    )?;
    for name in ["max_pool", "avg_pool"] {
        reg.register(OpDef::new(name, Arity::Exact(1), |ctx| {
            float_check(ctx, 0)?;
            let ksize = ctx.attrs.int_list("ksize")?;
            let (strides, padding) = conv_attrs(ctx.attrs)?;
            let x = ctx.shape(0)?;
            if x.rank() != 4 || ksize.len() != 2 {
                return Err(OpError::Invalid("pool wants NHWC input and 2-elem ksize".to_string()));
            }
            let oh = conv_out_dim(x.dims()[1], ksize[0] as usize, strides.0, padding);
            let ow = conv_out_dim(x.dims()[2], ksize[1] as usize, strides.1, padding);
            Ok(vec![(ctx.dtype(0)?, SymShape::new(vec![x.dims()[0], oh, ow, x.dims()[3]]))])
        }))?;
    }
    for name in ["max_pool_grad", "avg_pool_grad"] {
        reg.register(OpDef::new(name, Arity::Exact(2), |ctx| {
            Ok(vec![(ctx.dtype(1)?, ctx.shape(0)?.clone())])
        }))?;
    }
    reg.register(OpDef::new("softmax", Arity::Exact(1), |ctx| {
        float_check(ctx, 0)?;
        same_as_input(ctx)
    }))?;
    reg.register(OpDef::new("log_softmax", Arity::Exact(1), |ctx| {
        float_check(ctx, 0)?;
        same_as_input(ctx)
    }))?;
    reg.register(OpDef::new("sparse_softmax_xent", Arity::Exact(2), |ctx| {
        float_check(ctx, 0)?;
        if !ctx.dtype(1)?.is_int() {
            return Err(OpError::Shape(TensorError::DTypeMismatch {
                expected: "integer labels".to_string(),
                got: ctx.dtype(1)?,
            }));
        }
        let logits = ctx.shape(0)?;
        if logits.rank() < 1 {
            return Err(OpError::Invalid("logits must have a class axis".to_string()));
        }
        Ok(vec![(ctx.dtype(0)?, SymShape::new(logits.dims()[..logits.rank() - 1].to_vec()))])
    }))?;
    reg.register(OpDef::new("softmax_xent_grad", Arity::Exact(3), |ctx| {
        Ok(vec![(ctx.dtype(0)?, ctx.shape(0)?.clone())])
    }))?;
    Ok(())
}

fn register_random(reg: &OpRegistry) -> Result<(), OpError> {
    for name in ["random_normal", "random_uniform", "truncated_normal"] {
        reg.register(
            OpDef::new(name, Arity::Exact(0), |ctx| {
                Ok(vec![(ctx.attrs.dtype("dtype")?, static_shape(ctx.attrs.int_list("shape")?)?)])
            })
            .stateful(),
        )?;
    }
    reg.register(
        OpDef::new("dropout_mask", Arity::Exact(1), |ctx| {
            float_check(ctx, 0)?;
            let keep = ctx.attrs.float("keep_prob")?;
            if !(keep > 0.0 && keep <= 1.0) {
                return Err(OpError::Invalid(format!("keep_prob {keep} out of (0,1]")));
            }
            same_as_input(ctx)
        })
        .stateful(),
    )?;
    Ok(())
}

fn register_state(reg: &OpRegistry) -> Result<(), OpError> {
    reg.register(
        OpDef::new("read_variable", Arity::Exact(0), |ctx| {
            Ok(vec![(ctx.attrs.dtype("dtype")?, static_shape(ctx.attrs.int_list("shape")?)?)])
        })
        .stateful(),
    )?;
    for name in ["assign", "assign_add", "assign_sub"] {
        reg.register(
            OpDef::new(name, Arity::Exact(1), |ctx| {
                let _ = ctx.attrs.int("var_id")?;
                Ok(Vec::new())
            })
            .stateful(),
        )?;
    }
    Ok(())
}

fn register_control(reg: &OpRegistry) -> Result<(), OpError> {
    // Graph-function invocation (§4.6 "graph functions are themselves
    // executed by an operation"). Statefulness is decided per call site by
    // the tracer (attr `stateful`), so the op itself is registered
    // stateless and the pruning pass consults the attr.
    reg.register(OpDef::new("call", Arity::AtLeast(0), |ctx| {
        let _ = ctx.attrs.str("function")?;
        declared_outputs(ctx.attrs)
    }))?;
    // `py_func` analog (§4.7): runs a host closure imperatively inside a
    // staged computation.
    reg.register(
        OpDef::new("host_func", Arity::AtLeast(0), |ctx| {
            let _ = ctx.attrs.int("fn_id")?;
            declared_outputs(ctx.attrs)
        })
        .stateful(),
    )?;
    reg.register(OpDef::new("cond", Arity::AtLeast(1), |ctx| {
        if ctx.dtype(0)? != DType::Bool {
            return Err(OpError::Shape(TensorError::DTypeMismatch {
                expected: "bool predicate".to_string(),
                got: ctx.dtype(0)?,
            }));
        }
        let _ = ctx.attrs.str("then_fn")?;
        let _ = ctx.attrs.str("else_fn")?;
        declared_outputs(ctx.attrs)
    }))?;
    reg.register(OpDef::new("while_loop", Arity::AtLeast(0), |ctx| {
        let _ = ctx.attrs.str("cond_fn")?;
        let _ = ctx.attrs.str("body_fn")?;
        // Loop-carried values keep their signatures.
        Ok(ctx.dtypes.iter().copied().zip(ctx.shapes.iter().cloned()).collect())
    }))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_tensor::Shape;

    fn reg() -> OpRegistry {
        let r = OpRegistry::new();
        register_all(&r).unwrap();
        r
    }

    fn infer(
        r: &OpRegistry,
        op: &str,
        dtypes: &[DType],
        shapes: &[SymShape],
        attrs: &Attrs,
    ) -> Result<OutputSig, OpError> {
        r.lookup(op).unwrap().infer(&InferCtx { dtypes, shapes, attrs })
    }

    fn known(dims: &[usize]) -> SymShape {
        SymShape::known(&Shape::from(dims))
    }

    #[test]
    fn catalog_size_and_contents() {
        let r = reg();
        for name in [
            "add",
            "mul",
            "relu",
            "matmul",
            "conv2d",
            "reduce_sum",
            "call",
            "host_func",
            "read_variable",
            "assign_add",
            "random_normal",
            "cond",
            "while_loop",
            "fused_elementwise",
            "sum_to_like",
        ] {
            assert!(r.contains(name), "missing op {name}");
        }
        assert!(r.len() >= 80, "catalog has {} ops", r.len());
    }

    #[test]
    fn binary_broadcast_inference() {
        let r = reg();
        let out = infer(
            &r,
            "add",
            &[DType::F32, DType::F32],
            &[known(&[2, 1]), known(&[3])],
            &Attrs::new(),
        )
        .unwrap();
        assert_eq!(out, vec![(DType::F32, known(&[2, 3]))]);
        // dtype mismatch
        assert!(infer(
            &r,
            "add",
            &[DType::F32, DType::F64],
            &[known(&[1]), known(&[1])],
            &Attrs::new()
        )
        .is_err());
        // bool arithmetic
        assert!(infer(
            &r,
            "add",
            &[DType::Bool, DType::Bool],
            &[known(&[1]), known(&[1])],
            &Attrs::new()
        )
        .is_err());
    }

    #[test]
    fn compare_produces_bool() {
        let r = reg();
        let out = infer(
            &r,
            "greater",
            &[DType::I32, DType::I32],
            &[known(&[4]), SymShape::scalar()],
            &Attrs::new(),
        )
        .unwrap();
        assert_eq!(out[0].0, DType::Bool);
        assert_eq!(out[0].1, known(&[4]));
    }

    #[test]
    fn unary_int_restrictions() {
        let r = reg();
        assert!(infer(&r, "abs", &[DType::I32], &[known(&[2])], &Attrs::new()).is_ok());
        assert!(infer(&r, "exp", &[DType::I32], &[known(&[2])], &Attrs::new()).is_err());
        assert!(infer(&r, "relu", &[DType::Bool], &[known(&[2])], &Attrs::new()).is_err());
    }

    #[test]
    fn matmul_inference_with_unknown_batch() {
        let r = reg();
        let a = SymShape::new(vec![None, Some(5)]);
        let out =
            infer(&r, "matmul", &[DType::F32, DType::F32], &[a, known(&[5, 3])], &Attrs::new())
                .unwrap();
        assert_eq!(out[0].1, SymShape::new(vec![None, Some(3)]));
        // transpose flags
        let out = infer(
            &r,
            "matmul",
            &[DType::F32, DType::F32],
            &[known(&[5, 2]), known(&[5, 3])],
            &Attrs::new().with("transpose_a", true),
        )
        .unwrap();
        assert_eq!(out[0].1, known(&[2, 3]));
        // mismatch
        assert!(infer(
            &r,
            "matmul",
            &[DType::F32, DType::F32],
            &[known(&[2, 5]), known(&[4, 3])],
            &Attrs::new()
        )
        .is_err());
    }

    #[test]
    fn reshape_inference() {
        let r = reg();
        let out = infer(
            &r,
            "reshape",
            &[DType::F32],
            &[known(&[2, 6])],
            &Attrs::new().with("shape", vec![3i64, -1]),
        )
        .unwrap();
        assert_eq!(out[0].1, known(&[3, 4]));
        // unknown input leaves wildcard unknown
        let out = infer(
            &r,
            "reshape",
            &[DType::F32],
            &[SymShape::new(vec![None, Some(6)])],
            &Attrs::new().with("shape", vec![-1i64, 3]),
        )
        .unwrap();
        assert_eq!(out[0].1, SymShape::new(vec![None, Some(3)]));
        assert!(infer(
            &r,
            "reshape",
            &[DType::F32],
            &[known(&[5])],
            &Attrs::new().with("shape", vec![2i64, 2])
        )
        .is_err());
    }

    #[test]
    fn conv_pool_inference() {
        let r = reg();
        let out = infer(
            &r,
            "conv2d",
            &[DType::F32, DType::F32],
            &[known(&[8, 32, 32, 3]), known(&[3, 3, 3, 16])],
            &Attrs::new().with("strides", vec![2i64, 2]).with("padding", "SAME"),
        )
        .unwrap();
        assert_eq!(out[0].1, known(&[8, 16, 16, 16]));
        let out = infer(
            &r,
            "max_pool",
            &[DType::F32],
            &[known(&[8, 16, 16, 16])],
            &Attrs::new()
                .with("ksize", vec![2i64, 2])
                .with("strides", vec![2i64, 2])
                .with("padding", "VALID"),
        )
        .unwrap();
        assert_eq!(out[0].1, known(&[8, 8, 8, 16]));
        // channel mismatch
        assert!(infer(
            &r,
            "conv2d",
            &[DType::F32, DType::F32],
            &[known(&[8, 32, 32, 3]), known(&[3, 3, 4, 16])],
            &Attrs::new().with("strides", vec![1i64, 1]).with("padding", "SAME"),
        )
        .is_err());
    }

    #[test]
    fn reduce_inference() {
        let r = reg();
        let out = infer(
            &r,
            "reduce_sum",
            &[DType::F32],
            &[known(&[2, 3, 4])],
            &Attrs::new().with("axes", vec![1i64]),
        )
        .unwrap();
        assert_eq!(out[0].1, known(&[2, 4]));
        let out = infer(
            &r,
            "reduce_mean",
            &[DType::F32],
            &[known(&[2, 3])],
            &Attrs::new().with("axes", vec![-1i64]).with("keep_dims", true),
        )
        .unwrap();
        assert_eq!(out[0].1, known(&[2, 1]));
        let out =
            infer(&r, "argmax", &[DType::F32], &[known(&[2, 3])], &Attrs::new().with("axis", 1i64))
                .unwrap();
        assert_eq!(out[0], (DType::I64, known(&[2])));
    }

    #[test]
    fn split_multiple_outputs() {
        let r = reg();
        let out = infer(
            &r,
            "split",
            &[DType::F32],
            &[known(&[2, 6])],
            &Attrs::new().with("num", 3i64).with("axis", 1i64),
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|(_, s)| *s == known(&[2, 2])));
    }

    #[test]
    fn call_uses_declared_signature() {
        let r = reg();
        let (dts, shs) = encode_sig(&[
            (DType::F32, SymShape::new(vec![None, Some(3)])),
            (DType::I64, SymShape::scalar()),
        ]);
        let out = infer(
            &r,
            "call",
            &[DType::F32],
            &[known(&[1])],
            &Attrs::new().with("function", "f").with("out_dtypes", dts).with("out_shapes", shs),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], (DType::F32, SymShape::new(vec![None, Some(3)])));
        assert_eq!(out[1], (DType::I64, SymShape::scalar()));
    }

    #[test]
    fn sig_encoding_round_trips() {
        let sig = vec![
            (DType::F32, SymShape::new(vec![Some(2), None])),
            (DType::Bool, SymShape::scalar()),
            (DType::I32, SymShape::new(vec![Some(7)])),
        ];
        let (d, s) = encode_sig(&sig);
        assert_eq!(decode_sig(&d, &s).unwrap(), sig);
        let (d, s) = encode_sig(&[]);
        assert_eq!(decode_sig(&d, &s).unwrap(), vec![]);
    }

    #[test]
    fn stateful_flags() {
        let r = reg();
        for name in ["random_normal", "read_variable", "assign", "host_func", "print"] {
            assert!(r.lookup(name).unwrap().is_stateful(), "{name} must be stateful");
        }
        for name in ["add", "matmul", "call", "reshape"] {
            assert!(!r.lookup(name).unwrap().is_stateful(), "{name} must be stateless");
        }
    }

    #[test]
    fn matmul_work_estimate() {
        let r = reg();
        let def = r.lookup("matmul").unwrap();
        let attrs = Attrs::new();
        let shapes = [known(&[4, 5]), known(&[5, 6])];
        let ctx = InferCtx { dtypes: &[DType::F32, DType::F32], shapes: &shapes, attrs: &attrs };
        let out = def.infer(&ctx).unwrap();
        let w = def.work(&ctx, &out);
        assert_eq!(w.flops, 2.0 * 5.0 * 24.0);
    }

    #[test]
    fn while_loop_passes_signatures_through() {
        let r = reg();
        let out = infer(
            &r,
            "while_loop",
            &[DType::F32, DType::I64],
            &[known(&[2]), SymShape::scalar()],
            &Attrs::new().with("cond_fn", "c").with("body_fn", "b"),
        )
        .unwrap();
        assert_eq!(out, vec![(DType::F32, known(&[2])), (DType::I64, SymShape::scalar())]);
    }

    #[test]
    fn cond_requires_bool_predicate() {
        let r = reg();
        let (d, s) = encode_sig(&[(DType::F32, SymShape::scalar())]);
        let attrs = Attrs::new()
            .with("then_fn", "t")
            .with("else_fn", "e")
            .with("out_dtypes", d)
            .with("out_shapes", s);
        assert!(infer(&r, "cond", &[DType::F32], &[SymShape::scalar()], &attrs).is_err());
        assert!(infer(&r, "cond", &[DType::Bool], &[SymShape::scalar()], &attrs).is_ok());
    }
}
