//! # tfe-ops
//!
//! Operation definitions for the `tf-eager` workspace: attributes, symbolic
//! shapes, shape/dtype inference, and the standard op catalog.
//!
//! The paper's key implementation property (§1, §5) is that imperative and
//! staged execution share *one* set of primitive operations. The
//! [`OpRegistry`] here is that set: every other layer (eager dispatch,
//! graph building, gradients, kernels) keys off the definitions registered
//! by [`ensure_standard_ops`].
//!
//! ```
//! use tfe_ops::{ensure_standard_ops, global, Attrs, InferCtx, SymShape};
//! use tfe_tensor::{DType, Shape};
//!
//! ensure_standard_ops();
//! let add = global().lookup("add").unwrap();
//! let shapes = [SymShape::known(&Shape::from([2, 1])), SymShape::known(&Shape::from([3]))];
//! let attrs = Attrs::new();
//! let out = add
//!     .infer(&InferCtx { dtypes: &[DType::F32, DType::F32], shapes: &shapes, attrs: &attrs })
//!     .unwrap();
//! assert_eq!(out[0].1, SymShape::known(&Shape::from([2, 3])));
//! ```

#![warn(missing_docs)]

pub mod algebra;
mod attr;
pub mod catalog;
mod opdef;
mod symshape;

pub use attr::{AttrError, AttrValue, Attrs};
pub use opdef::{
    elems_or, ensure_standard_ops, global, Arity, InferCtx, OpDef, OpError, OpRegistry, OutputSig,
    WorkEstimate,
};
pub use symshape::SymShape;
