//! Algebraic metadata about the op catalog, queried by the graph
//! optimizer's simplification pass.
//!
//! Keeping these facts next to the op definitions (rather than hard-coded
//! in the pass) means a new op picks up simplification behavior by adding
//! one table entry here, and the pass never has to guess at semantics.

/// Which operand of a binary op may be its identity element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdentitySide {
    /// Either operand (commutative ops: `x * 1`, `1 * x`).
    Either,
    /// Only the right-hand operand (`x - 0`, `x / 1`).
    Rhs,
}

/// The identity element of a binary op, if it has one: applying the op
/// with this constant on the permitted side returns the other operand
/// unchanged (same dtype and shape assumed; the pass checks both).
///
/// `x * 0` is deliberately absent: it is an annihilator, not an identity,
/// and rewriting it would change NaN/Inf propagation.
pub fn identity_operand(op: &str) -> Option<(IdentitySide, f64)> {
    match op {
        "add" => Some((IdentitySide::Either, 0.0)),
        "sub" => Some((IdentitySide::Rhs, 0.0)),
        "mul" => Some((IdentitySide::Either, 1.0)),
        "div" => Some((IdentitySide::Rhs, 1.0)),
        _ => None,
    }
}

/// Whether `perm` is the identity permutation `[0, 1, ..., n-1]`.
pub fn is_identity_perm(perm: &[i64]) -> bool {
    perm.iter().enumerate().all(|(i, &p)| p == i as i64)
}

/// Whether `perm` is the rank-2 swap `[1, 0]` — the transpose shape the
/// packed gemm absorbs for free via its `transpose_a`/`transpose_b` flags.
pub fn is_swap_perm(perm: &[i64]) -> bool {
    perm == [1, 0]
}

/// Compose two transpose permutations: if `y = transpose(x, inner)` and
/// `z = transpose(y, outer)`, then `z = transpose(x, compose)` where
/// `compose[i] = inner[outer[i]]`. Returns `None` on rank mismatch or an
/// out-of-range index (malformed graphs never reach the pass, but the
/// helper stays total).
pub fn compose_perms(inner: &[i64], outer: &[i64]) -> Option<Vec<i64>> {
    if inner.len() != outer.len() {
        return None;
    }
    outer.iter().map(|&o| inner.get(usize::try_from(o).ok()?).copied()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_table() {
        assert_eq!(identity_operand("add"), Some((IdentitySide::Either, 0.0)));
        assert_eq!(identity_operand("sub"), Some((IdentitySide::Rhs, 0.0)));
        assert_eq!(identity_operand("mul"), Some((IdentitySide::Either, 1.0)));
        assert_eq!(identity_operand("div"), Some((IdentitySide::Rhs, 1.0)));
        assert_eq!(identity_operand("maximum"), None);
        assert_eq!(identity_operand("matmul"), None);
    }

    #[test]
    fn perm_helpers() {
        assert!(is_identity_perm(&[0, 1, 2]));
        assert!(is_identity_perm(&[]));
        assert!(!is_identity_perm(&[1, 0]));
        assert!(is_swap_perm(&[1, 0]));
        assert!(!is_swap_perm(&[0, 1]));
        assert!(!is_swap_perm(&[2, 1, 0]));
    }

    #[test]
    fn perm_composition() {
        // transpose twice with [1, 0] cancels.
        assert_eq!(compose_perms(&[1, 0], &[1, 0]), Some(vec![0, 1]));
        // rank-3 rotation composed with itself.
        assert_eq!(compose_perms(&[1, 2, 0], &[1, 2, 0]), Some(vec![2, 0, 1]));
        // rank mismatch and bad indices are rejected, not panics.
        assert_eq!(compose_perms(&[1, 0], &[0, 1, 2]), None);
        assert_eq!(compose_perms(&[1, 0], &[0, 7]), None);
    }
}
