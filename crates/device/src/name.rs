//! Application-level device names, as in §4.4/§4.5 of the paper:
//! `/job:training/task:2/device:GPU:0`.

use std::fmt;
use std::str::FromStr;

/// The kind of compute device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceType {
    /// Host CPU.
    Cpu,
    /// (Simulated) GPU accelerator.
    Gpu,
    /// (Simulated) TPU accelerator; staged computations are compiled
    /// XLA-style before running here.
    Tpu,
}

impl DeviceType {
    /// Upper-case name used inside device strings (`CPU`, `GPU`, `TPU`).
    pub fn name(self) -> &'static str {
        match self {
            DeviceType::Cpu => "CPU",
            DeviceType::Gpu => "GPU",
            DeviceType::Tpu => "TPU",
        }
    }

    /// Parse from the upper/lower-case spelling.
    pub fn from_name(name: &str) -> Option<DeviceType> {
        match name.to_ascii_uppercase().as_str() {
            "CPU" => Some(DeviceType::Cpu),
            "GPU" => Some(DeviceType::Gpu),
            "TPU" => Some(DeviceType::Tpu),
            _ => None,
        }
    }

    /// Whether kernels must be compiled (XLA-style) before running.
    ///
    /// Mirrors §4.4: TPUs execute compiled programs; per-op eager dispatch
    /// pays the compile each time.
    pub fn requires_compilation(self) -> bool {
        matches!(self, DeviceType::Tpu)
    }
}

impl fmt::Display for DeviceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully-qualified device name: job, task, device type, device index.
///
/// The canonical rendering is `/job:<job>/task:<n>/device:<TYPE>:<i>`.
/// Shorthand forms accepted by [`DeviceName::parse`] (and used throughout
/// the paper's listings) include `/gpu:0`, `/cpu:0` and `/device:GPU:0`,
/// which default to job `localhost`, task 0.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceName {
    /// Job name (e.g. `localhost`, `training`).
    pub job: String,
    /// Task index within the job.
    pub task: usize,
    /// Device kind.
    pub device_type: DeviceType,
    /// Device index within the task.
    pub index: usize,
}

impl DeviceName {
    /// A local (job `localhost`, task 0) device name.
    pub fn local(device_type: DeviceType, index: usize) -> DeviceName {
        DeviceName { job: "localhost".to_string(), task: 0, device_type, index }
    }

    /// The local CPU, `/job:localhost/task:0/device:CPU:0`.
    pub fn local_cpu() -> DeviceName {
        DeviceName::local(DeviceType::Cpu, 0)
    }

    /// Whether this device lives on the local job/task.
    pub fn is_local(&self) -> bool {
        self.job == "localhost" && self.task == 0
    }

    /// Parse a full or shorthand device string.
    ///
    /// Accepted forms:
    /// - `/job:training/task:2/device:GPU:0` (canonical)
    /// - `/device:GPU:0` (local shorthand)
    /// - `/gpu:0`, `/cpu:0`, `/tpu:0` (paper-style shorthand)
    ///
    /// # Errors
    /// A human-readable message describing the malformed component.
    pub fn parse(s: &str) -> Result<DeviceName, String> {
        let mut job = "localhost".to_string();
        let mut task = 0usize;
        let mut device: Option<(DeviceType, usize)> = None;
        if !s.starts_with('/') {
            return Err(format!("device name `{s}` must start with '/'"));
        }
        for part in s.split('/').skip(1) {
            if part.is_empty() {
                return Err(format!("empty component in device name `{s}`"));
            }
            let mut fields = part.split(':');
            let key = fields.next().unwrap_or_default();
            match key.to_ascii_lowercase().as_str() {
                "job" => {
                    job = fields
                        .next()
                        .filter(|v| !v.is_empty())
                        .ok_or_else(|| format!("missing job name in `{s}`"))?
                        .to_string();
                }
                "task" => {
                    task = fields
                        .next()
                        .ok_or_else(|| format!("missing task index in `{s}`"))?
                        .parse()
                        .map_err(|_| format!("invalid task index in `{s}`"))?;
                }
                "device" => {
                    let ty = fields
                        .next()
                        .and_then(DeviceType::from_name)
                        .ok_or_else(|| format!("invalid device type in `{s}`"))?;
                    let idx = fields
                        .next()
                        .ok_or_else(|| format!("missing device index in `{s}`"))?
                        .parse()
                        .map_err(|_| format!("invalid device index in `{s}`"))?;
                    device = Some((ty, idx));
                }
                // Shorthand: /gpu:0
                other => {
                    if let Some(ty) = DeviceType::from_name(other) {
                        let idx = fields
                            .next()
                            .ok_or_else(|| format!("missing device index in `{s}`"))?
                            .parse()
                            .map_err(|_| format!("invalid device index in `{s}`"))?;
                        device = Some((ty, idx));
                    } else {
                        return Err(format!("unknown component `{part}` in device name `{s}`"));
                    }
                }
            }
            if fields.next().is_some() {
                return Err(format!("trailing fields in component `{part}` of `{s}`"));
            }
        }
        let (device_type, index) =
            device.ok_or_else(|| format!("device name `{s}` has no device component"))?;
        Ok(DeviceName { job, task, device_type, index })
    }
}

impl fmt::Display for DeviceName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/job:{}/task:{}/device:{}:{}", self.job, self.task, self.device_type, self.index)
    }
}

impl FromStr for DeviceName {
    type Err = String;

    fn from_str(s: &str) -> Result<DeviceName, String> {
        DeviceName::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_round_trip() {
        let n = DeviceName::parse("/job:training/task:2/device:GPU:0").unwrap();
        assert_eq!(n.job, "training");
        assert_eq!(n.task, 2);
        assert_eq!(n.device_type, DeviceType::Gpu);
        assert_eq!(n.index, 0);
        assert_eq!(n.to_string(), "/job:training/task:2/device:GPU:0");
        assert_eq!(DeviceName::parse(&n.to_string()).unwrap(), n);
    }

    #[test]
    fn shorthand_forms() {
        assert_eq!(DeviceName::parse("/gpu:0").unwrap(), DeviceName::local(DeviceType::Gpu, 0));
        assert_eq!(DeviceName::parse("/cpu:1").unwrap(), DeviceName::local(DeviceType::Cpu, 1));
        assert_eq!(
            DeviceName::parse("/device:TPU:3").unwrap(),
            DeviceName::local(DeviceType::Tpu, 3)
        );
        assert_eq!(DeviceName::parse("/GPU:2").unwrap(), DeviceName::local(DeviceType::Gpu, 2));
    }

    #[test]
    fn is_local_detection() {
        assert!(DeviceName::local_cpu().is_local());
        assert!(!DeviceName::parse("/job:w/task:0/device:CPU:0").unwrap().is_local());
        assert!(!DeviceName::parse("/job:localhost/task:1/device:CPU:0").unwrap().is_local());
    }

    #[test]
    fn parse_errors() {
        assert!(DeviceName::parse("gpu:0").is_err());
        assert!(DeviceName::parse("/job:train").is_err()); // no device
        assert!(DeviceName::parse("/device:NPU:0").is_err());
        assert!(DeviceName::parse("/gpu").is_err());
        assert!(DeviceName::parse("/gpu:x").is_err());
        assert!(DeviceName::parse("/task:one/gpu:0").is_err());
        assert!(DeviceName::parse("/gpu:0:1").is_err());
        assert!(DeviceName::parse("//gpu:0").is_err());
    }

    #[test]
    fn device_type_names() {
        for t in [DeviceType::Cpu, DeviceType::Gpu, DeviceType::Tpu] {
            assert_eq!(DeviceType::from_name(t.name()), Some(t));
        }
        assert!(DeviceType::Tpu.requires_compilation());
        assert!(!DeviceType::Gpu.requires_compilation());
    }
}
