//! Device registry: the runtime detects devices at start-up and exposes
//! `list_devices` (§4.4); this module is that machinery.

use crate::cost::ComputeModel;
use crate::name::{DeviceName, DeviceType};
use parking_lot::RwLock;
use std::fmt;
use std::sync::Arc;

/// How kernels behave on a device.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Run the real CPU kernel and return real results (host execution).
    #[default]
    Real,
    /// Run the real kernel *and* charge the device's compute model to the
    /// virtual clock — simulated devices whose outputs must still be
    /// numerically correct (tests, examples).
    Simulated,
    /// Skip the kernel; produce zero-filled outputs of the right shape and
    /// charge the compute model. Used for paper-scale benchmarks
    /// (ResNet-50 at batch 32) where numeric output is irrelevant.
    CostOnly,
}

/// One device known to the runtime.
#[derive(Clone)]
pub struct Device {
    name: DeviceName,
    compute: Option<Arc<ComputeModel>>,
    kernel_mode: KernelMode,
}

impl Device {
    /// A real host-CPU device (no simulation).
    pub fn host_cpu() -> Device {
        Device { name: DeviceName::local_cpu(), compute: None, kernel_mode: KernelMode::Real }
    }

    /// A simulated device with a compute model.
    pub fn simulated(name: DeviceName, compute: ComputeModel, kernel_mode: KernelMode) -> Device {
        Device { name, compute: Some(Arc::new(compute)), kernel_mode }
    }

    /// The device's fully-qualified name.
    pub fn name(&self) -> &DeviceName {
        &self.name
    }

    /// The device kind.
    pub fn device_type(&self) -> DeviceType {
        self.name.device_type
    }

    /// The compute model, if this device is simulated.
    pub fn compute_model(&self) -> Option<&ComputeModel> {
        self.compute.as_deref()
    }

    /// How kernels execute here.
    pub fn kernel_mode(&self) -> &KernelMode {
        &self.kernel_mode
    }

    /// Whether results produced on this device are numerically meaningful.
    pub fn produces_real_values(&self) -> bool {
        !matches!(self.kernel_mode, KernelMode::CostOnly)
    }
}

impl fmt::Debug for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Device({}, mode={:?}, simulated={})",
            self.name,
            self.kernel_mode,
            self.compute.is_some()
        )
    }
}

/// Thread-safe registry of devices, ordered by registration.
///
/// A fresh manager always contains the host CPU at
/// `/job:localhost/task:0/device:CPU:0`.
#[derive(Debug)]
pub struct DeviceManager {
    devices: RwLock<Vec<Device>>,
}

impl DeviceManager {
    /// A manager holding only the host CPU.
    pub fn new() -> DeviceManager {
        DeviceManager { devices: RwLock::new(vec![Device::host_cpu()]) }
    }

    /// Register a device.
    ///
    /// # Errors
    /// A device with the same name already exists.
    pub fn register(&self, device: Device) -> Result<(), String> {
        let mut devs = self.devices.write();
        if devs.iter().any(|d| d.name == device.name) {
            return Err(format!("device {} already registered", device.name));
        }
        devs.push(device);
        Ok(())
    }

    /// All registered device names, in registration order (the
    /// `list_devices` endpoint of §4.4).
    pub fn list_devices(&self) -> Vec<DeviceName> {
        self.devices.read().iter().map(|d| d.name.clone()).collect()
    }

    /// Look up a device by exact name.
    pub fn find(&self, name: &DeviceName) -> Option<Device> {
        self.devices.read().iter().find(|d| &d.name == name).cloned()
    }

    /// Resolve a device string (full or shorthand) to a registered device.
    ///
    /// # Errors
    /// Parse failures or unknown devices.
    pub fn resolve(&self, name: &str) -> Result<Device, String> {
        let parsed = DeviceName::parse(name)?;
        self.find(&parsed).ok_or_else(|| {
            format!(
                "device {parsed} is not registered (known: {})",
                self.list_devices().iter().map(|d| d.to_string()).collect::<Vec<_>>().join(", ")
            )
        })
    }

    /// The first registered device of `ty`, if any — used for kernel-based
    /// default placement when the user gives no `device` scope (§4.4).
    pub fn first_of_type(&self, ty: DeviceType) -> Option<Device> {
        self.devices.read().iter().find(|d| d.device_type() == ty).cloned()
    }

    /// The host CPU device.
    pub fn host_cpu(&self) -> Device {
        self.find(&DeviceName::local_cpu()).expect("host CPU is always registered")
    }
}

impl Default for DeviceManager {
    fn default() -> DeviceManager {
        DeviceManager::new()
    }
}

/// Calibrated device profiles for the paper's evaluation hardware.
///
/// These numbers are *effective* throughputs chosen so the reproduction
/// harness lands near the paper's reported examples/sec; see
/// EXPERIMENTS.md for the calibration table.
pub mod profiles {
    use super::*;

    /// A GTX-1080-class GPU (Figure 3's device).
    pub fn gtx1080() -> ComputeModel {
        ComputeModel {
            flops_per_sec: 2.4e12,
            bytes_per_sec: 2.4e11,
            launch_ns: 6_000.0,
            min_kernel_ns: 4_000.0,
            saturation_flops: 3.0e9,
            min_utilization: 0.18,
        }
    }

    /// A Cloud-TPU-class accelerator (Table 1's device).
    pub fn cloud_tpu() -> ComputeModel {
        ComputeModel {
            flops_per_sec: 8.0e12,
            bytes_per_sec: 6.0e11,
            launch_ns: 2_000.0,
            min_kernel_ns: 1_500.0,
            saturation_flops: 2.0e10,
            min_utilization: 0.10,
        }
    }

    /// A Xeon-W-2135-class CPU (Figure 4's device).
    pub fn xeon_w2135() -> ComputeModel {
        ComputeModel {
            flops_per_sec: 8.0e10,
            bytes_per_sec: 6.0e10,
            launch_ns: 150.0,
            min_kernel_ns: 250.0,
            saturation_flops: 1.0e6,
            min_utilization: 0.05,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manager_starts_with_host_cpu() {
        let m = DeviceManager::new();
        let names = m.list_devices();
        assert_eq!(names, vec![DeviceName::local_cpu()]);
        assert!(m.host_cpu().compute_model().is_none());
    }

    #[test]
    fn register_and_resolve() {
        let m = DeviceManager::new();
        m.register(Device::simulated(
            DeviceName::local(DeviceType::Gpu, 0),
            profiles::gtx1080(),
            KernelMode::Simulated,
        ))
        .unwrap();
        let d = m.resolve("/gpu:0").unwrap();
        assert_eq!(d.device_type(), DeviceType::Gpu);
        assert!(d.compute_model().is_some());
        assert!(d.produces_real_values());
        assert!(m.resolve("/gpu:1").is_err());
        assert!(m.resolve("bad").is_err());
    }

    #[test]
    fn duplicate_registration_rejected() {
        let m = DeviceManager::new();
        assert!(m.register(Device::host_cpu()).is_err());
    }

    #[test]
    fn first_of_type() {
        let m = DeviceManager::new();
        assert!(m.first_of_type(DeviceType::Gpu).is_none());
        m.register(Device::simulated(
            DeviceName::local(DeviceType::Gpu, 1),
            profiles::gtx1080(),
            KernelMode::CostOnly,
        ))
        .unwrap();
        let d = m.first_of_type(DeviceType::Gpu).unwrap();
        assert_eq!(d.name().index, 1);
        assert!(!d.produces_real_values());
    }

    #[test]
    fn profiles_are_sane() {
        for p in [profiles::gtx1080(), profiles::cloud_tpu(), profiles::xeon_w2135()] {
            assert!(p.flops_per_sec > 0.0);
            assert!(p.bytes_per_sec > 0.0);
            assert!(p.min_utilization > 0.0 && p.min_utilization <= 1.0);
        }
        // Accelerators are faster than the CPU profile.
        assert!(profiles::gtx1080().flops_per_sec > profiles::xeon_w2135().flops_per_sec);
        assert!(profiles::cloud_tpu().flops_per_sec > profiles::gtx1080().flops_per_sec);
    }
}
