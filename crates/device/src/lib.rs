//! # tfe-device
//!
//! Device abstraction for the `tf-eager` workspace (§4.4/§4.5 of the
//! TensorFlow Eager paper): application-level device names
//! (`/job:training/task:2/device:GPU:0`), the device registry behind
//! `list_devices`, and the analytic cost models + virtual clock that stand
//! in for the paper's real GPU/TPU hardware (see DESIGN.md §3 for the
//! substitution rationale).
//!
//! ```
//! use tfe_device::{DeviceName, DeviceType};
//! let name: DeviceName = "/job:training/task:2/device:GPU:0".parse().unwrap();
//! assert_eq!(name.device_type, DeviceType::Gpu);
//! assert_eq!(DeviceName::parse("/gpu:0").unwrap(), DeviceName::local(DeviceType::Gpu, 0));
//! ```

#![warn(missing_docs)]

mod cost;
mod manager;
mod name;

pub use cost::{ComputeModel, DispatchModel, KernelCost, SimCounters, SimStats, VirtualClock};
pub use manager::{profiles, Device, DeviceManager, KernelMode};
pub use name::{DeviceName, DeviceType};
