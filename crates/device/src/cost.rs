//! Analytic cost models and the virtual clock used by the evaluation
//! harness.
//!
//! The paper's benchmarks (§6) measure the interplay between per-operation
//! *dispatch* overhead (CPython in their case) and *kernel* execution time
//! on real accelerators. Neither CPython nor a GTX 1080/Cloud TPU is
//! available here, so the harness runs the same executors under a virtual
//! clock: every dispatch and kernel charges nanoseconds computed from the
//! models below. DESIGN.md §3 documents this substitution.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Work performed by one kernel invocation, for cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelCost {
    /// Floating-point (or equivalent) operations.
    pub flops: f64,
    /// Bytes moved to/from device memory.
    pub bytes: f64,
}

impl KernelCost {
    /// A kernel touching `n` elements of `elem_bytes`-byte data with one
    /// flop per element (the elementwise default).
    pub fn elementwise(n: usize, elem_bytes: usize) -> KernelCost {
        KernelCost { flops: n as f64, bytes: (3 * n * elem_bytes) as f64 }
    }

    /// Sum of two costs (used when fusing kernels).
    pub fn combine(self, other: KernelCost) -> KernelCost {
        KernelCost { flops: self.flops + other.flops, bytes: self.bytes + other.bytes }
    }
}

/// Roofline-style device compute model.
///
/// `kernel_time = launch + max(min_kernel, max(flops/throughput,
/// bytes/bandwidth) / utilization(parallel_work))`.
///
/// The utilization ramp models small-batch under-utilization of wide
/// accelerators, which is what makes the paper's Figure 3 speed-ups vanish
/// at batch 32: kernel time stops shrinking as work shrinks, while the
/// per-op dispatch overhead stays constant.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeModel {
    /// Peak effective FLOP/s.
    pub flops_per_sec: f64,
    /// Peak effective memory bandwidth, bytes/s.
    pub bytes_per_sec: f64,
    /// Fixed per-kernel launch latency, ns.
    pub launch_ns: f64,
    /// Lower bound on any kernel's execution time, ns.
    pub min_kernel_ns: f64,
    /// Work (flops) needed to reach full utilization; below this the
    /// device runs at `flops/saturation_flops` of peak (floored at
    /// `min_utilization`).
    pub saturation_flops: f64,
    /// Utilization floor for tiny kernels.
    pub min_utilization: f64,
}

impl ComputeModel {
    /// Execution time of one kernel, in nanoseconds (excluding dispatch
    /// overheads, including launch latency).
    pub fn kernel_time_ns(&self, cost: KernelCost) -> f64 {
        let util = if self.saturation_flops > 0.0 {
            (cost.flops / self.saturation_flops).clamp(self.min_utilization, 1.0)
        } else {
            1.0
        };
        let compute_ns = cost.flops / (self.flops_per_sec * util) * 1e9;
        let memory_ns = cost.bytes / self.bytes_per_sec * 1e9;
        self.launch_ns + compute_ns.max(memory_ns).max(self.min_kernel_ns)
    }
}

/// Per-dispatch host-side overheads for the two execution modes.
///
/// `interpreter_ns` stands in for the CPython interpreter the paper's eager
/// front-end pays per operation; `executor_node_ns` is the C++ dataflow
/// executor's per-node cost; `function_call_ns` is charged once per staged
/// function invocation; `eager_compile_ns` is the per-op compile+dispatch
/// penalty for running single ops on a compile-required device (§4.4's TPU
/// caveat); `staged_call_latency_ns` is the per-call device round-trip for
/// compiled programs (the Cloud-TPU RPC in Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchModel {
    /// Host interpreter cost per eager op, ns.
    pub interpreter_ns: f64,
    /// Dataflow-executor cost per staged node, ns.
    pub executor_node_ns: f64,
    /// Fixed cost per staged function call, ns.
    pub function_call_ns: f64,
    /// Per-op compile+dispatch penalty in eager mode on compile-required
    /// devices, ns.
    pub eager_compile_ns: f64,
    /// Per-call latency for launching a compiled program, ns.
    pub staged_call_latency_ns: f64,
}

impl Default for DispatchModel {
    fn default() -> DispatchModel {
        // Rough CPython-vs-C++ magnitudes; the bench crate installs
        // calibrated profiles per experiment.
        DispatchModel {
            interpreter_ns: 25_000.0,
            executor_node_ns: 1_500.0,
            function_call_ns: 10_000.0,
            eager_compile_ns: 0.0,
            staged_call_latency_ns: 0.0,
        }
    }
}

/// A monotonically-advancing virtual clock, in nanoseconds.
///
/// Cloneable handles share the same underlying counter.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    ns: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Advance by `ns` nanoseconds (fractions round to nearest).
    pub fn advance(&self, ns: f64) {
        self.ns.fetch_add(ns.max(0.0).round() as u64, Ordering::Relaxed);
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Current virtual time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_ns() as f64 / 1e9
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.ns.store(0, Ordering::Relaxed);
    }
}

/// Aggregated simulation counters, shared by cloned handles.
///
/// The runtime charges time here when executing on simulated devices; the
/// bench harness reads `examples/sec = n / clock.now_secs()`.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Host-side virtual time (interpreter, executor bookkeeping,
    /// per-op compilation).
    pub clock: VirtualClock,
    /// Device-stream virtual time (kernel execution, program launches).
    /// Dispatch is modeled as pipelined: a run's span is
    /// `max(host, device)` — the asynchronous-dispatch behavior of real
    /// accelerators, and the reason Figure 3's speed-ups vanish once the
    /// kernels are long enough to hide the interpreter.
    pub device_clock: VirtualClock,
    inner: Arc<Mutex<SimCounters>>,
}

#[derive(Debug, Default, Clone, PartialEq, Eq)]
/// Raw event counters recorded during simulated execution.
pub struct SimCounters {
    /// Ops dispatched eagerly.
    pub eager_ops: u64,
    /// Nodes executed inside staged functions.
    pub staged_nodes: u64,
    /// Staged function calls.
    pub function_calls: u64,
    /// Kernel launches on simulated devices.
    pub kernel_launches: u64,
}

impl SimStats {
    /// A fresh stats block at time zero.
    pub fn new() -> SimStats {
        SimStats::default()
    }

    /// Record an eagerly-dispatched op.
    pub fn count_eager_op(&self) {
        self.inner.lock().eager_ops += 1;
    }

    /// Record a staged node execution.
    pub fn count_staged_node(&self) {
        self.inner.lock().staged_nodes += 1;
    }

    /// Record a staged function call.
    pub fn count_function_call(&self) {
        self.inner.lock().function_calls += 1;
    }

    /// Record a kernel launch.
    pub fn count_kernel(&self) {
        self.inner.lock().kernel_launches += 1;
    }

    /// Snapshot the counters.
    pub fn counters(&self) -> SimCounters {
        self.inner.lock().clone()
    }

    /// The run's span under pipelined dispatch: `max(host, device)`.
    pub fn span_secs(&self) -> f64 {
        self.clock.now_secs().max(self.device_clock.now_secs())
    }

    /// Reset counters and clocks.
    pub fn reset(&self) {
        *self.inner.lock() = SimCounters::default();
        self.clock.reset();
        self.device_clock.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ComputeModel {
        ComputeModel {
            flops_per_sec: 1e12,
            bytes_per_sec: 1e11,
            launch_ns: 1000.0,
            min_kernel_ns: 500.0,
            saturation_flops: 1e9,
            min_utilization: 0.01,
        }
    }

    #[test]
    fn kernel_time_compute_bound() {
        // 1e12 flops at full utilization on a 1e12 flop/s device ~ 1s.
        let t = model().kernel_time_ns(KernelCost { flops: 1e12, bytes: 0.0 });
        assert!((t - 1e9 - 1000.0).abs() < 1.0);
    }

    #[test]
    fn kernel_time_memory_bound() {
        // Tiny flops, huge bytes: memory term dominates.
        let t = model().kernel_time_ns(KernelCost { flops: 1e9, bytes: 1e11 });
        assert!(t > 0.9e9);
    }

    #[test]
    fn kernel_time_floor() {
        let t = model().kernel_time_ns(KernelCost { flops: 1.0, bytes: 1.0 });
        // utilization floor 0.01 -> 1 flop takes 100 flop-times = 0.1ns,
        // below min_kernel_ns, so floor applies: launch + min_kernel.
        assert!((t - 1500.0).abs() < 1.0);
    }

    #[test]
    fn utilization_ramp_flattens_small_work() {
        let m = model();
        // Work at 1/100 of saturation runs at 1% utilization: same time as
        // work at saturation.
        let small = m.kernel_time_ns(KernelCost { flops: 1e7, bytes: 0.0 });
        let tiny = m.kernel_time_ns(KernelCost { flops: 1e6, bytes: 0.0 });
        // t(small) = 1e7/(1e12*0.01) = 1ms; t(tiny) = 1e6/(1e12*0.001->clamped 0.01)
        assert!(small > tiny, "ramp must keep monotonicity: {small} vs {tiny}");
        let saturated = m.kernel_time_ns(KernelCost { flops: 1e9, bytes: 0.0 });
        let double = m.kernel_time_ns(KernelCost { flops: 2e9, bytes: 0.0 });
        // Past saturation time scales linearly.
        assert!((double - m.launch_ns) / (saturated - m.launch_ns) > 1.9);
    }

    #[test]
    fn clock_shared_between_clones() {
        let c = VirtualClock::new();
        let c2 = c.clone();
        c.advance(100.0);
        c2.advance(50.4);
        assert_eq!(c.now_ns(), 150);
        assert!((c.now_secs() - 150e-9).abs() < 1e-15);
        c.reset();
        assert_eq!(c2.now_ns(), 0);
    }

    #[test]
    fn negative_advance_ignored() {
        let c = VirtualClock::new();
        c.advance(-5.0);
        assert_eq!(c.now_ns(), 0);
    }

    #[test]
    fn stats_counters() {
        let s = SimStats::new();
        let s2 = s.clone();
        s.count_eager_op();
        s2.count_eager_op();
        s.count_staged_node();
        s.count_function_call();
        s.count_kernel();
        let c = s.counters();
        assert_eq!(c.eager_ops, 2);
        assert_eq!(c.staged_nodes, 1);
        assert_eq!(c.function_calls, 1);
        assert_eq!(c.kernel_launches, 1);
        s.reset();
        assert_eq!(s2.counters(), SimCounters::default());
    }

    #[test]
    fn elementwise_cost_helper() {
        let c = KernelCost::elementwise(100, 4);
        assert_eq!(c.flops, 100.0);
        assert_eq!(c.bytes, 1200.0);
        let d = c.combine(KernelCost { flops: 1.0, bytes: 2.0 });
        assert_eq!(d.flops, 101.0);
        assert_eq!(d.bytes, 1202.0);
    }
}
