//! Devices (§4.4) and distribution (§4.5): `list_devices`, explicit
//! copies, device scopes with transparent input copies, staged functions
//! on accelerators, and a coordinator driving worker servers with
//! remote-resident tensors.
//!
//! Run with `cargo run --example devices_and_distribution`.

use tf_eager::device::{profiles, DeviceType, KernelMode};
use tf_eager::dist::{Cluster, ClusterSpec, RemoteArg};
use tf_eager::prelude::*;
use tf_eager::RuntimeError;
use tfe_ops::Attrs;

fn main() -> Result<(), RuntimeError> {
    tf_eager::init();

    // The runtime detects devices at startup; simulated accelerators are
    // registered explicitly (DESIGN.md §3 substitution).
    tf_eager::register_sim_device("/gpu:0", profiles::gtx1080(), KernelMode::Simulated).ok();
    tf_eager::register_sim_device("/tpu:0", profiles::cloud_tpu(), KernelMode::Simulated).ok();
    println!("list_devices:");
    for d in tf_eager::context::device_manager().list_devices() {
        println!("  {d}");
    }

    // Listing 4: explicit copies.
    let a = api::scalar(1.0f32);
    let b = a.gpu()?;
    println!("a lives on {}, b on {}", a.device()?, b.device()?);

    // Listing 5: device scope + transparent input copies.
    let x = api::scalar(1.0f32);
    let y = api::scalar(2.0f32);
    let c = tf_eager::context::with_device("/gpu:0", || api::add(&x, &y))??;
    assert_eq!(c.scalar_f64()?, 3.0);
    println!("add placed on {} -> {}", c.device()?, c.scalar_f64()?);

    // Graph functions as the unit of compilation for accelerators (§4.4):
    // tracing under a TPU scope turns on the XLA-style fusion pipeline.
    let f = function1("tpu_math", |t| {
        let t = api::mul(t, t)?;
        let t = api::add(&t, &api::scalar(1.0f32))?;
        api::tanh(&t)
    });
    let on_tpu = tf_eager::context::with_device("/tpu:0", || {
        f.call1(&api::constant(vec![0.5f32, -0.5], [2])?)
    })??;
    println!("staged-on-TPU result: {:?}", on_tpu.to_f64_vec()?);
    let conc = tf_eager::context::with_device("/tpu:0", || {
        f.concrete_for(&[Arg::from(&api::zeros(DType::F32, [2]))])
    })??;
    let fused = conc.function.nodes.iter().filter(|n| n.op == "fused_elementwise").count();
    println!(
        "TPU-compiled graph: {} executable nodes ({} fused kernels) vs {} in the raw trace",
        conc.function.executable_node_count(),
        fused,
        conc.raw.executable_node_count()
    );
    assert_eq!(conc.function.output_sigs()[0].0, DType::F32);
    assert!(matches!(
        tf_eager::context::device_manager().resolve("/tpu:0").map(|d| d.device_type()),
        Ok(DeviceType::Tpu)
    ));

    // --- §4.5: a coordinator and two worker tasks, over real TCP -----------
    let spec = ClusterSpec::new().with_job("training", 2)?;
    let cluster = Cluster::start_tcp(&spec)?;
    println!("cluster devices:");
    for d in cluster.list_devices() {
        println!("  {d}");
    }

    // Run ops on remote devices by name; results *stay* on the worker.
    let shard0 = api::constant(vec![1.0f32, 2.0, 3.0, 4.0], [4])?;
    let shard1 = api::constant(vec![10.0f32, 20.0, 30.0, 40.0], [4])?;
    let r0 = cluster.execute(
        "/job:training/task:0/device:CPU:0",
        "reduce_sum",
        &[RemoteArg::from(&shard0)],
        Attrs::new().with("axes", Vec::<i64>::new()).with("keep_dims", false),
    )?;
    let r1 = cluster.execute(
        "/job:training/task:1/device:CPU:0",
        "reduce_sum",
        &[RemoteArg::from(&shard1)],
        Attrs::new().with("axes", Vec::<i64>::new()).with("keep_dims", false),
    )?;
    println!("partial sums stayed remote: {:?} and {:?}", r0[0], r1[0]);

    // Keep computing remotely on resident tensors, then fetch (the paper's
    // "copy them to the central server" step).
    let doubled = cluster.execute(
        "/job:training/task:0/device:CPU:0",
        "add",
        &[RemoteArg::from(&r0[0]), RemoteArg::from(&r0[0])],
        Attrs::new(),
    )?;
    let total = doubled[0].fetch()?.scalar_f64()? + r1[0].fetch()?.scalar_f64()?;
    println!("coordinator-side total: {total}");

    // Whole graph functions dispatched to a worker (§4.5).
    let g = function1("remote_poly", |t| {
        let sq = api::mul(t, t)?;
        api::add(&sq, t)
    });
    let conc = g.concrete_for(&[Arg::from(&api::zeros(DType::F32, [4]))])?;
    let remote = cluster.call_function(
        "/job:training/task:1/device:CPU:0",
        &conc.function.name,
        &[RemoteArg::from(&shard0)],
    )?;
    println!("remote graph-function result: {:?}", remote[0].fetch()?.to_f64_vec()?);

    cluster.shutdown();
    println!("devices_and_distribution finished ok");
    Ok(())
}
