//! Data-dependent model structures — the workloads the paper's
//! introduction motivates ("recursive neural networks", "models with
//! data-dependent structures", §1/§3) and the staging escape hatches that
//! keep them fast (§4.7).
//!
//! Three variants of a recursive tree-reduction network:
//! 1. purely imperative (host recursion — trivially easy, §3);
//! 2. staged per-node with `function` (the reused cell is one graph);
//! 3. staged end-to-end with the recursion inside a `host_func` (§4.7).
//!
//! Plus tensor-dependent control flow with `cond`/`while_loop` (§4.1's
//! prescription when a trace must branch on tensor values).
//!
//! Run with `cargo run --example dynamic_models`.

use std::sync::Arc;
use tf_eager::nn::layers::{Activation, Dense, Layer};
use tf_eager::nn::Initializer;
use tf_eager::prelude::*;
use tf_eager::RuntimeError;

/// A binary parse tree whose shape depends on the data.
enum Tree {
    Leaf(Vec<f32>),
    Node(Box<Tree>, Box<Tree>),
}

fn sample_tree() -> Tree {
    // ((a b) (c (d e))) — an irregular structure no static graph handles
    // without padding tricks.
    Tree::Node(
        Box::new(Tree::Node(
            Box::new(Tree::Leaf(vec![1.0, 0.0, 0.0, 0.0])),
            Box::new(Tree::Leaf(vec![0.0, 1.0, 0.0, 0.0])),
        )),
        Box::new(Tree::Node(
            Box::new(Tree::Leaf(vec![0.0, 0.0, 1.0, 0.0])),
            Box::new(Tree::Node(
                Box::new(Tree::Leaf(vec![0.0, 0.0, 0.0, 1.0])),
                Box::new(Tree::Leaf(vec![0.5, 0.5, 0.0, 0.0])),
            )),
        )),
    )
}

/// The recursive cell: combine two child embeddings into a parent.
struct TreeCell {
    combine: Dense,
}

impl TreeCell {
    fn new(dim: usize, init: &mut Initializer) -> TreeCell {
        TreeCell { combine: Dense::new(2 * dim, dim, Activation::Tanh, init) }
    }

    /// Variant 1: host recursion, every op imperative.
    fn eval_imperative(&self, tree: &Tree) -> Result<Tensor, RuntimeError> {
        match tree {
            Tree::Leaf(v) => api::constant(v.clone(), [1, v.len()]),
            Tree::Node(l, r) => {
                let l = self.eval_imperative(l)?;
                let r = self.eval_imperative(r)?;
                let joined = api::concat(&[&l, &r], 1)?;
                self.combine.call(&joined, false)
            }
        }
    }

    /// Variant 2: host recursion drives a *staged* cell. The cell traces
    /// once and every interior node reuses the cached graph function.
    fn eval_staged_cell(&self, cell: &Func, tree: &Tree) -> Result<Tensor, RuntimeError> {
        match tree {
            Tree::Leaf(v) => api::constant(v.clone(), [1, v.len()]),
            Tree::Node(l, r) => {
                let l = self.eval_staged_cell(cell, l)?;
                let r = self.eval_staged_cell(cell, r)?;
                Ok(cell.call_tensors(&[&l, &r])?.remove(0))
            }
        }
    }
}

fn main() -> Result<(), RuntimeError> {
    tf_eager::init();
    let mut init = Initializer::seeded(11);
    let cell = Arc::new(TreeCell::new(4, &mut init));
    let tree = sample_tree();

    // 1. Imperative recursion.
    let embedding = cell.eval_imperative(&tree)?;
    println!("imperative tree embedding: {:?}", embedding.to_f64_vec()?);

    // 2. Staged cell, host recursion (§4.1's multi-stage workflow: stage
    //    the hot block, keep the dynamic structure in the host language).
    let staged_cell = {
        let cell = cell.clone();
        function("tree_cell", move |args| {
            let l = args[0].as_tensor().expect("left");
            let r = args[1].as_tensor().expect("right");
            let joined = api::concat(&[l, r], 1)?;
            Ok(vec![cell.combine.call(&joined, false)?])
        })
    };
    let staged = cell.eval_staged_cell(&staged_cell, &tree)?;
    assert!(
        (staged.to_f64_vec()?[0] - embedding.to_f64_vec()?[0]).abs() < 1e-6,
        "staged cell must agree with the imperative run"
    );
    println!(
        "staged-cell embedding matches; cell traced {} time(s) for {} interior nodes",
        staged_cell.num_concrete(),
        4
    );

    // 3. Whole model staged, recursion escaping through host_func (§4.7:
    //    "stage the entire function while wrapping the recursive call in a
    //    py_func").
    let recursive_hf = {
        let cell = cell.clone();
        HostFunc::new(
            move |args| {
                // The host closure re-runs the data-dependent recursion
                // imperatively; args[0] is a scale applied at the leaves.
                let scale = args[0].clone();
                fn walk(
                    cell: &TreeCell,
                    scale: &Tensor,
                    tree: &Tree,
                ) -> Result<Tensor, RuntimeError> {
                    match tree {
                        Tree::Leaf(v) => {
                            let leaf = api::constant(v.clone(), [1, v.len()])?;
                            api::mul(&leaf, scale)
                        }
                        Tree::Node(l, r) => {
                            let l = walk(cell, scale, l)?;
                            let r = walk(cell, scale, r)?;
                            let joined = api::concat(&[&l, &r], 1)?;
                            cell.combine.call(&joined, false)
                        }
                    }
                }
                Ok(vec![walk(&cell, &scale, &sample_tree())?])
            },
            vec![(DType::F32, tfe_ops::SymShape::new(vec![Some(1), Some(4)]))],
        )
    };
    let full = {
        let hf = recursive_hf.clone();
        function1("tree_model", move |scale| {
            let tree_out = hf.call(&[scale])?.remove(0);
            api::reduce_sum(&tree_out, &[], false) // staged post-processing
        })
    };
    let out = full.call1(&api::scalar(1.0f32))?;
    println!("host_func-staged tree sum: {:.6}", out.scalar_f64()?);

    // Differentiate through the host_func (§4.7: py_func is differentiable).
    let scale = api::scalar(1.0f32);
    let tape = tfe_autodiff::GradientTape::new();
    tape.watch(&scale);
    let y = full.call1(&scale)?;
    let grad = tape.gradient1(&y, &scale)?;
    println!("d(tree sum)/d(leaf scale) = {:.6}", grad.scalar_f64()?);

    // 4. Tensor-dependent control flow inside graphs: cond + while_loop.
    let then_f = function1("double", |x| api::mul(x, &api::scalar(2.0f64)));
    let else_f = function1("halve", |x| api::mul(x, &api::scalar(0.5f64)));
    let x = api::scalar(21.0f64);
    let pred = api::greater(&x, &api::scalar(10.0f64))?;
    let out = tf_eager::cond(&pred, &then_f, &else_f, &[&x])?;
    println!("cond(x > 10, double, halve)(21) = {}", out[0].scalar_f64()?);

    let cond_f = function("not_done", |args| {
        let i = args[0].as_tensor().expect("i");
        Ok(vec![api::less(i, &api::scalar(8.0f64))?])
    });
    let body_f = function("fib_step", |args| {
        let i = args[0].as_tensor().expect("i");
        let a = args[1].as_tensor().expect("a");
        let b = args[2].as_tensor().expect("b");
        Ok(vec![api::add(i, &api::scalar(1.0f64))?, b.clone(), api::add(a, b)?])
    });
    let fib = tf_eager::while_loop(
        &cond_f,
        &body_f,
        &[&api::scalar(0.0f64), &api::scalar(0.0f64), &api::scalar(1.0f64)],
    )?;
    println!("fib(8) via while_loop = {}", fib[1].scalar_f64()?);
    Ok(())
}
