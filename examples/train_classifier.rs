//! Train a small CNN classifier on synthetic images, with the training
//! step staged via `function`, checkpointing (including the dataset
//! iterator position), and evaluation — the paper's "smooth path from
//! prototyping to production" (§3) end to end.
//!
//! Run with `cargo run --release --example train_classifier`. Set
//! `TFE_PROFILE=trace.json` to record an op-level profile of the training
//! loop: a chrome://tracing (Perfetto-loadable) timeline at that path plus
//! a metrics summary on stderr.

use std::sync::Arc;
use tf_eager::nn::data::SyntheticImages;
use tf_eager::nn::layers::{Activation, Conv2d, Dense, Flatten, Layer, MaxPool2d, Sequential};
use tf_eager::nn::losses::{accuracy, softmax_cross_entropy};
use tf_eager::nn::{optimizer, Adam, Initializer, Optimizer};
use tf_eager::prelude::*;
use tf_eager::state::TrackableGroup;
use tf_eager::RuntimeError;
use tfe_autodiff::GradientTape;

fn build_model(init: &mut Initializer) -> Sequential {
    Sequential::new()
        .push(Conv2d::new(1, 8, (3, 3), (1, 1), "SAME", Activation::Relu, true, init))
        .push(MaxPool2d::new((2, 2), (2, 2), "VALID"))
        .push(Conv2d::new(8, 16, (3, 3), (1, 1), "SAME", Activation::Relu, true, init))
        .push(MaxPool2d::new((2, 2), (2, 2), "VALID"))
        .push(Flatten)
        .push(Dense::new(16 * 2 * 2, 32, Activation::Relu, init))
        .push(Dense::new(32, 4, Activation::Linear, init))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    tf_eager::init();
    tf_eager::context::set_random_seed(0);

    let mut init = Initializer::seeded(7);
    let model = Arc::new(build_model(&mut init));
    let opt = Arc::new(Adam::new(2e-3));
    let vars = model.variables();
    println!(
        "model: {} layers, {} parameters",
        model.len(),
        tf_eager::nn::layers::num_parameters(model.as_ref())
    );

    // Stage the whole training step (forward + backward + Adam update):
    // "simply a matter of decorating two functions" (§6).
    let train_step = {
        let model = model.clone();
        let opt = opt.clone();
        let vars = vars.clone();
        function("train_step", move |args| {
            let x = args[0].as_tensor().expect("images");
            let y = args[1].as_tensor().expect("labels");
            let tape = GradientTape::new();
            let logits = model.call(x, true)?;
            let loss = softmax_cross_entropy(&logits, y)?;
            optimizer::minimize(opt.as_ref(), tape, &loss, &vars)?;
            Ok(vec![loss])
        })
    };

    let dataset = SyntheticImages::new(3, 256, (8, 8, 1), 4);
    let iterator = dataset.batches(32);

    let trace_path = tf_eager::profile::env_trace_path();
    if trace_path.is_some() {
        tf_eager::profile::start();
    }

    // One checkpoint root tracks the model, optimizer slots, AND the
    // iterator position (§4.3's "iterator over input data whose position
    // is serialized").
    let root = TrackableGroup::new()
        .with_node("model", model.trackable())
        .with_node("optimizer", opt.trackable())
        .with_state("iterator", iterator.state());

    let mut first_loss = None;
    let mut last_loss = 0.0;
    for step in 0..60 {
        let (x, y) = iterator.next_batch()?;
        let loss = train_step.call_tensors(&[&x, &y])?[0].scalar_f64()?;
        first_loss.get_or_insert(loss);
        last_loss = loss;
        if step % 15 == 0 {
            println!("step {step:>3}: loss {loss:.4}");
        }
    }
    println!(
        "loss {:.4} -> {last_loss:.4} across 60 steps ({} concrete trace(s))",
        first_loss.unwrap_or(0.0),
        train_step.num_concrete()
    );

    // End-of-run metrics summary from the always-on registry (no profiler
    // needed): trace-cache behaviour, kernel latency tail, memory peak.
    let stats = train_step.stats();
    let snap = tf_eager::metrics::snapshot();
    let p99 =
        snap.histogram_value("tfe_kernel_time_ns").and_then(|h| h.quantile(0.99)).unwrap_or(0);
    let peak = snap.gauge_value("tfe_live_tensor_bytes_peak").unwrap_or(0);
    println!(
        "metrics: train_step cache hit rate {:.1}% ({} hits / {} calls, {} retrace(s)), \
         p99 kernel {:.1} µs, peak live tensor bytes {:.2} MiB",
        stats.hit_rate() * 100.0,
        stats.hits,
        stats.calls(),
        stats.retraces,
        p99 as f64 / 1e3,
        peak as f64 / (1024.0 * 1024.0)
    );
    if stats.retraces > 0 {
        println!("{}", train_step.retrace_report());
    }
    if let Some(path) = trace_path {
        let profile = tf_eager::profile::stop();
        profile.write_chrome_trace(&path)?;
        eprintln!("{}", profile.summary());
        eprintln!(
            "wrote {path} ({} spans on {} threads) — open in chrome://tracing or Perfetto",
            profile.span_count(),
            profile.thread_count()
        );
    }

    // Evaluate on a fresh pass over the data.
    let eval_it = dataset.batches(64);
    let (x, y) = eval_it.next_batch()?;
    let logits = model.call(&x, false)?;
    println!("train-set accuracy: {:.3}", accuracy(&logits, &y)?.scalar_f64()?);

    // Checkpoint, clobber, restore, verify.
    let dir = std::env::temp_dir().join("tfe_example_classifier");
    std::fs::create_dir_all(&dir)?;
    let ckpt_path = dir.join("model.ckpt");
    tf_eager::state::checkpoint::save(&root, &ckpt_path)?;
    let reference = model.call(&x, false)?.to_f64_vec()?;
    for v in &vars {
        v.restore(TensorData::zeros(v.dtype(), v.shape().clone()))
            .map_err(|e| RuntimeError::Internal(e.to_string()))?;
    }
    let clobbered = model.call(&x, false)?.to_f64_vec()?;
    assert_ne!(reference, clobbered, "weights should be gone");
    let status = tf_eager::state::checkpoint::restore(&root, &ckpt_path)?;
    assert!(status.is_complete(), "{status:?}");
    let restored = model.call(&x, false)?.to_f64_vec()?;
    assert_eq!(reference, restored);
    println!(
        "checkpoint round trip ok ({} variables, iterator at {})",
        status.restored_variables,
        iterator.position()
    );
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
