//! A dynamic sequence model: embedding + LSTM over *variable-length* token
//! sequences — the "dynamic language models" workload §1/§7 cites, shaped
//! by the multi-stage workflow: host-loop dynamism where the data demands
//! it, a staged cell where the compute is.
//!
//! The task: remember the *first* token of the sequence — the label is
//! whether it was in the lower half of the vocabulary. Solving it requires
//! carrying information across the whole (variable-length) sequence.
//!
//! Run with `cargo run --release --example sequence_model`.

use std::sync::Arc;
use tf_eager::nn::layers::{Activation, Dense, Layer};
use tf_eager::nn::losses::{accuracy, softmax_cross_entropy};
use tf_eager::nn::rnn::{Embedding, LstmCell};
use tf_eager::nn::{optimizer, Adam, Initializer};
use tf_eager::prelude::*;
use tf_eager::RuntimeError;
use tfe_tensor::rng::TensorRng;

const VOCAB: usize = 8;
const EMBED: usize = 8;
const HIDDEN: usize = 16;

struct SequenceClassifier {
    embedding: Embedding,
    cell: Arc<LstmCell>,
    head: Dense,
    /// The staged per-step computation: one graph reused at every position
    /// of every sequence, regardless of length.
    staged_step: Func,
}

impl SequenceClassifier {
    fn new(init: &mut Initializer) -> Arc<SequenceClassifier> {
        let embedding = Embedding::new(VOCAB, EMBED, init);
        let cell = Arc::new(LstmCell::new(EMBED, HIDDEN, init));
        let head = Dense::new(HIDDEN, 2, Activation::Linear, init);
        let staged_step = {
            let cell = cell.clone();
            function("lstm_step", move |args| {
                let x = args[0].as_tensor().expect("x");
                let h = args[1].as_tensor().expect("h");
                let c = args[2].as_tensor().expect("c");
                let state = tf_eager::nn::rnn::LstmState { h: h.clone(), c: c.clone() };
                let (out, next) = cell.step(x, &state)?;
                Ok(vec![out, next.h, next.c])
            })
        };
        Arc::new(SequenceClassifier { embedding, cell, head, staged_step })
    }

    /// Classify one batch of same-length sequences (`(batch, time)` ids).
    /// The *time* loop is host-side, so every length reuses the same
    /// staged cell graph.
    fn logits(&self, ids: &Tensor, staged: bool) -> Result<Tensor, RuntimeError> {
        let dims = ids.shape()?;
        let (batch, time) = (dims.dim(0), dims.dim(1));
        let embedded = self.embedding.lookup(ids)?; // (batch, time, EMBED)
        let mut state = self.cell.zero_state(batch);
        for t in 0..time {
            let x_t = api::squeeze(&api::slice(&embedded, &[0, t as i64, 0], &[-1, 1, -1])?, &[1])?;
            if staged {
                let out = self.staged_step.call_tensors(&[&x_t, &state.h, &state.c])?;
                state = tf_eager::nn::rnn::LstmState { h: out[1].clone(), c: out[2].clone() };
            } else {
                state = self.cell.step(&x_t, &state)?.1;
            }
        }
        self.head.call(&state.h, true)
    }

    fn variables(&self) -> Vec<Variable> {
        let mut v = self.embedding.variables();
        v.extend(self.cell.variables());
        v.extend(self.head.variables());
        v
    }
}

/// Generate sequences labeled by their first token's vocabulary half.
fn batch(rng: &mut TensorRng, batch: usize, time: usize) -> (Tensor, Tensor) {
    let ids =
        rng.uniform_int(DType::I64, Shape::from([batch, time]), 0, VOCAB as i64).expect("ids");
    let labels: Vec<i64> =
        ids.to_i64_vec().chunks(time).map(|row| i64::from(row[0] < (VOCAB as i64) / 2)).collect();
    (
        Tensor::from_data(ids),
        Tensor::from_data(TensorData::from_vec(labels, Shape::from([batch])).unwrap()),
    )
}

fn main() -> Result<(), RuntimeError> {
    tf_eager::init();
    tf_eager::context::set_random_seed(0);
    let mut init = Initializer::seeded(123);
    let model = SequenceClassifier::new(&mut init);
    let opt = Adam::new(5e-3);
    let vars = model.variables();
    println!("sequence classifier: vocab {VOCAB}, {} trainable variables", vars.len());

    let mut rng = TensorRng::seed_from_u64(77);
    let mut first = None;
    let mut last = 0.0;
    for step in 0..200 {
        // Dynamic lengths per batch — no padding, no retracing: the staged
        // cell's signature is length-independent.
        let time = 2 + (step % 4);
        let (ids, labels) = batch(&mut rng, 32, time);
        let tape = tfe_autodiff::GradientTape::new();
        let logits = model.logits(&ids, true)?;
        let loss = softmax_cross_entropy(&logits, &labels)?;
        last = loss.scalar_f64()?;
        first.get_or_insert(last);
        optimizer::minimize(&opt, tape, &loss, &vars)?;
        if step % 30 == 0 {
            println!("step {step:>3} (len {time}): loss {last:.4}");
        }
    }
    println!(
        "loss {:.4} -> {last:.4}; cell traced {} time(s) across lengths 2..=5",
        first.unwrap_or(0.0),
        model.staged_step.num_concrete()
    );

    // Evaluate on held-out lengths never seen in training.
    for time in [6usize, 9] {
        let (ids, labels) = batch(&mut rng, 128, time);
        let logits = model.logits(&ids, true)?;
        let acc = accuracy(&logits, &labels)?.scalar_f64()?;
        println!("length {time} (unseen): accuracy {acc:.3}");
    }

    // Eager and staged rollouts agree exactly.
    let (ids, _) = batch(&mut rng, 4, 5);
    let a = model.logits(&ids, false)?.to_f64_vec()?;
    let b = model.logits(&ids, true)?.to_f64_vec()?;
    assert_eq!(a, b, "staged cell must match the imperative cell");
    println!("eager/staged rollouts agree; done");
    Ok(())
}
