//! Serialize a trained model for deployment without the tracer (§4.3/§5):
//! train imperatively, stage the inference function, export a
//! SavedFunction bundle, then load it back (fresh variables, rewired
//! graphs) and serve predictions.
//!
//! Run with `cargo run --example saved_function`.

use std::sync::Arc;
use tf_eager::nn::data::SyntheticRegression;
use tf_eager::nn::layers::Layer;
use tf_eager::nn::losses::mean_squared_error;
use tf_eager::nn::{mlp, optimizer, Activation, Initializer, Sgd};
use tf_eager::prelude::*;
use tfe_autodiff::GradientTape;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    tf_eager::init();

    // --- development: train a small regressor imperatively ---------------
    let mut init = Initializer::seeded(21);
    let model = Arc::new(mlp(4, &[32, 32], 1, Activation::Tanh, &mut init));
    let opt = Sgd::new(0.05);
    let vars = model.variables();
    let data = SyntheticRegression::new(9, 4);
    let mut last = 0.0;
    for step in 0..120 {
        let (x, y) = data.batch(step, 64)?;
        let tape = GradientTape::new();
        let pred = model.call(&x, true)?;
        let loss = mean_squared_error(&pred, &y)?;
        last = loss.scalar_f64()?;
        optimizer::minimize(&opt, tape, &loss, &vars)?;
    }
    println!("trained: final mse {last:.4}");

    // --- staging: one concrete inference function -------------------------
    let infer = {
        let model = model.clone();
        function1("regressor_infer", move |x| model.call(x, false))
    }
    .with_input_signature(vec![TensorSpec::new(DType::F32, vec![None, Some(4)])]);
    let (probe_x, _) = data.batch(999, 3)?;
    let reference = infer.call1(&probe_x)?.to_f64_vec()?;
    let concrete = infer.concrete_for(&[Arg::from(&probe_x)])?;
    println!(
        "traced `{}`: {} nodes, handles any batch size via the input signature",
        concrete.function.name,
        concrete.function.executable_node_count()
    );

    // --- export -------------------------------------------------------------
    let dir = std::env::temp_dir().join("tfe_example_saved");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("regressor.savedfn.json");
    tf_eager::state::saved::export(&concrete, &path)?;
    println!("exported to {} ({} bytes)", path.display(), std::fs::metadata(&path)?.len());

    // --- deployment: a fresh load, independent of the Python^H^H tracer ---
    // (in a real deployment this happens in another process; the bundle
    // recreates its own variables with the trained values).
    let loaded = tf_eager::state::saved::import(&path)?;
    println!(
        "loaded entry `{}` with {} recreated variable(s)",
        loaded.entry_name(),
        loaded.variables.len()
    );
    let served = loaded.call(&[&probe_x])?;
    assert_eq!(served[0].to_f64_vec()?, reference);
    println!("served predictions match the original: {:?}", &reference);

    // The loaded copy is isolated: clobbering the original model does not
    // affect it.
    for v in &vars {
        v.restore(TensorData::zeros(v.dtype(), v.shape().clone()))?;
    }
    let still_good = loaded.call(&[&probe_x])?;
    assert_eq!(still_good[0].to_f64_vec()?, reference);
    println!("bundle is self-contained (original weights zeroed, outputs unchanged)");

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
