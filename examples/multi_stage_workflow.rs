//! The §4.1 multi-stage workflow on the L2HMC sampler, with the virtual
//! clock showing the payoff: **implement** imperatively, **analyze** where
//! the time goes, **stage** the hot block.
//!
//! Run with `cargo run --release --example multi_stage_workflow`.
//! Set `TFE_PROFILE=/tmp/workflow.json` to export a chrome trace of the
//! whole workflow (eager dispatch, trace-cache activity, staged calls)
//! with per-request causal flows.

use std::sync::Arc;
use tf_eager::device::{DispatchModel, KernelMode, SimStats};
use tf_eager::nn::l2hmc::{L2hmc, StronglyCorrelatedGaussian};
use tf_eager::nn::Initializer;
use tf_eager::prelude::*;
use tf_eager::RuntimeError;
use tfe_runtime::context::{self, SimConfig};

fn main() -> Result<(), RuntimeError> {
    tf_eager::init();
    tf_eager::context::set_random_seed(42);

    // Opt-in profiling: TFE_PROFILE names the chrome-trace output path.
    let trace_path = tf_eager::profile::env_trace_path();
    if trace_path.is_some() {
        tf_eager::profile::start();
    }

    // Step 1 — IMPLEMENT: a single-stage imperative program. Develop,
    // debug, test: every intermediate value is inspectable.
    let sampler = Arc::new(L2hmc::new(
        Arc::new(StronglyCorrelatedGaussian::new()),
        10,
        10,
        0.1,
        &mut Initializer::seeded(0),
    ));
    let mut x = api::zeros(DType::F32, [64, 2]);
    let (x_next, accept) = sampler.sample_step(&x)?;
    println!(
        "imperative step ok: mean accept prob {:.3}, first chain now at {:?}",
        api::reduce_mean(&accept, &[], false)?.scalar_f64()?,
        &x_next.to_f64_vec()?[..2]
    );

    // Step 2 — ANALYZE: profile. We register a simulated CPU that charges
    // a virtual clock with a CPython-like per-op cost (DESIGN.md §3), and
    // count how many primitive dispatches one update costs.
    tf_eager::register_sim_device(
        "/job:localhost/task:0/device:CPU:1",
        tf_eager::device::profiles::xeon_w2135(),
        KernelMode::Simulated,
    )
    .ok();
    let device = context::device_manager()
        .resolve("/job:localhost/task:0/device:CPU:1")
        .map_err(RuntimeError::Device)?;
    let stats = SimStats::new();
    let dispatch = DispatchModel {
        interpreter_ns: 300_000.0, // the simulated interpreter
        executor_node_ns: 2_000.0,
        function_call_ns: 60_000.0,
        eager_compile_ns: 0.0,
        staged_call_latency_ns: 0.0,
    };
    context::set_sim(Some(SimConfig { stats: stats.clone(), dispatch }));
    context::with_device_obj(device.clone(), || sampler.sample_step(&x).map(|_| ()))?;
    let counters = stats.counters();
    println!(
        "analysis: one update dispatches {} primitive ops -> {:.1} ms of \
         simulated interpreter time per step",
        counters.eager_ops,
        stats.clock.now_secs() * 1e3,
    );
    println!("          -> the update loop is the block to stage (§4.1 step 2)");

    // Step 3 — STAGE: decorate the update with `function`. One line.
    let staged = {
        let sampler = sampler.clone();
        function1("l2hmc_update", move |state| Ok(sampler.sample_step(state)?.0))
    };

    // Compare simulated throughput, eager vs staged.
    let eager_secs = {
        stats.reset();
        context::with_device_obj(device.clone(), || -> Result<(), RuntimeError> {
            for _ in 0..5 {
                x = sampler.sample_step(&x)?.0;
            }
            Ok(())
        })?;
        stats.clock.now_secs().max(stats.device_clock.now_secs()) / 5.0
    };
    // Warm the trace cache outside the measurement (like the paper, build
    // time is excluded).
    x = staged.call1(&x)?;
    let staged_secs = {
        stats.reset();
        context::with_device_obj(device.clone(), || -> Result<(), RuntimeError> {
            for _ in 0..5 {
                x = staged.call1(&x)?;
            }
            Ok(())
        })?;
        stats.clock.now_secs().max(stats.device_clock.now_secs()) / 5.0
    };
    context::set_sim(None);
    println!(
        "staging payoff: {:.1} ms/step imperative -> {:.2} ms/step staged ({:.0}x)",
        eager_secs * 1e3,
        staged_secs * 1e3,
        eager_secs / staged_secs
    );
    println!("chains are still healthy: x[0] = {:?}", &x.to_f64_vec()?[..2]);

    // End-of-run metrics summary: the always-on registry has been counting
    // the whole time — no profiler, no opt-in.
    let stats = staged.stats();
    let snap = tf_eager::metrics::snapshot();
    let p99 =
        snap.histogram_value("tfe_kernel_time_ns").and_then(|h| h.quantile(0.99)).unwrap_or(0);
    let peak = snap.gauge_value("tfe_live_tensor_bytes_peak").unwrap_or(0);
    println!(
        "metrics: l2hmc_update cache hit rate {:.1}% ({} hits / {} calls, {} retrace(s)), \
         p99 kernel {:.1} µs, peak live tensor bytes {:.2} MiB",
        stats.hit_rate() * 100.0,
        stats.hits,
        stats.calls(),
        stats.retraces,
        p99 as f64 / 1e3,
        peak as f64 / (1024.0 * 1024.0)
    );
    if stats.retraces > 0 {
        println!("{}", staged.retrace_report());
    }

    if let Some(path) = &trace_path {
        let profile = tf_eager::profile::stop();
        profile
            .write_chrome_trace(path)
            .map_err(|e| RuntimeError::Internal(format!("write chrome trace: {e}")))?;
        println!("chrome trace written to {path} (load it in chrome://tracing or Perfetto)");
    }
    Ok(())
}
