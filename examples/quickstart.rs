//! Quickstart: the multi-stage programming model in one file.
//!
//! Walks the paper's §4 pillars end to end: imperative execution, tapes and
//! higher-order gradients, variables, staging with `function`, the trace
//! cache, and the escape hatches.
//!
//! Run with `cargo run --example quickstart`.

use tf_eager::prelude::*;
use tf_eager::RuntimeError;

fn main() -> Result<(), RuntimeError> {
    tf_eager::init();

    // --- 1. Imperative by default (§4.1) ---------------------------------
    // Operations execute immediately and return concrete values, like NumPy.
    let a = api::constant(vec![1.0f32, 0.0], [1, 2])?;
    let x = api::constant(vec![2.0f32, -2.0], [2, 1])?;
    let y = api::matmul(&a, &x)?;
    println!("matmul([[1,0]], [[2],[-2]]) = {:?} (shape {})", y.to_f64_vec()?, y.shape()?);

    // Native control flow just works: branch on concrete values.
    let threshold = api::scalar(1.0f32);
    let clipped = if y.scalar_f64()? > 1.0 { api::minimum(&y, &threshold)? } else { y.clone() };
    println!("clipped = {}", clipped.scalar_f64()?);

    // --- 2. Automatic differentiation with tapes (§4.2) -------------------
    let v = api::scalar(3.0f64);
    let t1 = GradientTape::new();
    let t2 = GradientTape::new();
    t1.watch(&v);
    t2.watch(&v);
    let y = api::mul(&v, &v)?;
    let dy = t2.gradient1(&y, &v)?;
    let d2y = t1.gradient1(&dy, &v)?;
    println!("d(x^2)/dx at 3 = {}, second derivative = {}", dy.scalar_f64()?, d2y.scalar_f64()?);

    // --- 3. Variables (§4.3) ----------------------------------------------
    let w = Variable::new(TensorData::scalar(0.5f32));
    let tape = GradientTape::new(); // variables are watched automatically
    let out = api::mul(&w.read()?, &api::scalar(10.0f32))?;
    let grad = tape.gradient_vars(&out, &[&w])?[0].clone().expect("grad");
    println!("d(10*w)/dw = {}", grad.scalar_f64()?);
    w.assign_add(&api::scalar(1.0f32))?;
    println!("w after assign_add = {}", w.read()?.scalar_f64()?);

    // --- 4. Staging with `function` (§4.6) --------------------------------
    // The same code, traced once per input signature into a dataflow graph.
    let dense = function("dense_relu", |args| {
        let x = args[0].as_tensor().expect("x");
        let w = args[1].as_tensor().expect("w");
        Ok(vec![api::relu(&api::matmul(x, w)?)?])
    });
    let x = api::ones(DType::F32, [4, 8]);
    let w = api::random_normal(DType::F32, Shape::from([8, 2]), 0.0, 0.1)?;
    let staged = dense.call(&[Arg::from(&x), Arg::from(&w)])?;
    println!(
        "staged dense output shape = {}, traces = {}",
        staged[0].shape()?,
        dense.num_concrete()
    );
    // Same signature -> cache hit; new shape -> a new specialized graph.
    dense.call(&[Arg::from(&x), Arg::from(&w)])?;
    let x16 = api::ones(DType::F32, [16, 8]);
    dense.call(&[Arg::from(&x16), Arg::from(&w)])?;
    println!("after a new batch size: traces = {}", dense.num_concrete());

    // --- 5. Gradients flow through staged calls (§4.2 + §4.6) -------------
    let square = function1("square", |t| api::mul(t, t));
    let z = api::scalar(4.0f64);
    let tape = GradientTape::new();
    tape.watch(&z);
    let sq = square.call1(&z)?;
    println!("d(staged x^2)/dx at 4 = {}", tape.gradient1(&sq, &z)?.scalar_f64()?);

    // --- 6. Escape hatches (§4.7) ------------------------------------------
    let traced = function1("with_init_scope", |t| {
        // init_scope pauses the trace: this runs imperatively even while
        // the surrounding function is being traced.
        let factor = init_scope(|| 2.0 + 1.0);
        api::mul(t, &api::scalar(factor as f32))
    });
    println!("init_scope result = {}", traced.call1(&api::scalar(7.0f32))?.scalar_f64()?);

    println!("quickstart finished ok");
    Ok(())
}
